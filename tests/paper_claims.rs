//! The paper's headline claims, checked end to end against this
//! reproduction. These are the assertions EXPERIMENTS.md reports on.

use spms::analysis::OverheadModel;
use spms::experiments::{
    AcceptanceRatioExperiment, AlgorithmKind, CacheCrossoverExperiment,
    OverheadSensitivityExperiment,
};
use spms::overhead::{Locality, MeasurementConfig, QueueOp, QueueOpBenchmark};
use spms::task::Time;

/// §4: "Semi-partitioned scheduling indeed outperforms partitioned
/// scheduling in the presence of realistic run-time overheads."
#[test]
fn fpts_outperforms_partitioned_baselines_with_measured_overheads() {
    let results = AcceptanceRatioExperiment::new()
        .cores(4)
        .tasks_per_set(12)
        .utilization_points(vec![0.85, 0.92, 0.98])
        .sets_per_point(25)
        .overhead(OverheadModel::paper_n4())
        .seed(2011)
        .run();
    let fpts = results.weighted_acceptance(AlgorithmKind::FpTs);
    let ffd = results.weighted_acceptance(AlgorithmKind::Ffd);
    let wfd = results.weighted_acceptance(AlgorithmKind::Wfd);
    assert!(
        fpts > ffd && fpts > wfd,
        "FP-TS {fpts:.3} should beat FFD {ffd:.3} and WFD {wfd:.3}"
    );
}

/// Abstract: "the extra overhead caused by task splitting in semi-partitioned
/// scheduling is very low, and its effect on the system schedulability is
/// very small."
#[test]
fn measured_overhead_costs_only_a_small_acceptance_slice() {
    let results = OverheadSensitivityExperiment::new()
        .scales(vec![0.0, 1.0])
        .tasks_per_set(12)
        .sets_per_scale(25)
        .run();
    let cost = results
        .measured_overhead_cost(AlgorithmKind::FpTs)
        .expect("both scales measured");
    assert!(
        (0.0..=0.15).contains(&cost),
        "measured overhead cost {cost} should be a small fraction of acceptance ratio"
    );
}

/// §2/§3: migration overhead is bounded by a handful of microsecond-scale
/// queue operations, so the per-job penalty of splitting is tiny compared to
/// millisecond-scale execution times.
#[test]
fn split_overhead_is_microseconds_per_job() {
    for model in [OverheadModel::paper_n4(), OverheadModel::paper_n64()] {
        assert!(model.migration_overhead() < Time::from_micros(50));
        assert!(model.job_overhead_normal() < Time::from_micros(100));
    }
}

/// Table 1 relationships: larger queues cost more, and remote insertions are
/// at least as expensive as local ones in the paper's numbers.
#[test]
fn paper_table1_relationships_hold_in_the_overhead_model() {
    let n4 = OverheadModel::paper_n4();
    let n64 = OverheadModel::paper_n64();
    assert!(n64.ready_queue_add_local >= n4.ready_queue_add_local);
    assert!(n64.sleep_queue_delete >= n4.sleep_queue_delete);
    assert!(n4.ready_queue_add_remote >= n4.ready_queue_add_local);
    assert!(n4.sleep_queue_add_remote >= n4.sleep_queue_add_local);
    let (delta4, theta4) = n4.delta_theta();
    assert_eq!(delta4, Time::from_nanos(3_300));
    assert_eq!(theta4, Time::from_nanos(3_300));
    let (delta64, theta64) = n64.delta_theta();
    assert_eq!(delta64, Time::from_nanos(4_600));
    assert_eq!(theta64, Time::from_nanos(5_800));
}

/// Table 1 regeneration: measuring our own queues reproduces the structural
/// relationship that a 64-entry queue costs at least as much (on average,
/// with generous slack for measurement noise) as a 4-entry queue.
#[test]
fn measured_queue_operations_are_fast_and_scale_mildly() {
    let table = QueueOpBenchmark::new(MeasurementConfig {
        iterations: 2_000,
        warmup: 200,
    })
    .measure_for_sizes(&[4, 64]);
    for op in [
        QueueOp::ReadyQueueAdd,
        QueueOp::ReadyQueueDelete,
        QueueOp::SleepQueueAdd,
        QueueOp::SleepQueueDelete,
    ] {
        let n4 = table.get(op, 4, Locality::Local).expect("measured");
        let n64 = table.get(op, 64, Locality::Local).expect("measured");
        // Everything is sub-10µs in user space on a modern machine — the same
        // order of magnitude as the paper's kernel measurements.
        assert!(
            n4.stats.mean_ns < 10_000.0,
            "{op:?} N=4 mean {}",
            n4.stats.mean_ns
        );
        assert!(
            n64.stats.mean_ns < 10_000.0,
            "{op:?} N=64 mean {}",
            n64.stats.mean_ns
        );
        // A 64-entry queue must not be dramatically cheaper than a 4-entry
        // one (log-scale growth, allow generous noise).
        assert!(n64.stats.mean_ns * 4.0 > n4.stats.mean_ns, "{op:?}");
    }
}

/// §3 cache paragraph: for realistic working sets, migration and local
/// preemption reload costs are of the same order of magnitude; only small
/// working sets favour local switches strongly.
#[test]
fn cache_crossover_matches_the_paper_argument() {
    let results = CacheCrossoverExperiment::new()
        .working_set_sizes(vec![4 * 1024, 64 * 1024, 1024 * 1024, 4 * 1024 * 1024])
        .run();
    let small = &results.points()[0];
    let large = results.points().last().unwrap();
    // Small working set: staying local is much cheaper.
    assert!(small.analytic.migration_penalty_ratio() > 3.0);
    // Large working set: same order of magnitude (within 3x).
    assert!(large.analytic.migration_penalty_ratio() < 3.0);
    assert!(large.simulated.migration_penalty_ratio() < 3.0);
}
