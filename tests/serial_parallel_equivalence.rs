//! End-to-end guard for the `spms` CLI: under a fixed `--seed`, the JSON a
//! sweep emits with `--threads 1` is byte-identical to `--threads 4`.
//!
//! The library-level invariance tests in `crates/experiments` pin the
//! `SweepRunner` contract per driver; this suite drives the real binary so
//! the flag plumbing, the JSON envelope and stdout itself are covered too —
//! it is the same invariant CI's `bench-smoke` job relies on when it diffs
//! benchmark artifacts across runs.

use std::process::Command;

fn spms(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_spms"))
        .args(args)
        .output()
        .expect("spms binary runs");
    assert!(
        output.status.success(),
        "spms {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("spms emits UTF-8")
}

fn assert_threads_invariant(subcommand: &str, extra: &[&str]) {
    let run = |threads: &str| {
        let mut args = vec![
            subcommand,
            "--seed",
            "2011",
            "--format",
            "json",
            "--threads",
            threads,
        ];
        args.extend_from_slice(extra);
        spms(&args)
    };
    let serial = run("1");
    let parallel = run("4");
    // The thread count is part of the envelope (it documents how the run was
    // produced), so compare the results payloads.
    let strip = |s: &str| s.replace("\"threads\":1", "").replace("\"threads\":4", "");
    assert_eq!(
        strip(&serial),
        strip(&parallel),
        "`spms {subcommand}` output depends on --threads"
    );
    assert!(serial.contains("\"experiment\""));
    assert!(serial.contains("\"results\""));
}

#[test]
fn acceptance_json_is_identical_across_thread_counts() {
    assert_threads_invariant(
        "acceptance",
        &[
            "--sets-per-point",
            "4",
            "--tasks-per-set",
            "8",
            "--points",
            "0.5,0.9",
        ],
    );
}

#[test]
fn core_sweep_json_is_identical_across_thread_counts() {
    assert_threads_invariant("cores", &["--sets-per-point", "4", "--core-counts", "2,4"]);
}

#[test]
fn inapplicable_common_flags_are_rejected_not_ignored() {
    // `cache` is deterministic and `anatomy` is a single simulation: a seed
    // sweep against them must fail loudly, not return identical output.
    for args in [
        ["cache", "--seed", "7"],
        ["cache", "--sets-per-point", "5"],
        ["anatomy", "--threads", "4"],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_spms"))
            .args(args)
            .output()
            .expect("spms binary runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "spms {args:?} should be rejected"
        );
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("does not support"),
            "spms {args:?} stderr should name the unsupported flag"
        );
    }
}

#[test]
fn usage_errors_exit_with_code_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_spms"))
        .args(["acceptance", "--no-such-flag", "1"])
        .output()
        .expect("spms binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--no-such-flag"));
}

#[test]
fn help_lists_every_subcommand() {
    let help = spms(&["--help"]);
    for subcommand in [
        "acceptance",
        "sensitivity",
        "cache",
        "anatomy",
        "runtime",
        "cores",
        "global",
    ] {
        assert!(help.contains(subcommand), "--help misses {subcommand}");
    }
}
