//! End-to-end guard for the `spms` CLI: under a fixed `--seed`, the JSON a
//! sweep emits with `--threads 1` is byte-identical to `--threads 4`.
//!
//! The library-level invariance tests in `crates/experiments` pin the
//! `SweepRunner` contract per driver; this suite drives the real binary so
//! the flag plumbing, the JSON envelope and stdout itself are covered too —
//! it is the same invariant CI's `bench-smoke` job relies on when it diffs
//! benchmark artifacts across runs.

use std::process::Command;

fn spms(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_spms"))
        .args(args)
        .output()
        .expect("spms binary runs");
    assert!(
        output.status.success(),
        "spms {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout).expect("spms emits UTF-8")
}

fn assert_threads_invariant(subcommand: &str, extra: &[&str]) {
    let run = |threads: &str| {
        let mut args = vec![
            subcommand,
            "--seed",
            "2011",
            "--format",
            "json",
            "--threads",
            threads,
        ];
        args.extend_from_slice(extra);
        spms(&args)
    };
    let serial = run("1");
    let parallel = run("4");
    // The thread count is part of the envelope (it documents how the run was
    // produced), so compare the results payloads.
    let strip = |s: &str| s.replace("\"threads\":1", "").replace("\"threads\":4", "");
    assert_eq!(
        strip(&serial),
        strip(&parallel),
        "`spms {subcommand}` output depends on --threads"
    );
    assert!(serial.contains("\"experiment\""));
    assert!(serial.contains("\"results\""));
}

#[test]
fn acceptance_json_is_identical_across_thread_counts() {
    assert_threads_invariant(
        "acceptance",
        &[
            "--sets-per-point",
            "4",
            "--tasks-per-set",
            "8",
            "--points",
            "0.5,0.9",
        ],
    );
}

#[test]
fn core_sweep_json_is_identical_across_thread_counts() {
    assert_threads_invariant("cores", &["--sets-per-point", "4", "--core-counts", "2,4"]);
}

#[test]
fn online_churn_json_is_identical_across_thread_counts() {
    assert_threads_invariant(
        "online",
        &[
            "--sets-per-point",
            "2",
            "--events",
            "30",
            "--points",
            "0.6,0.85",
        ],
    );
}

#[test]
fn online_replay_reports_zero_misses() {
    // The acceptance-criterion check: every admitted epoch of a churn run
    // simulates without deadline misses.
    let out = spms(&[
        "online",
        "--sets-per-point",
        "2",
        "--events",
        "40",
        "--points",
        "0.7",
        "--format",
        "json",
    ]);
    assert!(out.contains("\"replay_misses\":0"), "misses in: {out}");
    assert!(!out.contains("\"replayed_epochs\":0"), "replay was skipped");
}

#[test]
fn inapplicable_common_flags_are_rejected_not_ignored() {
    // `cache` is deterministic and `anatomy` is a single simulation: a seed
    // sweep against them must fail loudly, not return identical output.
    for args in [
        ["cache", "--seed", "7"],
        ["cache", "--sets-per-point", "5"],
        ["anatomy", "--threads", "4"],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_spms"))
            .args(args)
            .output()
            .expect("spms binary runs");
        assert_eq!(
            output.status.code(),
            Some(2),
            "spms {args:?} should be rejected"
        );
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("does not support"),
            "spms {args:?} stderr should name the unsupported flag"
        );
    }
}

#[test]
fn online_rejects_degenerate_configurations() {
    // An invalid churn config must be a loud usage error, not an all-zero
    // success table (the sweep grid silently skips failed cells).
    for args in [["online", "--events", "0"], ["online", "--cores", "0"]] {
        let output = Command::new(env!("CARGO_BIN_EXE_spms"))
            .args(args)
            .output()
            .expect("spms binary runs");
        assert_eq!(output.status.code(), Some(2), "spms {args:?} should fail");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("at least 1"),
            "spms {args:?} stderr should explain the bound"
        );
    }
}

#[test]
fn metrics_flag_writes_both_expositions() {
    let dir = std::env::temp_dir();
    let prom = dir.join(format!("spms_metrics_{}.prom", std::process::id()));
    let json = dir.join(format!("spms_metrics_{}.json", std::process::id()));

    spms(&[
        "soak",
        "--cores",
        "4",
        "--events",
        "120",
        "--sets-per-point",
        "1",
        "--metrics",
        prom.to_str().unwrap(),
        "--format",
        "json",
    ]);
    let text = std::fs::read_to_string(&prom).expect("prom metrics written");
    assert!(text.contains("# TYPE spms_admitted_total counter"));
    assert!(text.contains("spms_mech_rebalance_ticks_total"));
    assert!(text.contains("spms_timing_decision_latency_ns"));

    spms(&[
        "online",
        "--events",
        "30",
        "--sets-per-point",
        "1",
        "--points",
        "0.6",
        "--metrics",
        json.to_str().unwrap(),
        "--metrics-format",
        "json",
        "--format",
        "json",
    ]);
    let text = std::fs::read_to_string(&json).expect("json metrics written");
    assert!(text.contains("\"spms_admitted_total\""));

    let _ = std::fs::remove_file(prom);
    let _ = std::fs::remove_file(json);
}

#[test]
fn metrics_format_without_metrics_is_rejected() {
    let output = Command::new(env!("CARGO_BIN_EXE_spms"))
        .args(["soak", "--events", "30", "--metrics-format", "json"])
        .output()
        .expect("spms binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--metrics-format requires"));
}

#[test]
fn usage_errors_exit_with_code_2() {
    let output = Command::new(env!("CARGO_BIN_EXE_spms"))
        .args(["acceptance", "--no-such-flag", "1"])
        .output()
        .expect("spms binary runs");
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--no-such-flag"));
}

#[test]
fn help_lists_every_subcommand() {
    let help = spms(&["--help"]);
    for subcommand in [
        "acceptance",
        "sensitivity",
        "cache",
        "anatomy",
        "runtime",
        "cores",
        "global",
        "online",
    ] {
        assert!(help.contains(subcommand), "--help misses {subcommand}");
    }
}

#[test]
fn subcommand_help_is_command_specific() {
    let online = spms(&["online", "--help"]);
    assert!(online.contains("--events"));
    assert!(online.contains("--repair-moves"));
    assert!(online.contains("--replay-ms"));
    assert!(online.contains("--threads"), "common options included");
    assert!(
        !online.contains("--core-counts"),
        "online help leaked another command's flags"
    );

    let cores = spms(&["cores", "--help"]);
    assert!(cores.contains("--core-counts"));
    assert!(!cores.contains("--events"));

    // `--help` after the flags still prints the page instead of running.
    let late = spms(&["acceptance", "--points", "0.5", "--help"]);
    assert!(late.contains("spms acceptance —"));

    // Unknown commands fall back to the global page.
    let unknown = spms(&["no-such-command", "--help"]);
    assert!(unknown.contains("USAGE:\n    spms <COMMAND>"));
}

#[test]
fn subcommand_help_never_advertises_rejected_flags() {
    // `cache` rejects --seed/--sets-per-point and `anatomy` additionally
    // --threads; their help pages must not advertise what the parser
    // refuses.
    let cache = spms(&["cache", "--help"]);
    assert!(!cache.contains("--seed"));
    assert!(!cache.contains("--sets-per-point"));
    assert!(cache.contains("--threads"), "cache still fans out");

    let anatomy = spms(&["anatomy", "--help"]);
    for flag in ["--seed", "--sets-per-point", "--threads"] {
        assert!(!anatomy.contains(flag), "anatomy help advertises {flag}");
    }
    assert!(anatomy.contains("--format"));
}
