//! End-to-end pipeline tests across all workspace crates: generation →
//! partitioning → analysis → simulation → experiment reporting.

use spms::analysis::{OverheadModel, UniprocessorTest};
use spms::core::{PartitionOutcome, PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
use spms::experiments::{
    AcceptanceRatioExperiment, AlgorithmKind, CacheCrossoverExperiment, PreemptionAnatomy,
};
use spms::sim::{SimulationConfig, Simulator};
use spms::task::{TaskSetGenerator, Time};

#[test]
fn full_pipeline_fpts_with_overheads() {
    let tasks = TaskSetGenerator::new()
        .task_count(16)
        .total_utilization(3.4)
        .working_set_range(16 * 1024, 1024 * 1024)
        .seed(42)
        .generate()
        .expect("valid generator configuration");
    tasks.validate().expect("generated set is valid");

    let outcome = SemiPartitionedFpTs::default()
        .with_overhead(OverheadModel::paper_n4())
        .partition(&tasks, 4)
        .expect("valid inputs");
    let partition = match outcome {
        PartitionOutcome::Schedulable(p) => p,
        PartitionOutcome::Unschedulable { reason } => {
            panic!("expected a schedulable partition, got: {reason}")
        }
    };
    partition.validate().expect("well-formed partition");
    assert!(partition.is_schedulable(UniprocessorTest::ResponseTime));
    assert_eq!(partition.core_count(), 4);
    // Every original task is placed (split tasks appear once per piece).
    assert!(partition.placement_count() >= tasks.len());

    let report = Simulator::new(
        &partition,
        SimulationConfig::new(Time::from_secs(1)).with_overhead(OverheadModel::paper_n4()),
    )
    .run();
    assert!(report.no_deadline_misses());
    assert!(report.jobs_completed > 0);
    assert!(report.average_utilization() > 0.0);
}

#[test]
fn partitioned_algorithms_never_migrate_and_fpts_migrates_only_split_tasks() {
    let tasks = TaskSetGenerator::new()
        .task_count(12)
        .total_utilization(3.6)
        .seed(77)
        .generate()
        .unwrap();

    if let PartitionOutcome::Schedulable(p) = PartitionedFixedPriority::ffd()
        .partition(&tasks, 4)
        .unwrap()
    {
        let report = Simulator::new(&p, SimulationConfig::new(Time::from_millis(500))).run();
        assert_eq!(report.migrations, 0, "partitioned tasks never migrate");
    }

    if let PartitionOutcome::Schedulable(p) =
        SemiPartitionedFpTs::default().partition(&tasks, 4).unwrap()
    {
        let report = Simulator::new(&p, SimulationConfig::new(Time::from_millis(500))).run();
        if p.split_count() > 0 {
            assert!(report.migrations > 0, "split tasks migrate at run time");
        } else {
            assert_eq!(report.migrations, 0);
        }
    }
}

#[test]
fn acceptance_experiment_orders_algorithms_like_the_paper() {
    let results = AcceptanceRatioExperiment::new()
        .cores(4)
        .tasks_per_set(12)
        .utilization_points(vec![0.7, 0.95])
        .sets_per_point(15)
        .algorithms(vec![
            AlgorithmKind::FpTs,
            AlgorithmKind::Ffd,
            AlgorithmKind::Wfd,
        ])
        .seed(9)
        .run();
    // At moderate utilization everyone is fine.
    for algo in AlgorithmKind::paper_lineup() {
        assert!(results.ratio_at(0.7, algo).unwrap() > 0.8, "{algo}");
    }
    // At high utilization the semi-partitioned algorithm wins.
    let fpts = results.ratio_at(0.95, AlgorithmKind::FpTs).unwrap();
    let ffd = results.ratio_at(0.95, AlgorithmKind::Ffd).unwrap();
    let wfd = results.ratio_at(0.95, AlgorithmKind::Wfd).unwrap();
    assert!(fpts >= ffd);
    assert!(fpts > wfd);
}

#[test]
fn overhead_aware_and_ideal_analyses_agree_on_easy_sets() {
    let tasks = TaskSetGenerator::new()
        .task_count(8)
        .total_utilization(1.6)
        .seed(5)
        .generate()
        .unwrap();
    for overhead in [
        OverheadModel::zero(),
        OverheadModel::paper_n4(),
        OverheadModel::paper_n64(),
    ] {
        let outcome = SemiPartitionedFpTs::default()
            .with_overhead(overhead)
            .partition(&tasks, 4)
            .unwrap();
        assert!(
            outcome.is_schedulable(),
            "a 40% loaded platform is always fine"
        );
    }
}

#[test]
fn figure1_and_cache_experiments_run_end_to_end() {
    let anatomy = PreemptionAnatomy::new().run();
    assert!(anatomy.preemptions >= 1);
    assert!(anatomy.timeline.contains("dispatch"));

    let crossover = CacheCrossoverExperiment::new()
        .working_set_sizes(vec![8 * 1024, 512 * 1024])
        .run();
    assert_eq!(crossover.points().len(), 2);
    let small = &crossover.points()[0];
    let large = &crossover.points()[1];
    assert!(
        small.analytic.migration_penalty_ratio() >= large.analytic.migration_penalty_ratio(),
        "locality matters more for small working sets"
    );
}
