//! E7 — cross-validation of the schedulability analysis against the
//! discrete-event simulator: any task set accepted by the (overhead-aware)
//! analysis must run without deadline misses when simulated, both for the
//! partitioned baselines and for semi-partitioned FP-TS.

use spms::analysis::OverheadModel;
use spms::core::{PartitionOutcome, PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
use spms::sim::{SimulationConfig, Simulator};
use spms::task::{TaskSetGenerator, Time};

fn generator(seed: u64, utilization: f64) -> TaskSetGenerator {
    TaskSetGenerator::new()
        .task_count(12)
        .total_utilization(utilization)
        .seed(seed)
}

fn simulate_clean(partition: &spms::core::Partition, overhead: OverheadModel) {
    let report = Simulator::new(
        partition,
        SimulationConfig::new(Time::from_secs(2)).with_overhead(overhead),
    )
    .run();
    assert!(
        report.no_deadline_misses(),
        "simulation contradicts the analysis: {:?}",
        report.deadline_misses
    );
    assert!(report.jobs_released > 0);
}

#[test]
fn ffd_accepted_sets_simulate_without_misses() {
    let mut accepted = 0;
    for seed in 0..15 {
        let tasks = generator(seed, 3.0).generate().unwrap();
        if let PartitionOutcome::Schedulable(partition) = PartitionedFixedPriority::ffd()
            .with_overhead(OverheadModel::paper_n4())
            .partition(&tasks, 4)
            .unwrap()
        {
            accepted += 1;
            simulate_clean(&partition, OverheadModel::zero());
        }
    }
    assert!(
        accepted > 0,
        "the experiment never exercised a schedulable set"
    );
}

#[test]
fn wfd_accepted_sets_simulate_without_misses() {
    let mut accepted = 0;
    for seed in 100..110 {
        let tasks = generator(seed, 2.8).generate().unwrap();
        if let PartitionOutcome::Schedulable(partition) = PartitionedFixedPriority::wfd()
            .with_overhead(OverheadModel::paper_n4())
            .partition(&tasks, 4)
            .unwrap()
        {
            accepted += 1;
            simulate_clean(&partition, OverheadModel::zero());
        }
    }
    assert!(accepted > 0);
}

#[test]
fn fpts_accepted_sets_simulate_without_misses_including_split_tasks() {
    // Exercise both split-placement policies: the default first-fit hybrid
    // (splits only when a task fits nowhere whole) and Guan's next-fit scheme
    // (splits whenever a processor fills up), which guarantees that split
    // tasks — the paper's whole concern — are actually simulated.
    let algorithms = [
        SemiPartitionedFpTs::default(),
        SemiPartitionedFpTs::next_fit_splitting(),
    ];
    let mut accepted = 0;
    let mut with_splits = 0;
    for algorithm in &algorithms {
        for seed in 200..215 {
            let tasks = generator(seed, 3.5).generate().unwrap();
            if let PartitionOutcome::Schedulable(partition) = algorithm
                .clone()
                .with_overhead(OverheadModel::paper_n4())
                .partition(&tasks, 4)
                .unwrap()
            {
                accepted += 1;
                if partition.split_count() > 0 {
                    with_splits += 1;
                }
                simulate_clean(&partition, OverheadModel::zero());
            }
        }
    }
    assert!(accepted > 0);
    assert!(
        with_splits > 0,
        "no split task was exercised at 87% normalized utilization"
    );
}

#[test]
fn overhead_aware_analysis_is_conservative_for_runtime_overheads() {
    // Partitions accepted by the overhead-aware analysis (WCETs inflated by
    // the measured per-job overhead) keep meeting deadlines even when the
    // simulator additionally charges the overheads at run time. This is
    // doubly conservative and therefore must hold.
    for seed in 300..310 {
        let tasks = generator(seed, 3.0).generate().unwrap();
        let outcome = SemiPartitionedFpTs::default()
            .with_overhead(OverheadModel::paper_n4())
            .partition(&tasks, 4)
            .unwrap();
        if let PartitionOutcome::Schedulable(partition) = outcome {
            simulate_clean(&partition, OverheadModel::paper_n4());
        }
    }
}

#[test]
fn analysis_rejections_correspond_to_real_overload_when_demand_exceeds_capacity() {
    // A set whose total utilization exceeds the platform cannot be saved by
    // any algorithm, and simulating any forced placement shows misses.
    let tasks: spms::task::TaskSet = (0..5)
        .map(|i| spms::task::Task::new(i, Time::from_millis(9), Time::from_millis(10)).unwrap())
        .collect();
    let outcome = SemiPartitionedFpTs::default().partition(&tasks, 4).unwrap();
    assert!(!outcome.is_schedulable());
    let ffd = PartitionedFixedPriority::ffd()
        .partition(&tasks, 4)
        .unwrap();
    assert!(!ffd.is_schedulable());
}
