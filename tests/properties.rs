//! Cross-crate property-based tests: invariants that must hold for *any*
//! randomly generated task set, not just the hand-picked examples.

use proptest::prelude::*;
use spms::analysis::{rta, OverheadModel, UniprocessorTest};
use spms::core::{PartitionOutcome, PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
use spms::sim::{Chain, SimulationConfig, Simulator};
use spms::task::{Task, TaskSetGenerator, Time};

/// Strategy: a feasible task-set configuration (count, total utilization,
/// seed) for a 4-core platform. The utilization is kept at or below roughly
/// half of the task count so UUniFast-discard always terminates quickly.
fn task_set_config() -> impl Strategy<Value = (usize, f64, u64)> {
    (8usize..20, 0.1f64..0.9, any::<u64>())
        .prop_map(|(n, frac, seed)| (n, (frac * n as f64).clamp(0.5, 3.9), seed))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Generated task sets always respect their own declared parameters.
    #[test]
    fn generated_sets_are_well_formed((n, u, seed) in task_set_config()) {
        let ts = TaskSetGenerator::new()
            .task_count(n)
            .total_utilization(u)
            .seed(seed)
            .generate()
            .expect("reachable configuration");
        prop_assert_eq!(ts.len(), n);
        prop_assert!(ts.validate().is_ok());
        prop_assert!((ts.total_utilization() - u).abs() < 0.1);
        prop_assert!(ts.max_utilization() <= 1.0 + 1e-9);
        for task in &ts {
            prop_assert!(task.wcet() <= task.deadline());
            prop_assert!(task.deadline() <= task.period());
            prop_assert!(task.priority().is_some());
        }
    }

    /// Response times are never smaller than the task's own WCET and grow
    /// monotonically with added interference.
    #[test]
    fn response_times_bound_below_by_wcet((n, u, seed) in task_set_config()) {
        let mut ts = TaskSetGenerator::new()
            .task_count(n)
            .total_utilization(u)
            .seed(seed)
            .generate()
            .expect("reachable configuration");
        ts.sort_by_priority();
        let tasks: Vec<Task> = ts.iter().cloned().collect();
        for (i, task) in tasks.iter().enumerate() {
            let hp = &tasks[..i];
            if let Some(r) = rta::response_time(task, hp) {
                prop_assert!(r >= task.wcet());
                prop_assert!(r <= task.deadline());
                if let Some(r_alone) = rta::response_time(task, &[]) {
                    prop_assert!(r >= r_alone);
                }
            }
        }
    }

    /// Whatever any partitioning algorithm produces is structurally valid:
    /// every task appears, split chains are well-formed, per-core RTA passes,
    /// and partitioned algorithms never split.
    #[test]
    fn partitions_are_structurally_valid((n, u, seed) in task_set_config()) {
        let ts = TaskSetGenerator::new()
            .task_count(n)
            .total_utilization(u)
            .seed(seed)
            .generate()
            .expect("reachable configuration");
        let algorithms: Vec<(bool, Box<dyn Partitioner>)> = vec![
            (false, Box::new(PartitionedFixedPriority::ffd())),
            (false, Box::new(PartitionedFixedPriority::wfd())),
            (true, Box::new(SemiPartitionedFpTs::default())),
        ];
        for (may_split, algorithm) in &algorithms {
            let outcome = algorithm.partition(&ts, 4).expect("valid input");
            if let PartitionOutcome::Schedulable(partition) = outcome {
                prop_assert_eq!(partition.validate(), Ok(()));
                prop_assert!(partition.is_schedulable(UniprocessorTest::ResponseTime));
                if !may_split {
                    prop_assert_eq!(partition.split_count(), 0);
                    prop_assert_eq!(partition.placement_count(), ts.len());
                }
                // Every original task is represented by at least one placement.
                for task in &ts {
                    prop_assert!(
                        partition.iter().any(|(_, p)| p.parent == task.id()),
                        "task {} missing from the partition", task.id()
                    );
                }
                // Split chains preserve the parent's total execution demand
                // (no overhead model configured here).
                for task in &ts {
                    let total: Time = partition
                        .iter()
                        .filter(|(_, p)| p.parent == task.id())
                        .map(|(_, p)| p.task.wcet())
                        .sum();
                    prop_assert!(total >= task.wcet());
                }
                // At most one body piece and one tail piece per core (the
                // structural property the promoted-priority analysis relies on).
                for core in 0..partition.core_count() {
                    let placed = partition.core(spms::core::CoreId(core));
                    prop_assert!(placed.iter().filter(|p| p.is_body()).count() <= 1);
                    prop_assert!(placed.iter().filter(|p| p.is_tail()).count() <= 1);
                }
            }
        }
    }

    /// Schedulable partitions never miss deadlines in simulation (soundness
    /// of the analysis with respect to the simulated scheduler).
    #[test]
    fn accepted_partitions_simulate_cleanly((n, u, seed) in (8usize..14, 0.1f64..0.85, any::<u64>())
        .prop_map(|(n, frac, seed)| (n, (frac * n as f64).clamp(0.5, 3.6), seed)))
    {
        let ts = TaskSetGenerator::new()
            .task_count(n)
            .total_utilization(u)
            .seed(seed)
            .generate()
            .expect("reachable configuration");
        let outcome = SemiPartitionedFpTs::default().partition(&ts, 4).expect("valid input");
        if let PartitionOutcome::Schedulable(partition) = outcome {
            let report = Simulator::new(
                &partition,
                SimulationConfig::new(Time::from_millis(500)),
            )
            .run();
            prop_assert!(report.no_deadline_misses(),
                "misses for seed {seed}: {:?}", report.deadline_misses);
            prop_assert_eq!(report.migrations == 0, partition.split_count() == 0);
        }
    }

    /// The overhead-aware analysis never reports a *larger* per-core demand
    /// than what it was given: inflation adds exactly the per-job overhead to
    /// every WCET and leaves periods and deadlines untouched.
    #[test]
    fn overhead_inflation_is_exact((n, u, seed) in (8usize..14, 0.2f64..0.7, any::<u64>())
        .prop_map(|(n, frac, seed)| (n, (frac * n as f64).clamp(0.5, 3.0), seed)))
    {
        let ts = TaskSetGenerator::new()
            .task_count(n)
            .total_utilization(u)
            .seed(seed)
            .generate()
            .expect("reachable configuration");
        let model = OverheadModel::paper_n4();
        if let Ok(inflated) = model.inflate_task_set(&ts) {
            for (orig, infl) in ts.iter().zip(inflated.iter()) {
                prop_assert_eq!(infl.wcet(), orig.wcet() + model.job_overhead_normal());
                prop_assert_eq!(infl.period(), orig.period());
                prop_assert_eq!(infl.deadline(), orig.deadline());
            }
        }
    }

    /// Chains extracted for the simulator cover each task exactly once and
    /// keep the parent's period.
    #[test]
    fn chains_match_partitions((n, u, seed) in task_set_config()) {
        let ts = TaskSetGenerator::new()
            .task_count(n)
            .total_utilization(u)
            .seed(seed)
            .generate()
            .expect("reachable configuration");
        if let PartitionOutcome::Schedulable(partition) =
            SemiPartitionedFpTs::default().partition(&ts, 4).expect("valid input")
        {
            let chains = Chain::from_partition(&partition);
            prop_assert_eq!(chains.len(), ts.len());
            for task in &ts {
                let chain = chains
                    .iter()
                    .find(|c| c.parent == task.id())
                    .expect("every task has a chain");
                prop_assert_eq!(chain.period, task.period());
                prop_assert_eq!(chain.deadline, task.deadline());
                prop_assert!(chain.total_budget() >= task.wcet());
            }
        }
    }
}
