//! E10 — cross-paradigm integration tests: global vs. partitioned vs.
//! semi-partitioned scheduling on the same task sets, exercising the public
//! API of `spms::global`, `spms::core` and `spms::sim` together.

use spms::core::{
    PartitionOutcome, PartitionedFixedPriority, Partitioner, SemiPartitionedDmPm,
    SemiPartitionedFpTs,
};
use spms::global::{GlobalPolicy, GlobalSchedulabilityTest, GlobalSimulator};
use spms::sim::{SimulationConfig, Simulator};
use spms::task::{PriorityAssignment, Task, TaskSet, TaskSetGenerator, Time};

fn motivating_example() -> TaskSet {
    let mut tasks: TaskSet = (0..3)
        .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)).unwrap())
        .collect();
    tasks.assign_priorities(PriorityAssignment::RateMonotonic);
    tasks
}

#[test]
fn only_semi_partitioned_scheduling_handles_the_motivating_example() {
    let tasks = motivating_example();

    // Partitioned: no assignment of three 60% tasks onto two cores exists.
    assert!(!PartitionedFixedPriority::ffd()
        .partition(&tasks, 2)
        .unwrap()
        .is_schedulable());

    // Global EDF: the third job only receives a processor after 6 ms.
    let global = GlobalSimulator::new(&tasks, 2, GlobalPolicy::Edf)
        .duration(Time::from_millis(100))
        .run();
    assert!(!global.no_deadline_misses());

    // Semi-partitioned: both FP-TS and DM-PM split one task and meet every
    // deadline in simulation, with one migration per period of the split
    // task.
    for algorithm in [
        &SemiPartitionedFpTs::default() as &dyn Partitioner,
        &SemiPartitionedDmPm::new() as &dyn Partitioner,
    ] {
        let partition = algorithm
            .partition(&tasks, 2)
            .unwrap()
            .into_partition()
            .unwrap_or_else(|| panic!("{} must accept the motivating example", algorithm.name()));
        assert_eq!(partition.split_count(), 1, "{}", algorithm.name());
        let report =
            Simulator::new(&partition, SimulationConfig::new(Time::from_millis(100))).run();
        assert!(
            report.no_deadline_misses(),
            "{}: {:?}",
            algorithm.name(),
            report.deadline_misses
        );
        assert_eq!(report.migrations, 10, "{}", algorithm.name());
    }
}

#[test]
fn semi_partitioned_analysis_accepts_more_than_the_global_sufficient_tests() {
    let mut fpts = 0usize;
    let mut best_global = 0usize;
    for seed in 0..25u64 {
        let mut tasks = TaskSetGenerator::new()
            .task_count(16)
            .total_utilization(3.4)
            .seed(seed)
            .generate()
            .unwrap();
        tasks.assign_priorities(PriorityAssignment::RateMonotonic);
        if SemiPartitionedFpTs::default()
            .partition(&tasks, 4)
            .unwrap()
            .is_schedulable()
        {
            fpts += 1;
        }
        if [
            GlobalSchedulabilityTest::GfbDensity,
            GlobalSchedulabilityTest::BclFixedPriority,
            GlobalSchedulabilityTest::RmUs,
        ]
        .iter()
        .any(|t| t.accepts(&tasks, 4))
        {
            best_global += 1;
        }
    }
    assert!(
        fpts > best_global,
        "FP-TS accepted {fpts}/25, the best global test accepted {best_global}/25"
    );
}

#[test]
fn dmpm_and_fpts_agree_with_ffd_on_easily_partitionable_sets() {
    for seed in 0..10u64 {
        let tasks = TaskSetGenerator::new()
            .task_count(12)
            .total_utilization(2.4)
            .seed(seed)
            .generate()
            .unwrap();
        let ffd = PartitionedFixedPriority::ffd()
            .partition(&tasks, 4)
            .unwrap()
            .is_schedulable();
        let fpts = SemiPartitionedFpTs::default()
            .partition(&tasks, 4)
            .unwrap()
            .is_schedulable();
        let dmpm = SemiPartitionedDmPm::new()
            .partition(&tasks, 4)
            .unwrap()
            .is_schedulable();
        assert!(
            ffd,
            "seed {seed}: a 60%-loaded platform must be FFD-schedulable"
        );
        assert!(fpts, "seed {seed}");
        assert!(dmpm, "seed {seed}");
    }
}

#[test]
fn global_simulation_and_partitioned_simulation_agree_on_light_sets() {
    // A light set is schedulable under every paradigm; the simulators must
    // both report zero misses.
    for seed in 0..5u64 {
        let mut tasks = TaskSetGenerator::new()
            .task_count(8)
            .total_utilization(1.6)
            .seed(seed)
            .generate()
            .unwrap();
        tasks.assign_priorities(PriorityAssignment::RateMonotonic);

        let global = GlobalSimulator::new(&tasks, 4, GlobalPolicy::FixedPriority)
            .duration(Time::from_millis(500))
            .run();
        assert!(global.no_deadline_misses(), "seed {seed} (global)");

        let PartitionOutcome::Schedulable(partition) = PartitionedFixedPriority::ffd()
            .partition(&tasks, 4)
            .unwrap()
        else {
            panic!("seed {seed}: light set must partition");
        };
        let partitioned =
            Simulator::new(&partition, SimulationConfig::new(Time::from_millis(500))).run();
        assert!(
            partitioned.no_deadline_misses(),
            "seed {seed} (partitioned)"
        );
    }
}
