//! Ablation of the task-splitting policy (DESIGN.md ablation 1, experiments
//! E5/E8): FP-TS with the packing-oriented first-fit placement, FP-TS with
//! Guan's original next-fit splitting pass, and the DM-PM algorithm of
//! Kato & Yamasaki, compared on acceptance ratio and on the run-time costs
//! (splits, migrations, scheduler overhead) of the partitions they produce.
//!
//! Run with `cargo run --release --example splitting_policies`.

use spms::analysis::OverheadModel;
use spms::experiments::{AcceptanceRatioExperiment, AlgorithmKind, RuntimeCostExperiment};
use spms::task::Time;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sets = if quick { 20 } else { 100 };

    let lineup = vec![
        AlgorithmKind::FpTs,
        AlgorithmKind::FpTsNextFit,
        AlgorithmKind::DmPm,
        AlgorithmKind::Ffd,
    ];

    println!("=== acceptance ratio by splitting policy ({sets} sets/point, 4 cores, measured overheads) ===");
    let acceptance = AcceptanceRatioExperiment::new()
        .cores(4)
        .tasks_per_set(14)
        .utilization_points((12..=20).map(|i| i as f64 * 0.05).collect())
        .sets_per_point(sets)
        .algorithms(lineup.clone())
        .overhead(OverheadModel::paper_n4())
        .seed(2011)
        .threads(0)
        .run();
    println!("{}", acceptance.render_markdown());

    println!("=== simulated run-time cost of the accepted partitions (1 s windows) ===");
    let runtime = RuntimeCostExperiment::new()
        .cores(4)
        .tasks_per_set(14)
        .utilization_points(vec![0.6, 0.75, 0.9])
        .sets_per_point(sets.min(30))
        .algorithms(lineup)
        .overhead(OverheadModel::paper_n4())
        .simulation_window(Time::from_secs(1))
        .seed(2011)
        .threads(0)
        .run();
    println!("{}", runtime.render_markdown());

    println!(
        "Reading guide: FP-TS/NF splits on every processor boundary and therefore migrates the most;\n\
         the overhead % column shows that even then the scheduler consumes well below 1% of the\n\
         processor — the paper's core claim that task splitting is cheap at run time."
    );
}
