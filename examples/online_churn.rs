//! Online admission control under task churn.
//!
//! Generates a seeded churn trace (Poisson arrivals, log-uniform
//! lifetimes), drives the `spms-online` admission controller over it while
//! replaying every admitted epoch through the discrete-event simulator,
//! then prints the decision mix and the full churn sweep table.
//!
//! ```sh
//! cargo run --release --example online_churn
//! ```

use spms::experiments::ChurnExperiment;
use spms::online::{run_trace, AdmissionController, ChurnGenerator, OnlineConfig, ReplayConfig};
use spms::task::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One trace, narrated.
    let events = ChurnGenerator::new()
        .cores(4)
        .target_normalized_utilization(0.75)
        .events(120)
        .seed(2011)
        .generate()?;
    let mut controller = AdmissionController::new(OnlineConfig::new(4))?;
    let replay = ReplayConfig::new(Time::from_millis(50));
    let (_, replay_outcome) = run_trace(&mut controller, &events, Some(&replay));

    let stats = controller.stats();
    println!("one churn trace on 4 cores, target U/m = 0.75:");
    println!(
        "  {} arrivals, {} admitted ({:.0}%), {} departures",
        stats.arrivals,
        stats.admitted,
        100.0 * stats.acceptance_ratio(),
        stats.departures,
    );
    println!(
        "  decision paths: {} fast-whole, {} fast-split, {} repair, {} full repartition",
        stats.fast_whole, stats.fast_split, stats.repairs, stats.full_repartitions,
    );
    println!(
        "  {} already-placed tasks migrated; replay: {} epochs, {} deadline misses",
        stats.migrations_caused, replay_outcome.epochs, replay_outcome.deadline_misses,
    );

    // The sweep: acceptance under churn as the target load grows.
    println!("\nchurn sweep (20 traces per point, 120 events each):\n");
    let results = ChurnExperiment::new().cores(4).threads(0).seed(2011).run();
    print!("{}", results.render_markdown());
    assert_eq!(results.total_replay_misses(), 0);
    Ok(())
}
