//! E10 — the backdrop of the paper's introduction: global scheduling vs.
//! partitioned scheduling vs. semi-partitioned scheduling.
//!
//! Two views are printed:
//!
//! 1. the acceptance-ratio sweep of FP-TS and FFD against the sufficient
//!    global schedulability tests (G-EDF GFB, G-FP BCL, RM-US), and
//! 2. a concrete simulation of the motivating three-task example (three 60 %
//!    tasks on two cores), which global EDF and partitioning both fail while
//!    FP-TS schedules it by splitting one task.
//!
//! Run with `cargo run --release --example global_vs_partitioned`.

use spms::core::{PartitionOutcome, PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
use spms::experiments::GlobalComparisonExperiment;
use spms::global::{GlobalPolicy, GlobalSimulator};
use spms::sim::{SimulationConfig, Simulator};
use spms::task::{PriorityAssignment, Task, TaskSet, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let sets = if quick { 20 } else { 100 };

    println!("=== acceptance ratio: partitioned / semi-partitioned vs sufficient global tests ===");
    let comparison = GlobalComparisonExperiment::new()
        .cores(4)
        .tasks_per_set(16)
        .sets_per_point(sets)
        .seed(2011)
        .threads(0)
        .run();
    println!("{}", comparison.render_markdown());

    println!("=== the motivating example: three 60% tasks on two cores ===");
    let mut tasks: TaskSet = (0..3)
        .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)))
        .collect::<Result<_, _>>()?;
    tasks.assign_priorities(PriorityAssignment::RateMonotonic);

    // Partitioned: no assignment exists.
    let ffd = PartitionedFixedPriority::ffd().partition(&tasks, 2)?;
    println!(
        "FFD:   {}",
        match ffd {
            PartitionOutcome::Schedulable(_) => "schedulable".to_owned(),
            PartitionOutcome::Unschedulable { reason } => format!("unschedulable ({reason})"),
        }
    );

    // Global EDF: simulate and count the misses.
    let global = GlobalSimulator::new(&tasks, 2, GlobalPolicy::Edf)
        .duration(Time::from_millis(200))
        .run();
    println!(
        "G-EDF: {} deadline misses in 200 ms ({} jobs released)",
        global.deadline_misses.len(),
        global.jobs_released
    );

    // Semi-partitioned FP-TS: split one task, simulate, count migrations.
    match SemiPartitionedFpTs::default().partition(&tasks, 2)? {
        PartitionOutcome::Schedulable(partition) => {
            let report =
                Simulator::new(&partition, SimulationConfig::new(Time::from_millis(200))).run();
            println!(
                "FP-TS: schedulable with {} split task(s); simulation: {} misses, {} migrations",
                partition.split_count(),
                report.deadline_misses.len(),
                report.migrations
            );
        }
        PartitionOutcome::Unschedulable { reason } => println!("FP-TS: unschedulable ({reason})"),
    }
    Ok(())
}
