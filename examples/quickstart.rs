//! Quickstart: generate a random task set, partition it with FP-TS and FFD,
//! compare the outcomes, and simulate the FP-TS partition for two seconds
//! with the paper's measured overheads.
//!
//! Run with `cargo run --release --example quickstart`.

use spms::analysis::OverheadModel;
use spms::core::{PartitionOutcome, PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
use spms::sim::{SimulationConfig, Simulator};
use spms::task::{TaskSetGenerator, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A task set that is hard for plain partitioning: 12 tasks at 88% of a
    // 4-core machine.
    let tasks = TaskSetGenerator::new()
        .task_count(12)
        .total_utilization(3.55)
        .seed(2011)
        .generate()?;
    println!(
        "generated {} tasks, total utilization {:.3} (max per-task {:.3})",
        tasks.len(),
        tasks.total_utilization(),
        tasks.max_utilization()
    );

    let overhead = OverheadModel::paper_n4();
    let cores = 4;

    let algorithms: Vec<Box<dyn Partitioner>> = vec![
        Box::new(PartitionedFixedPriority::ffd().with_overhead(overhead)),
        Box::new(PartitionedFixedPriority::wfd().with_overhead(overhead)),
        Box::new(SemiPartitionedFpTs::default().with_overhead(overhead)),
    ];
    for algorithm in &algorithms {
        match algorithm.partition(&tasks, cores)? {
            PartitionOutcome::Schedulable(partition) => {
                println!(
                    "{:<8} schedulable on {cores} cores | split tasks: {} | per-core utilization: {:?}",
                    algorithm.name(),
                    partition.split_count(),
                    partition
                        .core_utilizations()
                        .iter()
                        .map(|u| format!("{u:.2}"))
                        .collect::<Vec<_>>()
                );
            }
            PartitionOutcome::Unschedulable { reason } => {
                println!("{:<8} unschedulable: {reason}", algorithm.name());
            }
        }
    }

    // Simulate the semi-partitioned schedule with overheads injected.
    if let PartitionOutcome::Schedulable(partition) =
        SemiPartitionedFpTs::default().partition(&tasks, cores)?
    {
        let report = Simulator::new(
            &partition,
            SimulationConfig::new(Time::from_secs(2)).with_overhead(overhead),
        )
        .run();
        println!(
            "\nsimulated 2 s: {} jobs released, {} completed, {} deadline misses, \
             {} migrations, {} preemptions, overhead fraction {:.2}%",
            report.jobs_released,
            report.jobs_completed,
            report.deadline_misses.len(),
            report.migrations,
            report.preemptions,
            report.overhead_fraction() * 100.0
        );
    }
    Ok(())
}
