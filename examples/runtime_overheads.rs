//! E8 — the run-time side of the paper's claim: how many preemptions and
//! migrations the accepted partitions actually incur, and what fraction of
//! the processor the injected scheduler overheads consume, measured with the
//! discrete-event simulator.
//!
//! Run with `cargo run --release --example runtime_overheads`.

use spms::analysis::OverheadModel;
use spms::experiments::{AlgorithmKind, RuntimeCostExperiment};
use spms::task::Time;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sets = if quick { 10 } else { 40 };

    for (label, overhead) in [
        (
            "measured overheads, N = 4 tasks per core",
            OverheadModel::paper_n4(),
        ),
        (
            "measured overheads, N = 64 tasks per core",
            OverheadModel::paper_n64(),
        ),
    ] {
        println!("=== run-time cost with {label} ({sets} sets/point, 4 cores, 1 s windows) ===");
        let results = RuntimeCostExperiment::new()
            .cores(4)
            .tasks_per_set(12)
            .utilization_points(vec![0.5, 0.65, 0.8, 0.9])
            .sets_per_point(sets)
            .algorithms(vec![
                AlgorithmKind::FpTs,
                AlgorithmKind::FpTsNextFit,
                AlgorithmKind::Ffd,
            ])
            .overhead(overhead)
            .simulation_window(Time::from_secs(1))
            .seed(42)
            .threads(0)
            .run();
        println!("{}", results.render_markdown());
    }

    println!(
        "The `misses` column is the soundness check: every simulated partition was accepted by the\n\
         overhead-aware analysis, so it must be 0.00 everywhere. The `overhead %` column is the\n\
         paper's headline: even the migration-heavy FP-TS/NF configuration spends only a fraction\n\
         of a percent of the processor inside the scheduler."
    );
}
