//! E4 — the cache argument of §3: the reload cost after a local context
//! switch vs. after a cross-core migration, swept over working-set sizes on
//! a Core-i7-like hierarchy (private L1/L2, shared L3).
//!
//! Run with `cargo run --release --example cache_crossover`.

use spms::experiments::CacheCrossoverExperiment;

fn main() {
    let results = CacheCrossoverExperiment::new().threads(0).run();
    println!("=== cache reload cost: local preemption vs migration (Core-i7-like hierarchy) ===\n");
    println!("{}", results.render_markdown());
    match results.crossover_bytes(2.0) {
        Some(bytes) => println!(
            "Migrating costs at least 2x a local context switch only for working sets up to \
             {} KiB — larger working sets are evicted from the private caches either way and \
             reload from the shared L3, which is the paper's 'same order of magnitude' argument.",
            bytes / 1024
        ),
        None => println!("Migration never costs 2x a local context switch on this hierarchy."),
    }
    println!("\nCSV:\n{}", results.render_csv());
}
