//! E3 — Figure 1: the annotated timeline of one preemption, showing where
//! the release, scheduling, context-switch and cache overheads land.
//!
//! Run with `cargo run --release --example preemption_anatomy`.

use spms::analysis::OverheadModel;
use spms::experiments::PreemptionAnatomy;

fn main() {
    let anatomy = PreemptionAnatomy::new();
    let with = anatomy.clone().run();
    let without = anatomy.overhead(OverheadModel::zero()).run();

    println!("=== Figure 1 scenario: tau1 (C=1ms, T=5ms) preempts tau2 (C=6ms, T=20ms) ===\n");
    println!("--- timeline with the paper's measured overheads ---");
    println!("{}", with.timeline);
    println!("--- timeline without overheads ---");
    println!("{}", without.timeline);

    println!("preemptions per 20 ms window : {}", with.preemptions);
    println!(
        "overhead per release-preempt-resume episode: {}",
        with.per_preemption_overhead
    );
    println!(
        "total scheduler overhead in the window    : {}",
        with.total_overhead
    );
    match (with.tau2_first_response, without.tau2_first_response) {
        (Some(w), Some(wo)) => println!(
            "response time of tau2's first job          : {} with overheads vs {} without",
            w, wo
        ),
        _ => println!("tau2 did not complete inside the window"),
    }
}
