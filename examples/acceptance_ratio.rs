//! E5 — the paper's §4 evaluation: acceptance ratio of FP-TS vs FFD vs WFD
//! across a normalized-utilization sweep, without overhead and with the
//! measured N = 4 and N = 64 overheads.
//!
//! Run with `cargo run --release --example acceptance_ratio`. Pass `--quick`
//! for a coarse preview. The sweep fans out across all host cores through
//! the shared `SweepRunner`; the `spms acceptance` CLI subcommand exposes
//! the same experiment with configurable flags.

use spms::analysis::OverheadModel;
use spms::experiments::AcceptanceRatioExperiment;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sets, tasks) = if quick { (20, 12) } else { (200, 16) };
    let sweep: Vec<f64> = (10..=20).map(|i| i as f64 * 0.05).collect();

    let base = AcceptanceRatioExperiment::new()
        .cores(4)
        .tasks_per_set(tasks)
        .utilization_points(sweep)
        .sets_per_point(sets)
        .seed(2011)
        .threads(0); // one worker per host core; results are thread-count invariant

    println!(
        "=== acceptance ratio, no overhead ({sets} sets/point, {tasks} tasks/set, 4 cores) ==="
    );
    let ideal = base.clone().run();
    println!("{}", ideal.render_markdown());

    println!("=== acceptance ratio, measured overheads (N = 4 per core) ===");
    let n4 = base.clone().overhead(OverheadModel::paper_n4()).run();
    println!("{}", n4.render_markdown());

    println!("=== acceptance ratio, measured overheads (N = 64 per core) ===");
    let n64 = base.overhead(OverheadModel::paper_n64()).run();
    println!("{}", n64.render_markdown());

    println!("=== CSV (no overhead) ===");
    println!("{}", ideal.render_csv());
}
