//! E1 + E2 — regenerate the paper's Table 1 (queue operation durations) and
//! the scheduler-function costs against this machine, then print the
//! calibrated overhead model that the other experiments can use instead of
//! the paper's hard-coded numbers.
//!
//! Run with `cargo run --release --example overhead_table`.

use spms::overhead::{FunctionCosts, MeasurementConfig, QueueOpBenchmark};
use spms::task::Time;

fn main() {
    let config = MeasurementConfig::default();

    println!("=== Table 1: queue operation durations (this machine, user space) ===");
    let table = QueueOpBenchmark::new(config).measure_table1();
    println!("{}", table.render_markdown());
    println!(
        "paper (kernel space, Core-i7): ready add 1.5/3.3 us (N=4), 4.4/4.6 us (N=64); \
         sleep add 2.5/2.9 us (N=4), 4.3/4.4 us (N=64)\n"
    );

    println!("=== scheduler function costs ===");
    let functions = FunctionCosts::new(config).measure(64);
    println!("{}", functions.render_markdown());

    println!("=== calibrated overhead model (cache reload taken from the CRPD model) ===");
    let model =
        functions.apply_to(table.to_overhead_model(Time::from_micros(20), Time::from_micros(25)));
    println!("{model:#?}");
    let (delta, theta) = model.delta_theta();
    println!("\nworst-case queue operations: delta = {delta}, theta = {theta}");
    println!(
        "per-job overhead of a normal task: {}",
        model.job_overhead_normal()
    );
    println!(
        "extra overhead per split-task migration: {}",
        model.migration_overhead()
    );
}
