//! Minimal vendored stand-in for the `rand` crate.
//!
//! The build container has no network access, so this shim re-implements
//! exactly the slice of the `rand 0.8` API the workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] (with `gen`, `gen_range`,
//!   `gen_bool`, `sample`),
//! * [`distributions::Distribution`] and [`distributions::Uniform`],
//! * [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the property the workspace actually relies on (seeded
//! `ChaCha8Rng` task-set generation must be reproducible), and every
//! algorithm here is a pure function of the underlying generator stream.

#![forbid(unsafe_code)]

/// Low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64, as `rand_core` does,
    /// and builds the generator from it.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea, Flood 2014): decorrelates nearby seeds.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be drawn uniformly from a generator's raw stream
/// (the shim's version of sampling from the `Standard` distribution).
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits scaled into [0, 1), the standard open-interval recipe.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {
        $(impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        })*
    };
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// Range types a value can be drawn uniformly from.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + (rng.next_u64() % (span + 1)) as $t
                }
            }
        )*
    };
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
                }
            }
        )*
    };
}

impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let f = <$t as StandardSample>::standard_sample(rng);
                    self.start + f * (self.end - self.start)
                }
            }

            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let f = <$t as StandardSample>::standard_sample(rng);
                    // Clamp keeps the inclusive upper bound reachable without
                    // ever overshooting it through rounding.
                    (lo + f * (hi - lo)).clamp(lo, hi)
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.gen::<f64>() < p
    }

    /// Draws a value from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    //! The `Distribution` trait and a uniform distribution over ranges.

    use super::{RngCore, SampleRange};

    /// Types that can produce values of `T` given a generator.
    pub trait Distribution<T> {
        /// Draws one value from `rng`.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)` or `[low, high]`.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Uniform<T> {
        low: T,
        high: T,
        inclusive: bool,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over the half-open interval `[low, high)`.
        ///
        /// # Panics
        ///
        /// Panics when `low >= high`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new requires low < high");
            Self {
                low,
                high,
                inclusive: false,
            }
        }

        /// Uniform over the closed interval `[low, high]`.
        ///
        /// # Panics
        ///
        /// Panics when `low > high`.
        pub fn new_inclusive(low: T, high: T) -> Self {
            assert!(low <= high, "Uniform::new_inclusive requires low <= high");
            Self {
                low,
                high,
                inclusive: true,
            }
        }
    }

    impl<T> Distribution<T> for Uniform<T>
    where
        T: Copy,
        core::ops::Range<T>: SampleRange<T>,
        core::ops::RangeInclusive<T>: SampleRange<T>,
    {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            if self.inclusive {
                (self.low..=self.high).sample_single(rng)
            } else {
                (self.low..self.high).sample_single(rng)
            }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    /// Extension methods on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::seq::SliceRandom;
    use super::*;

    /// Tiny deterministic generator for exercising the trait plumbing.
    struct SplitMix64(u64);

    impl RngCore for SplitMix64 {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SplitMix64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = SplitMix64(7);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniform_matches_bounds() {
        let mut rng = SplitMix64(3);
        let d = Uniform::new_inclusive(1.0f64, 2.0);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!((1.0..=2.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SplitMix64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
