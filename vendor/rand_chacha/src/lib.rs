//! Minimal vendored `rand_chacha`: a real ChaCha8 keystream generator
//! implementing the vendored `rand` shim's `RngCore`/`SeedableRng` traits.
//!
//! The workspace only needs `ChaCha8Rng::seed_from_u64(..)` to be a
//! deterministic, high-quality stream — the full `rand_chacha` feature set
//! (word positioning, streams, SIMD) is out of scope. The core permutation
//! is the genuine ChaCha quarter-round network from Bernstein's ChaCha,
//! run for 8 rounds (4 double rounds).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// "expand 32-byte k" — the ChaCha constant words.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646E, 0x7962_2D32, 0x6B20_6574];

/// A ChaCha keystream generator with 8 rounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// 256-bit key loaded from the seed (little-endian words).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// 64-bit nonce (words 14–15); always zero for seeded use.
    nonce: [u32; 2],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word index into `block`; 16 means "exhausted".
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Computes the keystream block for the current counter into `self.block`.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = self.nonce[0];
        state[15] = self.nonce[1];

        let initial = state;
        for _ in 0..4 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            nonce: [0, 0],
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should look unrelated, {same}/64 equal");
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Two full blocks (16 words each) must not repeat wholesale.
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let mut ones = 0u32;
        const SAMPLES: u32 = 4096;
        for _ in 0..SAMPLES {
            ones += rng.next_u32().count_ones();
        }
        let mean = f64::from(ones) / f64::from(SAMPLES);
        assert!((mean - 16.0).abs() < 0.5, "bit bias: mean ones {mean}");
    }
}
