//! Minimal vendored `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! for the serde shim in `vendor/serde`, written against the built-in
//! `proc_macro` API only (no `syn`/`quote` available offline).
//!
//! Supported input shapes — exactly what this workspace derives on:
//!
//! * structs with named fields (serialized as JSON objects),
//! * tuple structs (newtypes serialize transparently, as in serde_json;
//!   wider tuples as arrays),
//! * unit structs (serialized as `null`),
//! * enums with unit, tuple, and struct variants (externally tagged, the
//!   serde_json default: `"Variant"` / `{"Variant": ...}`).
//!
//! `#[serde(...)]` attributes are accepted and ignored; the only one the
//! workspace uses is `transparent`, whose newtype behaviour is the default
//! here anyway. Generic types are rejected with a clear error, as none of
//! the workspace's serialized types are generic.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the serde shim's `Serialize` for plain structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            impl_serialize(
                name,
                &format!("::serde::Value::Map(::std::vec![{entries}])"),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            impl_serialize(name, "::serde::Serialize::to_value(&self.0)")
        }
        Shape::TupleStruct { name, arity } => {
            let items: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            impl_serialize(name, &format!("::serde::Value::Seq(::std::vec![{items}])"))
        }
        Shape::UnitStruct { name } => impl_serialize(name, "::serde::Value::Null"),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            impl_serialize(name, &format!("match self {{ {arms} }}"))
        }
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives the serde shim's `Deserialize` for plain structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field(\"{f}\")?)?,"))
                .collect();
            impl_deserialize(
                name,
                &format!("::std::result::Result::Ok({name} {{ {inits} }})"),
            )
        }
        Shape::TupleStruct { name, arity: 1 } => impl_deserialize(
            name,
            &format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"),
        ),
        Shape::TupleStruct { name, arity } => {
            impl_deserialize(name, &deserialize_tuple_body(name, *arity, "__v"))
        }
        Shape::UnitStruct { name } => {
            impl_deserialize(name, &format!("::std::result::Result::Ok({name})"))
        }
        Shape::Enum { name, variants } => {
            impl_deserialize(name, &deserialize_enum_body(name, variants))
        }
    };
    body.parse().expect("generated Deserialize impl parses")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Serialize for {name} {{ \
           fn to_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived] impl ::serde::Deserialize for {name} {{ \
           fn from_value(__v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Value::Map(::std::vec![(\
               ::std::string::String::from(\"{vname}\"), \
               ::serde::Serialize::to_value(__f0))]),"
        ),
        VariantKind::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
            let items: String = binds
                .iter()
                .map(|b| format!("::serde::Serialize::to_value({b}),"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(::std::vec![(\
                   ::std::string::String::from(\"{vname}\"), \
                   ::serde::Value::Seq(::std::vec![{items}]))]),",
                binds.join(", ")
            )
        }
        VariantKind::Named(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f})),"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {} }} => ::serde::Value::Map(::std::vec![(\
                   ::std::string::String::from(\"{vname}\"), \
                   ::serde::Value::Map(::std::vec![{entries}]))]),",
                fields.join(", ")
            )
        }
    }
}

fn deserialize_tuple_body(constructor: &str, arity: usize, source: &str) -> String {
    let reads: String = (0..arity)
        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?,"))
        .collect();
    format!(
        "{{ let __items = {source}.as_seq().ok_or_else(|| \
             ::serde::Error::custom(\"expected array\"))?; \
           if __items.len() != {arity} {{ \
             return ::std::result::Result::Err(::serde::Error::custom(\
               \"wrong tuple length\")); \
           }} \
           ::std::result::Result::Ok({constructor}({reads})) }}"
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| {
            format!(
                "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),",
                vname = v.name
            )
        })
        .collect();
    let data_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            let body = match &v.kind {
                VariantKind::Unit => return None,
                VariantKind::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__payload)?))"
                ),
                VariantKind::Tuple(n) => {
                    deserialize_tuple_body(&format!("{name}::{vname}"), *n, "__payload")
                }
                VariantKind::Named(fields) => {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(\
                                 __payload.field(\"{f}\")?)?,"
                            )
                        })
                        .collect();
                    format!("::std::result::Result::Ok({name}::{vname} {{ {inits} }})")
                }
            };
            Some(format!("\"{vname}\" => {body},"))
        })
        .collect();
    format!(
        "match __v {{ \
           ::serde::Value::Str(__s) => match __s.as_str() {{ \
             {unit_arms} \
             __other => ::std::result::Result::Err(::serde::Error::custom(\
               ::std::format!(\"unknown variant `{{}}` of {name}\", __other))), \
           }}, \
           ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
             let (__tag, __payload) = &__entries[0]; \
             match __tag.as_str() {{ \
               {data_arms} \
               __other => ::std::result::Result::Err(::serde::Error::custom(\
                 ::std::format!(\"unknown variant `{{}}` of {name}\", __other))), \
             }} \
           }}, \
           __other => ::std::result::Result::Err(::serde::Error::custom(\
             ::std::format!(\"expected {name} representation, found {{}}\", \
                            __other.kind()))), \
         }}"
    )
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde shim derive: generic type `{name}` is not supported; \
             none of the workspace's serialized types are generic"
        );
    }

    match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("serde shim derive: unexpected struct body: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    }
}

/// Skips `#[...]` (and `#![...]`) attribute groups starting at `pos`.
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *pos += 1;
                if matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                    *pos += 1;
                }
                match tokens.get(*pos) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *pos += 1,
                    other => panic!("serde shim derive: malformed attribute: {other:?}"),
                }
            }
            _ => return,
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)` starting at `pos`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Parses `name: Type, ...` field lists (struct bodies and struct variants).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde shim derive: expected `:` after field name: {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Advances past one type, stopping at a comma outside all `<...>` nesting.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        count += 1;
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            pos += 1;
            while let Some(token) = tokens.get(pos) {
                if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                pos += 1;
            }
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}
