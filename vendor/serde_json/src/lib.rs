//! Minimal vendored `serde_json` over the serde shim's [`Value`] model:
//! `to_string` / `from_str` with a small recursive-descent JSON parser.
//!
//! Number formatting uses Rust's shortest-round-trip float display, so a
//! serialize → deserialize cycle reproduces `f64` values exactly; integers
//! keep full 64-bit precision via the `I64`/`U64` value variants.

#![forbid(unsafe_code)]

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
///
/// # Errors
///
/// Returns an error when the value contains a non-finite float, which JSON
/// cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserializes a `T` from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON or on a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse_value(input)?;
    T::from_value(&value)
}

fn write_value(value: &Value, out: &mut String) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => {
            if !v.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite floats"));
            }
            // Keep a marker so the value parses back as a float, not an int.
            if v.fract() == 0.0 && v.abs() < 1.0e15 {
                let _ = write!(out, "{v:.1}");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(input: &str) -> Result<Value> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&byte) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let escape = *rest
                        .get(1)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 2;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // encoder; reject them rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid \\u code point"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = text.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&byte) = self.bytes.get(self.pos) {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom(format!("invalid number at byte {start}")));
        }
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn u64_beyond_i64_round_trips() {
        let big = u64::MAX - 3;
        let json = to_string(&big).unwrap();
        assert_eq!(from_str::<u64>(&json).unwrap(), big);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![Some(1u32), None, Some(3)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,null,3]");
        assert_eq!(from_str::<Vec<Option<u32>>>(&json).unwrap(), v);
    }

    #[test]
    fn whitespace_tolerated() {
        let v: Vec<u8> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let json = to_string(&x).unwrap();
        assert_eq!(from_str::<f64>(&json).unwrap(), x);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("[1").is_err());
        assert!(from_str::<u32>("1 1").is_err());
        assert!(from_str::<u32>("tru").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
