//! Minimal vendored stand-in for `serde`.
//!
//! The build container has no crates.io access, so this shim provides the
//! slice of serde the workspace uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums (including `#[serde(transparent)]` newtypes),
//! and JSON round-tripping through the sibling `serde_json` shim.
//!
//! Instead of serde's visitor architecture, serialization goes through a
//! single JSON-shaped [`Value`] tree: `Serialize` renders into a `Value`,
//! `Deserialize` reads back out of one. The derive macros in the
//! `serde_derive` shim generate impls of these simplified traits. The
//! encoding mirrors `serde_json`'s defaults (structs as maps, newtypes
//! transparent, unit enum variants as strings, data-carrying variants as
//! single-key maps), so the JSON produced looks like what real serde would
//! emit for the same types.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the intermediate representation all
/// (de)serialization in this shim goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object; insertion-ordered list of key/value pairs.
    Map(Vec<(String, Value)>),
}

/// Static `null` used when a map key is absent, so lookups can hand out a
/// reference with the map's lifetime.
pub const NULL: Value = Value::Null;

impl Value {
    /// Borrows the entries when `self` is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the elements when `self` is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Borrows the string when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up `key` in a map, yielding `null` for missing keys (so
    /// `Option` fields deserialize to `None` rather than erroring).
    pub fn field(&self, key: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => Ok(entries
                .iter()
                .find(|(k, _)| k == key)
                .map_or(&NULL, |(_, v)| v)),
            other => Err(Error::custom(format!(
                "expected map while reading field `{key}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    /// Numeric view as `i64`, accepting any numeric variant that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && v.abs() < 9.0e18 => Some(v as i64),
            _ => None,
        }
    }

    /// Numeric view as `u64`, accepting any non-negative numeric variant.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            Value::F64(v) if v.fract() == 0.0 && (0.0..1.9e19).contains(&v) => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric view as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// (De)serialization error: a message describing the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(message: T) -> Self {
        Self {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the shim's JSON-shaped value model.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reads `Self` back out of the shim's JSON-shaped value model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty => $as:ident => $variant:ident as $wide:ty),* $(,)?) => {
        $(
            impl Serialize for $t {
                fn to_value(&self) -> Value {
                    Value::$variant(*self as $wide)
                }
            }

            impl Deserialize for $t {
                fn from_value(value: &Value) -> Result<Self, Error> {
                    let wide = value.$as().ok_or_else(|| {
                        Error::custom(format!(
                            concat!("expected ", stringify!($t), ", found {}"),
                            value.kind()
                        ))
                    })?;
                    <$t>::try_from(wide).map_err(|_| {
                        Error::custom(format!(
                            concat!("integer {} out of range for ", stringify!($t)),
                            wide
                        ))
                    })
                }
            }
        )*
    };
}

impl_serde_int!(
    u8 => as_u64 => U64 as u64,
    u16 => as_u64 => U64 as u64,
    u32 => as_u64 => U64 as u64,
    u64 => as_u64 => U64 as u64,
    usize => as_u64 => U64 as u64,
    i8 => as_i64 => I64 as i64,
    i16 => as_i64 => I64 as i64,
    i32 => as_i64 => I64 as i64,
    i64 => as_i64 => I64 as i64,
    isize => as_i64 => I64 as i64,
);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|v| Error::custom(format!("expected array of length {N}, found {}", v.len())))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn to_value(&self) -> Value {
                    Value::Seq(vec![$(self.$idx.to_value()),+])
                }
            }

            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn from_value(value: &Value) -> Result<Self, Error> {
                    const LEN: usize = [$($idx),+].len();
                    let items = value.as_seq().ok_or_else(|| {
                        Error::custom(format!("expected array, found {}", value.kind()))
                    })?;
                    if items.len() != LEN {
                        return Err(Error::custom(format!(
                            "expected {LEN}-tuple, found array of {}",
                            items.len()
                        )));
                    }
                    Ok(($($name::from_value(&items[$idx])?,)+))
                }
            }
        )*
    };
}

impl_serde_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Non-string keys are legal here, so maps encode as arrays of pairs.
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Seq(
            self.iter()
                .map(|(k, v)| Value::Seq(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(value: &Value) -> Result<Self, Error> {
        let pairs = Vec::<(K, V)>::from_value(value)?;
        Ok(pairs.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        T::from_value(value).map(Box::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Some(5u32).to_value(), Value::U64(5));
    }

    #[test]
    fn missing_map_field_reads_as_null() {
        let v = Value::Map(vec![("a".into(), Value::Bool(true))]);
        assert_eq!(v.field("a"), Ok(&Value::Bool(true)));
        assert_eq!(v.field("b"), Ok(&Value::Null));
        assert!(Value::Bool(false).field("a").is_err());
    }

    #[test]
    fn numeric_cross_width() {
        assert_eq!(u8::from_value(&Value::I64(200)), Ok(200u8));
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert_eq!(i64::from_value(&Value::U64(7)), Ok(7i64));
        assert_eq!(f64::from_value(&Value::I64(-2)), Ok(-2.0));
    }

    #[test]
    fn containers_round_trip() {
        let m: BTreeMap<u32, String> = [(1, "a".to_string()), (2, "b".to_string())].into();
        let v = m.to_value();
        assert_eq!(BTreeMap::<u32, String>::from_value(&v), Ok(m));

        let t = (1u8, true, "x".to_string());
        assert_eq!(<(u8, bool, String)>::from_value(&t.to_value()), Ok(t));
    }
}
