//! Minimal vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`arbitrary::Arbitrary`] via `any::<T>()`, `collection::{vec,
//! btree_set}`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * no shrinking — a failing case reports its inputs (via the panic
//!   message of the underlying `assert!`) but is not minimized;
//! * deterministic seeding — every test function runs the same ChaCha8
//!   stream on every run, so CI failures always reproduce locally.

#![forbid(unsafe_code)]

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Strategy producing a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {
            $(
                impl Strategy for core::ops::Range<$t> {
                    type Value = $t;

                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }

                impl Strategy for core::ops::RangeInclusive<$t> {
                    type Value = $t;

                    fn new_value(&self, rng: &mut TestRng) -> $t {
                        rng.gen_range(self.clone())
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),* $(,)?) => {
            $(
                impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                    type Value = ($($name::Value,)+);

                    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.new_value(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
    );
}

pub mod arbitrary {
    //! Default strategies per type, reached through [`crate::prelude::any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty => $via:ident),* $(,)?) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.$via() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
        usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
        i64 => next_u64, isize => next_u64,
    );

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u32() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: analysis code never expects NaN inputs.
            rng.gen_range(-1.0e12..=1.0e12)
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.next_u32() & 1 == 1 {
                Some(T::arbitrary(rng))
            } else {
                None
            }
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($(($($name:ident),+)),* $(,)?) => {
            $(impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            })*
        };
    }

    impl_arbitrary_tuple!((A), (A, B), (A, B, C), (A, B, C, D));

    /// Strategy for any value of `T`; returned by [`crate::prelude::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Self {
                _marker: core::marker::PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Strategies for collections of strategy-generated elements.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with at most `size.end - 1` elements.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates ordered sets whose size is bounded by `size` (duplicates
    /// drawn from the element strategy collapse, as in real proptest).
    pub fn btree_set<S>(element: S, size: core::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut set = BTreeSet::new();
            // Bounded attempts: duplicate draws may keep the set smaller
            // than `target`, which real proptest allows as well.
            for _ in 0..target.saturating_mul(2) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.new_value(rng));
            }
            set
        }
    }
}

pub mod test_runner {
    //! Execution configuration and the deterministic test RNG.

    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    /// How many cases to run per property, plus forward-compatible padding
    /// so `..ProptestConfig::default()` update syntax works at call sites.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property function.
        pub cases: u32,
        /// Accepted for API compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    /// Deterministic RNG handed to strategies (a seeded ChaCha8 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: ChaCha8Rng,
    }

    impl TestRng {
        /// A fixed-seed RNG; every test run sees the same stream.
        pub fn deterministic() -> Self {
            Self {
                inner: ChaCha8Rng::seed_from_u64(0x5EED_CAFE_F00D_D00D),
            }
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.inner.next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Defines property test functions: each `fn name(pat in strategy, ..)`
/// becomes a `#[test]` running `cases` generated inputs through its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let ($($pat,)+) = (
                        $($crate::strategy::Strategy::new_value(&$strategy, &mut __rng),)+
                    );
                    $body
                }
            }
        )*
    };
}

/// `assert!` that reads like proptest's failure-propagating macro.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` that reads like proptest's failure-propagating macro.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// `assert_ne!` that reads like proptest's failure-propagating macro.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u8..10, 0u8..10).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
        }

        #[test]
        fn collections_respect_size(v in crate::collection::vec(any::<i32>(), 0..50)) {
            prop_assert!(v.len() < 50);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..100) {
            prop_assert!(x < 100);
        }
    }
}
