//! Minimal vendored stand-in for `criterion`.
//!
//! Provides the API surface the workspace's nine bench targets use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! backed by a simple warm-up + sample loop over `std::time::Instant`.
//! No statistics beyond mean/min/max, no plots, no comparison to saved
//! baselines; each benchmark prints one line:
//!
//! ```text
//! queue_ops/binomial_heap/add_local/64  time: [1.23 µs 1.30 µs 1.41 µs]
//! ```
//!
//! The three bracketed numbers are min / mean / max over the sample means,
//! loosely echoing criterion's confidence-interval line.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; collects configuration and runs benches.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut bencher = Bencher::new(self.clone(), name.to_string());
        f(&mut bencher);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            overrides: None,
        }
    }

    /// Criterion prints a final summary here; the shim has nothing to add.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    overrides: Option<Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        let base = self
            .overrides
            .take()
            .unwrap_or_else(|| self.criterion.clone());
        self.overrides = Some(base.sample_size(n));
        self
    }

    /// Overrides the measurement time within this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        let base = self
            .overrides
            .take()
            .unwrap_or_else(|| self.criterion.clone());
        self.overrides = Some(base.measurement_time(t));
        self
    }

    /// Overrides the warm-up time within this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        let base = self
            .overrides
            .take()
            .unwrap_or_else(|| self.criterion.clone());
        self.overrides = Some(base.warm_up_time(t));
        self
    }

    fn config(&self) -> Criterion {
        self.overrides
            .clone()
            .unwrap_or_else(|| self.criterion.clone())
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<I: Display, F: FnMut(&mut Bencher)>(&mut self, id: I, mut f: F) {
        let mut bencher = Bencher::new(self.config(), format!("{}/{}", self.name, id));
        f(&mut bencher);
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::new(self.config(), format!("{}/{}", self.name, id));
        f(&mut bencher, input);
    }

    /// Ends the group (criterion renders summaries here; the shim doesn't).
    pub fn finish(self) {}
}

/// Identifier combining a function name and a parameter display value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id like `function/parameter`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Batching hint accepted by [`Bencher::iter_batched`] for API
/// compatibility with real criterion; this shim always produces one input
/// per iteration regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to hold; criterion would batch many per alloc.
    SmallInput,
    /// Inputs are large; criterion would batch fewer.
    LargeInput,
    /// One input per iteration (what this shim always does).
    PerIteration,
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    config: Criterion,
    name: String,
}

impl Bencher {
    fn new(config: Criterion, name: String) -> Self {
        Self { config, name }
    }

    /// Times `routine` on inputs produced by `setup`, excluding the setup
    /// cost from the measurement (each iteration is timed individually and
    /// the setup runs outside the timed window). The [`BatchSize`] hint is
    /// accepted for API compatibility and ignored — inputs are always
    /// produced one per iteration.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Warm up and estimate the per-iteration routine cost.
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while Instant::now() < warm_up_end {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            warm_spent += start.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size;
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1.0e-9)) as u64).clamp(1, 1_000_000_000);

        let mut means = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut spent = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                spent += start.elapsed();
            }
            means.push(spent.as_secs_f64() / iters_per_sample as f64);
        }
        self.report(means);
    }

    /// Times `routine`, printing a one-line min/mean/max summary.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_start = Instant::now();
        while Instant::now() < warm_up_end {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Split the measurement budget into `sample_size` samples.
        let samples = self.config.sample_size;
        let budget = self.config.measurement_time.as_secs_f64();
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1.0e-9)) as u64).clamp(1, 1_000_000_000);

        let mut means = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            means.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        self.report(means);
    }

    /// Prints the one-line min/mean/max summary over per-sample means.
    fn report(&self, mut means: Vec<f64>) {
        means.sort_by(|a, b| a.total_cmp(b));
        let min = means.first().copied().unwrap_or(0.0);
        let max = means.last().copied().unwrap_or(0.0);
        let mean = means.iter().sum::<f64>() / means.len().max(1) as f64;
        println!(
            "{:<60} time: [{} {} {}]",
            self.name,
            format_seconds(min),
            format_seconds(mean),
            format_seconds(max)
        );
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1.0e-3 {
        format!("{:.3} ms", s * 1.0e3)
    } else if s >= 1.0e-6 {
        format!("{:.3} µs", s * 1.0e6)
    } else {
        format!("{:.1} ns", s * 1.0e9)
    }
}

/// Declares a benchmark group function, in either criterion syntax:
/// `criterion_group!(benches, f, g)` or the `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut c = tiny();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1));
        });
        assert!(ran);
    }

    #[test]
    fn groups_compose_ids() {
        let id = BenchmarkId::new("add_local", 64);
        assert_eq!(id.to_string(), "add_local/64");
        let mut c = tiny();
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
    }

    #[test]
    fn format_spans_units() {
        assert!(format_seconds(2.5).ends_with(" s"));
        assert!(format_seconds(2.5e-3).ends_with(" ms"));
        assert!(format_seconds(2.5e-6).ends_with(" µs"));
        assert!(format_seconds(2.5e-9).ends_with(" ns"));
    }
}
