//! Minimal vendored stand-in for `parking_lot`, providing only the API this
//! workspace uses (a `Mutex` whose `lock` does not return a `Result`).
//!
//! The container this repository builds in has no network access to
//! crates.io, so the handful of external crates the code depends on are
//! vendored as small, API-compatible shims under `vendor/`. This one wraps
//! `std::sync::Mutex` and recovers from poisoning instead of propagating it,
//! which matches `parking_lot`'s no-poisoning semantics closely enough for
//! the measurement harness in `spms-overhead`.

#![forbid(unsafe_code)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual exclusion primitive with `parking_lot`'s `lock(&self) -> Guard`
/// signature (no `LockResult` to unwrap at every call site).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, poisoning is ignored (as in `parking_lot`).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
