//! E6 — overhead sensitivity: how the acceptance ratio degrades when the
//! measured overheads are scaled up (×0, ×1, ×5, ×20).

use criterion::{criterion_group, criterion_main, Criterion};
use spms_experiments::OverheadSensitivityExperiment;
use std::hint::black_box;

fn print_sensitivity_table() {
    let results = OverheadSensitivityExperiment::new()
        .tasks_per_set(12)
        .sets_per_scale(30)
        .run();
    println!(
        "\n=== E6: acceptance ratio at U/m = {:.2} versus overhead magnitude ===",
        results.normalized_utilization()
    );
    println!("{}", results.render_markdown());
    if let Some(cost) = results.measured_overhead_cost(spms_experiments::AlgorithmKind::FpTs) {
        println!(
            "(the measured overhead costs FP-TS {:.1} percentage points of acceptance ratio)\n",
            cost * 100.0
        );
    }
}

fn bench_sensitivity(c: &mut Criterion) {
    print_sensitivity_table();
    let mut group = c.benchmark_group("sensitivity");
    group.sample_size(10);
    group.bench_function("three_scales_10_sets", |b| {
        let experiment = OverheadSensitivityExperiment::new()
            .scales(vec![0.0, 1.0, 20.0])
            .tasks_per_set(8)
            .sets_per_scale(10);
        b.iter(|| black_box(experiment.run()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_sensitivity
}
criterion_main!(benches);
