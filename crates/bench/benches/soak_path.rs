//! Throughput of the sharded event-loop admission service: the soak
//! experiment's hot path in isolation.
//!
//! `event_loop_{N}shard` drives one churn trace end to end through the full
//! engine stack — `EventLoop` heap pops, seeded tie-shuffling, `ShardRouter`
//! placement, per-shard admission cascades and periodic work-stealing
//! rebalance ticks — so the number reported is simulated events per unit of
//! wall-clock time, the same quantity `BENCH_soak.json` publishes as
//! `decisions_per_sec`. Comparing the shard counts pins the sharding
//! overhead (routing, overflow probing, rebalancing) against the smaller
//! per-shard admitted sets each cascade has to analyse.
//!
//! `single_decision` isolates one warm arrival through the service front
//! door — the routed analogue of the `online_admission/fast_path` bench —
//! so regressions can be attributed to the per-decision path or the loop
//! machinery around it.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_online::{
    ChurnGenerator, EventLoop, EventLoopConfig, OnlineConfig, ShardedAdmission, TimedEvent,
    WorkloadEvent,
};
use spms_task::{Task, Time};
use std::hint::black_box;

const CORES: usize = 8;
const SEED: u64 = 2011;

/// One churn trace shared by every shard count, so the shard axis is the
/// only thing that varies.
fn trace(events: usize) -> Vec<TimedEvent> {
    ChurnGenerator::new()
        .cores(CORES)
        .target_normalized_utilization(0.6)
        .events(events)
        .seed(SEED)
        .generate_timed()
        .expect("reachable churn configuration")
}

fn engine(shards: usize) -> ShardedAdmission {
    ShardedAdmission::new(OnlineConfig::new(CORES), shards).expect("shards <= cores")
}

fn bench_soak_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("soak_path");
    let trace = trace(1000);

    for shards in [1usize, 2, 4] {
        group.bench_function(format!("event_loop_{shards}shard"), |b| {
            b.iter(|| {
                let mut engine = engine(shards);
                let mut event_loop = EventLoop::new(
                    EventLoopConfig::new(SEED)
                        .with_rebalance_period(Some(Time::from_millis(250)))
                        .with_rebalance_max_moves(4),
                );
                event_loop.load_trace(&trace);
                event_loop.run(&mut engine);
                black_box(engine.decisions().len())
            });
        });
    }

    // A warm service deciding one routed arrival: the per-decision cost
    // without the event-loop machinery.
    let mut warm = engine(2);
    warm.handle_all(
        &trace
            .iter()
            .map(|timed| timed.event.clone())
            .collect::<Vec<_>>(),
    );
    let probe = Task::new(1_000_000, Time::from_millis(2), Time::from_millis(50))
        .expect("valid probe task");
    group.bench_function("single_decision", |b| {
        b.iter(|| {
            let mut service = warm.clone();
            black_box(service.handle_event(&WorkloadEvent::Arrive(probe.clone())))
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_soak_path
}
criterion_main!(benches);
