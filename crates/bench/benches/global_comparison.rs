//! E10 — partitioned / semi-partitioned scheduling vs. the sufficient global
//! schedulability tests, plus the raw cost of the global tests and of the
//! global scheduler simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_bench::benchmark_task_set;
use spms_experiments::GlobalComparisonExperiment;
use spms_global::{GlobalPolicy, GlobalSchedulabilityTest, GlobalSimulator};
use spms_task::{PriorityAssignment, Time};
use std::hint::black_box;

fn print_global_comparison_table() {
    let results = GlobalComparisonExperiment::new()
        .cores(4)
        .tasks_per_set(16)
        .sets_per_point(30)
        .seed(2024)
        .run();
    println!("\n=== E10: acceptance ratio, partitioned / semi-partitioned vs global tests (30 sets/point) ===");
    println!("{}", results.render_markdown());
}

fn bench_global(c: &mut Criterion) {
    print_global_comparison_table();
    let mut tasks = benchmark_task_set(16, 3.0, 13);
    tasks.assign_priorities(PriorityAssignment::RateMonotonic);

    let mut group = c.benchmark_group("global");
    group.bench_function("gfb_density_test", |b| {
        b.iter(|| black_box(GlobalSchedulabilityTest::GfbDensity.accepts(black_box(&tasks), 4)));
    });
    group.bench_function("bcl_fixed_priority_test", |b| {
        b.iter(|| {
            black_box(GlobalSchedulabilityTest::BclFixedPriority.accepts(black_box(&tasks), 4))
        });
    });
    group.bench_function("global_edf_simulation_500ms", |b| {
        b.iter(|| {
            let sim = GlobalSimulator::new(black_box(&tasks), 4, GlobalPolicy::Edf)
                .duration(Time::from_millis(500));
            black_box(sim.run())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_global
}
criterion_main!(benches);
