//! E9 — acceptance ratio as the number of cores grows at constant normalized
//! utilization, plus the raw partitioning cost per core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spms_bench::benchmark_task_set;
use spms_core::{PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
use spms_experiments::CoreCountSweepExperiment;
use std::hint::black_box;

fn print_core_sweep_table() {
    let sweep = CoreCountSweepExperiment::new()
        .core_counts(vec![2, 4, 8, 16])
        .tasks_per_core(4)
        .normalized_utilization(0.85)
        .sets_per_point(30)
        .seed(2024);
    println!(
        "\n=== E9: acceptance ratio vs core count (U/m = 0.85, 4 tasks/core, 30 sets/point) ==="
    );
    println!("{}", sweep.run().render_markdown());
}

fn bench_partitioning_by_core_count(c: &mut Criterion) {
    print_core_sweep_table();
    let mut group = c.benchmark_group("partitioning_by_cores");
    for cores in [2usize, 4, 8, 16] {
        let tasks = benchmark_task_set(4 * cores, 0.85 * cores as f64, 7);
        group.bench_with_input(BenchmarkId::new("fpts", cores), &cores, |b, &m| {
            let algo = SemiPartitionedFpTs::default();
            b.iter(|| black_box(algo.partition(black_box(&tasks), m)));
        });
        group.bench_with_input(BenchmarkId::new("ffd", cores), &cores, |b, &m| {
            let algo = PartitionedFixedPriority::ffd();
            b.iter(|| black_box(algo.partition(black_box(&tasks), m)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_partitioning_by_core_count
}
criterion_main!(benches);
