//! E3 — Figure 1: the overhead anatomy of one preemption (release, scheduling
//! decision, two context-switch halves, cache reload).

use criterion::{criterion_group, criterion_main, Criterion};
use spms_analysis::OverheadModel;
use spms_experiments::PreemptionAnatomy;
use std::hint::black_box;

fn print_anatomy() {
    let report = PreemptionAnatomy::new().run();
    println!("\n=== E3 / Figure 1: timeline of a preemption with the measured overheads ===");
    println!("{}", report.timeline);
    println!(
        "preemptions observed: {}, overhead per release-preempt-resume episode: {}, total overhead: {}\n",
        report.preemptions, report.per_preemption_overhead, report.total_overhead
    );
}

fn bench_anatomy(c: &mut Criterion) {
    print_anatomy();
    let mut group = c.benchmark_group("preemption_anatomy");
    group.bench_function("figure1_scenario", |b| {
        let anatomy = PreemptionAnatomy::new();
        b.iter(|| black_box(anatomy.run()));
    });
    group.bench_function("figure1_scenario_no_overhead", |b| {
        let anatomy = PreemptionAnatomy::new().overhead(OverheadModel::zero());
        b.iter(|| black_box(anatomy.run()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_anatomy
}
criterion_main!(benches);
