//! E5 — the paper's §4 result: acceptance ratio of FP-TS vs FFD vs WFD over
//! randomly generated task sets, with and without the measured overheads.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_analysis::OverheadModel;
use spms_bench::benchmark_task_set;
use spms_core::{PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
use spms_experiments::AcceptanceRatioExperiment;
use std::hint::black_box;

fn print_acceptance_tables() {
    let sweep: Vec<f64> = (12..=20).map(|i| i as f64 * 0.05).collect();
    let base = AcceptanceRatioExperiment::new()
        .cores(4)
        .tasks_per_set(16)
        .utilization_points(sweep.clone())
        .sets_per_point(40)
        .seed(2024);
    println!(
        "\n=== E5a: acceptance ratio without overhead (4 cores, 16 tasks/set, 40 sets/point) ==="
    );
    println!("{}", base.clone().run().render_markdown());
    println!("=== E5b: acceptance ratio with the measured N = 4 overheads ===");
    println!(
        "{}",
        base.overhead(OverheadModel::paper_n4())
            .run()
            .render_markdown()
    );
}

fn bench_partitioners(c: &mut Criterion) {
    print_acceptance_tables();
    let tasks = benchmark_task_set(16, 3.4, 7);
    let mut group = c.benchmark_group("partitioning");
    group.bench_function("fpts", |b| {
        let algo = SemiPartitionedFpTs::default();
        b.iter(|| black_box(algo.partition(black_box(&tasks), 4)));
    });
    group.bench_function("ffd", |b| {
        let algo = PartitionedFixedPriority::ffd();
        b.iter(|| black_box(algo.partition(black_box(&tasks), 4)));
    });
    group.bench_function("wfd", |b| {
        let algo = PartitionedFixedPriority::wfd();
        b.iter(|| black_box(algo.partition(black_box(&tasks), 4)));
    });
    group.finish();
}

fn bench_sweep_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("acceptance_sweep");
    group.sample_size(10);
    group.bench_function("one_point_10_sets", |b| {
        let experiment = AcceptanceRatioExperiment::new()
            .tasks_per_set(12)
            .sets_per_point(10)
            .utilization_points(vec![0.9]);
        b.iter(|| black_box(experiment.run()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_partitioners, bench_sweep_point
}
criterion_main!(benches);
