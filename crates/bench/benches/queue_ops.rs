//! E1 — Table 1: ready-queue and sleep-queue operation durations at N = 4
//! and N = 64, plus the ready-queue ablation (binomial heap vs pairing heap
//! vs `std::collections::BinaryHeap`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spms_overhead::{MeasurementConfig, QueueOpBenchmark};
use spms_queues::{BinomialHeap, PairingHeap, ReadyQueue, SleepQueue};
use std::collections::BinaryHeap;
use std::hint::black_box;

fn print_table1() {
    let table = QueueOpBenchmark::new(MeasurementConfig {
        iterations: 2_000,
        warmup: 200,
    })
    .measure_table1();
    println!("\n=== E1 / Table 1: measured queue operation durations ===");
    println!("{}", table.render_markdown());
}

fn bench_ready_queue(c: &mut Criterion) {
    print_table1();
    let mut group = c.benchmark_group("ready_queue");
    for &n in &[4usize, 64] {
        group.bench_with_input(BenchmarkId::new("add_local", n), &n, |b, &n| {
            let mut queue: ReadyQueue<u32, u64> = ReadyQueue::new();
            for i in 0..n {
                queue.add((i % 16) as u32, i as u64);
            }
            let mut i = n as u64;
            b.iter(|| {
                queue.add(black_box((i % 16) as u32), i);
                queue.delete_highest();
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("delete", n), &n, |b, &n| {
            let mut queue: ReadyQueue<u32, u64> = ReadyQueue::new();
            for i in 0..n {
                queue.add((i % 16) as u32, i as u64);
            }
            b.iter(|| {
                let popped = queue.delete_highest().expect("non-empty");
                queue.add(black_box(popped.0), popped.1);
            });
        });
    }
    group.finish();
}

fn bench_sleep_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sleep_queue");
    for &n in &[4usize, 64] {
        group.bench_with_input(BenchmarkId::new("add", n), &n, |b, &n| {
            let mut queue: SleepQueue<(u64, u64), u64> = SleepQueue::new();
            for i in 0..n {
                queue.add((i as u64 * 100, i as u64), i as u64);
            }
            let mut i = n as u64;
            b.iter(|| {
                let key = (black_box(i * 13 % 10_007), 1_000_000 + i);
                queue.add(key, i);
                queue.delete(&key);
                i += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("delete_earliest", n), &n, |b, &n| {
            let mut queue: SleepQueue<(u64, u64), u64> = SleepQueue::new();
            for i in 0..n {
                queue.add((i as u64 * 100, i as u64), i as u64);
            }
            b.iter(|| {
                let (k, v) = queue.pop_earliest().expect("non-empty");
                queue.add(black_box(k), v);
            });
        });
    }
    group.finish();
}

/// DESIGN.md ablation choice 1: binomial heap (the paper) vs pairing heap vs
/// the standard library's binary heap as the ready-queue structure.
fn bench_heap_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ready_queue_ablation");
    let workload: Vec<u32> = (0..64u32).map(|i| (i * 2_654_435_761) % 1_000).collect();
    group.bench_function("binomial_heap", |b| {
        b.iter(|| {
            let mut heap = BinomialHeap::new();
            for &x in &workload {
                heap.push(black_box(x));
            }
            while heap.pop().is_some() {}
        });
    });
    group.bench_function("pairing_heap", |b| {
        b.iter(|| {
            let mut heap = PairingHeap::new();
            for &x in &workload {
                heap.push(black_box(x));
            }
            while heap.pop().is_some() {}
        });
    });
    group.bench_function("std_binary_heap", |b| {
        b.iter(|| {
            let mut heap = BinaryHeap::new();
            for &x in &workload {
                heap.push(std::cmp::Reverse(black_box(x)));
            }
            while heap.pop().is_some() {}
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ready_queue, bench_sleep_queue, bench_heap_ablation
}
criterion_main!(benches);
