//! The admission cascade's repair/split hot path: journal rollback vs.
//! clone-snapshot rollback, and warm vs. cold split-budget probes.
//!
//! PR 4 made the *analysis* incremental; this bench pins the cascade
//! *around* it. `repair_admit_*` drives an arrival that needs one bounded-
//! repair move into a warm controller; `repair_reject_*` drives an arrival
//! whose repair fails on every target — the worst case for rollback, since
//! every attempt must be undone. The `*_journal` variants rewind the
//! partition's mutation journal (O(moves)); the `*_clone` variants restore
//! snapshot clones (O(tasks), the PR 3 behaviour kept behind
//! `OnlineConfig::builder().journal(false)`). `split_probe_{warm,cold}` admits a
//! task that must be split, with and without cross-probe warm starts in
//! the budget binary search. Decisions are byte-identical across all
//! variants (asserted here and by the `rtabench` CI smoke); only the
//! latency moves. The journal variants are additionally asserted to
//! perform zero partition clones.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spms_core::Partition;
use spms_online::{
    AdmissionController, DecisionKind, DecisionPath, OnlineConfig, OnlineConfigBuilder,
    WorkloadEvent,
};
use spms_task::{Task, Time};
use std::hint::black_box;

const CORES: usize = 8;

fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
    Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
}

/// A controller whose cores all sit at 90% except the last at 75%, built
/// from per-core arrivals (0.5 + 0.2 + 0.2, last core 0.5 + 0.25) in an
/// order first-fit packs exactly that way. Bounded repair gets victims of
/// several sizes to rank; splitting is disabled to keep every probe on
/// the whole-placement path.
fn warm_repair_controller(config: OnlineConfigBuilder) -> AdmissionController {
    let mut controller =
        AdmissionController::new(config.min_split_budget(Time::from_secs(10)).build())
            .expect("cores > 0");
    let mut id = 0u32;
    let mut admit = |c: &mut AdmissionController, wcet_us: u64| {
        let decision = c.handle(WorkloadEvent::Arrive(task(id, wcet_us, 10_000)));
        assert!(decision.is_admission(), "setup arrival rejected");
        id += 1;
    };
    for _ in 0..CORES - 1 {
        admit(&mut controller, 5_000);
        admit(&mut controller, 2_000);
        admit(&mut controller, 2_000);
    }
    admit(&mut controller, 5_000);
    admit(&mut controller, 2_500);
    controller
}

/// An arrival that fits nowhere whole but is admitted after one repair
/// move (a 20% victim relocates to the 75% core).
fn repairable_probe() -> Task {
    task(1000, 3_000, 10_000)
}

/// An arrival no single bounded repair can place: every target attempt
/// rolls back.
fn unrepairable_probe() -> Task {
    task(1001, 6_000, 10_000)
}

/// A controller with six diverse-period tasks per core (~80% each core),
/// so a 45% arrival must split — and every budget probe of the binary
/// search re-converges six multi-iteration fixed points, the work the
/// cross-probe warm starts cut.
fn warm_split_controller(config: OnlineConfig) -> AdmissionController {
    const PERIODS_US: [u64; 6] = [1_000, 1_700, 2_900, 4_300, 7_100, 9_700];
    let mut controller = AdmissionController::new(config).expect("cores > 0");
    let mut id = 0u32;
    for _ in 0..CORES {
        for period in PERIODS_US {
            // ~13.3% utilization each, 80% per core in total.
            let decision =
                controller.handle(WorkloadEvent::Arrive(task(id, period * 2 / 15, period)));
            assert!(decision.is_admission(), "setup arrival rejected");
            id += 1;
        }
    }
    controller
}

fn split_probe() -> Task {
    task(2000, 4_500, 10_000)
}

fn expect_path(controller: &mut AdmissionController, probe: Task, path: DecisionPath) {
    let decision = controller.handle(WorkloadEvent::Arrive(probe));
    assert_eq!(
        decision.kind,
        DecisionKind::Admitted {
            path,
            migrations: 1,
            inflation: Time::ZERO
        },
        "probe did not take the expected path"
    );
}

fn bench_repair_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_path");

    let journal = warm_repair_controller(OnlineConfig::builder().cores(CORES));
    let clone_based = warm_repair_controller(OnlineConfig::builder().cores(CORES).journal(false));

    // Sanity: the probes take the intended paths, identically in both
    // rollback modes, and the journal cascade performs zero partition
    // clones deciding them.
    {
        let mut j = journal.clone();
        let clones_before = Partition::clone_count();
        expect_path(&mut j, repairable_probe(), DecisionPath::Repair);
        let rejected = j.handle(WorkloadEvent::Arrive(unrepairable_probe()));
        assert!(!rejected.is_admission(), "unrepairable probe was admitted");
        assert_eq!(
            Partition::clone_count(),
            clones_before,
            "journal-based repair cloned a partition"
        );
        let mut s = clone_based.clone();
        expect_path(&mut s, repairable_probe(), DecisionPath::Repair);
        assert!(!s
            .handle(WorkloadEvent::Arrive(unrepairable_probe()))
            .is_admission());
    }

    group.bench_function("repair_admit_journal", |b| {
        b.iter_batched(
            || journal.clone(),
            |mut controller| {
                black_box(controller.handle(WorkloadEvent::Arrive(repairable_probe())))
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("repair_admit_clone", |b| {
        b.iter_batched(
            || clone_based.clone(),
            |mut controller| {
                black_box(controller.handle(WorkloadEvent::Arrive(repairable_probe())))
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("repair_reject_journal", |b| {
        b.iter_batched(
            || journal.clone(),
            |mut controller| {
                black_box(controller.handle(WorkloadEvent::Arrive(unrepairable_probe())))
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("repair_reject_clone", |b| {
        b.iter_batched(
            || clone_based.clone(),
            |mut controller| {
                black_box(controller.handle(WorkloadEvent::Arrive(unrepairable_probe())))
            },
            BatchSize::SmallInput,
        );
    });

    let warm = warm_split_controller(OnlineConfig::builder().cores(CORES).build());
    let cold = warm_split_controller(
        OnlineConfig::builder()
            .cores(CORES)
            .probe_warm_start(false)
            .build(),
    );
    {
        let mut w = warm.clone();
        let mut c2 = cold.clone();
        let a = w.handle(WorkloadEvent::Arrive(split_probe()));
        let b = c2.handle(WorkloadEvent::Arrive(split_probe()));
        assert_eq!(a, b, "warm and cold probes decided differently");
        assert!(
            matches!(
                a.kind,
                DecisionKind::Admitted {
                    path: DecisionPath::FastSplit,
                    ..
                }
            ),
            "split probe did not split"
        );
    }
    group.bench_function("split_probe_warm", |b| {
        b.iter_batched(
            || warm.clone(),
            |mut controller| black_box(controller.handle(WorkloadEvent::Arrive(split_probe()))),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("split_probe_cold", |b| {
        b.iter_batched(
            || cold.clone(),
            |mut controller| black_box(controller.handle(WorkloadEvent::Arrive(split_probe()))),
            BatchSize::SmallInput,
        );
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_repair_path
}
criterion_main!(benches);
