//! Admission-decision latency of the online controller: the incremental
//! fast path against the full offline repartition it replaces.
//!
//! The online controller's claim is that answering admit/reject for one
//! arriving task is much cheaper than re-running the offline partitioner
//! over the whole admitted set. This bench pins that: `fast_path` admits a
//! light probe task into a warm controller (incremental first-fit), while
//! `full_repartition` runs `SemiPartitionedFpTs` from scratch over the same
//! admitted set plus the probe — the work the controller's last-resort
//! fallback does and what a naive online system would do on *every*
//! arrival.
//!
//! `fast_path` vs `fast_path_scratch_rta` additionally pins the incremental
//! RTA cache: the same decision stream with the cache disabled re-runs
//! `analyse_core` from scratch on every placement probe
//! (`OnlineConfig::builder().rta_cache(false)`). Decisions are byte-identical
//! either way (asserted by the `rtabench` CI smoke and the cache
//! equivalence proptests); only the latency moves.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_core::{Partitioner, SemiPartitionedFpTs};
use spms_online::{AdmissionController, OnlineConfig, WorkloadEvent};
use spms_task::{Task, TaskSetGenerator, Time};
use std::hint::black_box;

const CORES: usize = 4;

/// A controller pre-loaded with a moderately utilized admitted set.
fn warm_controller_with(config: OnlineConfig) -> AdmissionController {
    let tasks = TaskSetGenerator::new()
        .task_count(12)
        .total_utilization(2.4)
        .seed(2011)
        .generate()
        .expect("reachable configuration");
    let mut controller = AdmissionController::new(config).expect("cores > 0");
    for task in tasks {
        controller.handle(WorkloadEvent::Arrive(task));
    }
    assert!(controller.admitted_count() > 0);
    controller
}

fn warm_controller() -> AdmissionController {
    warm_controller_with(OnlineConfig::new(CORES))
}

/// The probe arrival both benches admit.
fn probe() -> Task {
    Task::new(1000, Time::from_millis(2), Time::from_millis(50)).expect("valid probe")
}

fn bench_admission_latency(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_admission");
    let warm = warm_controller();
    let probe_task = probe();

    group.bench_function("fast_path", |b| {
        b.iter(|| {
            let mut controller = warm.clone();
            black_box(controller.handle(WorkloadEvent::Arrive(probe_task.clone())))
        });
    });

    // The same admission with the incremental RTA cache disabled: every
    // placement probe clones the core's tasks and re-runs analyse_core.
    let warm_scratch = warm_controller_with(
        OnlineConfig::builder()
            .cores(CORES)
            .rta_cache(false)
            .build(),
    );
    group.bench_function("fast_path_scratch_rta", |b| {
        b.iter(|| {
            let mut controller = warm_scratch.clone();
            black_box(controller.handle(WorkloadEvent::Arrive(probe_task.clone())))
        });
    });

    group.bench_function("admit_depart_cycle", |b| {
        b.iter(|| {
            let mut controller = warm.clone();
            controller.handle(WorkloadEvent::Arrive(probe_task.clone()));
            black_box(controller.handle(WorkloadEvent::Depart(probe_task.id())))
        });
    });

    group.bench_function("full_repartition", |b| {
        let mut all = warm.admitted_tasks();
        all.push(probe_task.clone());
        let offline = SemiPartitionedFpTs::default();
        b.iter(|| black_box(offline.partition(&all, CORES).expect("valid set")));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_admission_latency
}
criterion_main!(benches);
