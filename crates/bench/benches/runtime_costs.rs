//! E8 — the simulated run-time cost of accepted partitions: preemptions,
//! migrations and the fraction of processor time spent inside the scheduler,
//! plus the raw simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use spms_analysis::OverheadModel;
use spms_bench::benchmark_task_set;
use spms_core::{Partitioner, SemiPartitionedFpTs};
use spms_experiments::{AlgorithmKind, RuntimeCostExperiment};
use spms_sim::{SimulationConfig, Simulator};
use spms_task::Time;
use std::hint::black_box;

fn print_runtime_cost_table() {
    let results = RuntimeCostExperiment::new()
        .cores(4)
        .tasks_per_set(12)
        .utilization_points(vec![0.6, 0.75, 0.9])
        .sets_per_point(15)
        .algorithms(vec![
            AlgorithmKind::FpTs,
            AlgorithmKind::FpTsNextFit,
            AlgorithmKind::Ffd,
        ])
        .overhead(OverheadModel::paper_n4())
        .simulation_window(Time::from_millis(500))
        .seed(2024)
        .run();
    println!("\n=== E8: simulated run-time cost of accepted partitions (N = 4 overheads) ===");
    println!("{}", results.render_markdown());
}

fn bench_simulator(c: &mut Criterion) {
    print_runtime_cost_table();
    let tasks = benchmark_task_set(12, 3.4, 11);
    let partition = SemiPartitionedFpTs::default()
        .with_overhead(OverheadModel::paper_n4())
        .partition(&tasks, 4)
        .expect("valid task set")
        .into_partition()
        .expect("schedulable benchmark set");
    let mut group = c.benchmark_group("simulator");
    group.bench_function("one_second_with_overheads", |b| {
        b.iter(|| {
            let sim = Simulator::new(
                black_box(&partition),
                SimulationConfig::new(Time::from_secs(1)).with_overhead(OverheadModel::paper_n4()),
            );
            black_box(sim.run())
        });
    });
    group.bench_function("one_second_no_overheads", |b| {
        b.iter(|| {
            let sim = Simulator::new(
                black_box(&partition),
                SimulationConfig::new(Time::from_secs(1)),
            );
            black_box(sim.run())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(400));
    targets = bench_simulator
}
criterion_main!(benches);
