//! E4 — cache-related overhead: local context switch vs. cross-core
//! migration reload cost as a function of working-set size (the paper's §3
//! "cache" discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spms_cache::{CacheHierarchyConfig, CrpdModel, WorkingSet};
use spms_experiments::CacheCrossoverExperiment;
use std::hint::black_box;

fn print_crossover_table() {
    let results = CacheCrossoverExperiment::new().run();
    println!("\n=== E4: cache reload cost, local preemption vs migration ===");
    println!("{}", results.render_markdown());
    if let Some(bytes) = results.crossover_bytes(2.0) {
        println!(
            "(migration costs at least 2x a local switch up to working sets of {} KiB)\n",
            bytes / 1024
        );
    }
}

fn bench_crpd(c: &mut Criterion) {
    print_crossover_table();
    let model = CrpdModel::new(CacheHierarchyConfig::core_i7_4core());
    let mut group = c.benchmark_group("crpd");
    for &kib in &[8u64, 256, 2048] {
        let ws = WorkingSet::from_bytes(kib * 1024);
        let preemptor = WorkingSet::from_bytes(kib * 1024).with_base(1 << 32);
        group.bench_with_input(BenchmarkId::new("analytic", kib), &kib, |b, _| {
            b.iter(|| black_box(model.analytic(black_box(ws), black_box(preemptor))));
        });
    }
    // The full cache simulation is only benchmarked for a small working set;
    // larger ones are covered by the printed table.
    let small = WorkingSet::from_bytes(8 * 1024);
    let small_preemptor = WorkingSet::from_bytes(8 * 1024).with_base(1 << 32);
    group.bench_function("simulated_8KiB", |b| {
        b.iter(|| black_box(model.simulated(black_box(small), black_box(small_preemptor))));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crpd
}
criterion_main!(benches);
