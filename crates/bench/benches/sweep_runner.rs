//! The parallel experiment engine: the same acceptance-ratio sweep driven
//! serially and across a widening thread pool. The per-thread timings are
//! the repo's scaling trajectory — on an idle multi-core host the 4-thread
//! sweep should finish in well under half the serial time while producing
//! byte-identical results (pinned by the `parallel_equivalence` tests).

use criterion::{criterion_group, criterion_main, Criterion};
use spms_experiments::AcceptanceRatioExperiment;
use std::hint::black_box;

fn sweep(threads: usize) -> AcceptanceRatioExperiment {
    AcceptanceRatioExperiment::new()
        .tasks_per_set(12)
        .sets_per_point(16)
        .utilization_points(vec![0.7, 0.8, 0.9, 0.95])
        .seed(2011)
        .threads(threads)
}

fn bench_thread_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_function(format!("acceptance_{threads}_threads"), |b| {
            let experiment = sweep(threads);
            b.iter(|| black_box(experiment.run()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_thread_scaling
}
criterion_main!(benches);
