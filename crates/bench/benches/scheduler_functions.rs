//! E2 — scheduler-function costs: the reproduction of the paper's
//! release() = 3 µs, sch() = 5 µs and cnt_swth() = 1.5 µs measurements, plus
//! the end-to-end cost of simulating one hyperperiod of a partitioned task
//! set (which exercises all three paths continuously).

use criterion::{criterion_group, criterion_main, Criterion};
use spms_analysis::OverheadModel;
use spms_bench::benchmark_task_set;
use spms_core::{Partitioner, SemiPartitionedFpTs};
use spms_overhead::{FunctionCosts, MeasurementConfig};
use spms_sim::{SimulationConfig, Simulator};
use spms_task::Time;
use std::hint::black_box;

fn print_function_costs() {
    let report = FunctionCosts::new(MeasurementConfig {
        iterations: 5_000,
        warmup: 500,
    })
    .measure(64);
    println!("\n=== E2: measured scheduler-function costs (N = 64 resident tasks) ===");
    println!("{}", report.render_markdown());
}

fn bench_function_paths(c: &mut Criterion) {
    print_function_costs();
    let mut group = c.benchmark_group("scheduler_functions");
    group.bench_function("measure_all_three", |b| {
        let harness = FunctionCosts::new(MeasurementConfig {
            iterations: 200,
            warmup: 20,
        });
        b.iter(|| black_box(harness.measure(black_box(16))));
    });
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let tasks = benchmark_task_set(12, 3.0, 42);
    let partition = SemiPartitionedFpTs::default()
        .partition(&tasks, 4)
        .expect("valid input")
        .into_partition()
        .expect("schedulable benchmark set");
    let mut group = c.benchmark_group("simulator");
    group.bench_function("one_second_no_overhead", |b| {
        b.iter(|| {
            let sim = Simulator::new(
                black_box(&partition),
                SimulationConfig::new(Time::from_secs(1)),
            );
            black_box(sim.run())
        });
    });
    group.bench_function("one_second_with_overhead", |b| {
        b.iter(|| {
            let sim = Simulator::new(
                black_box(&partition),
                SimulationConfig::new(Time::from_secs(1)).with_overhead(OverheadModel::paper_n4()),
            );
            black_box(sim.run())
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_function_paths, bench_simulation
}
criterion_main!(benches);
