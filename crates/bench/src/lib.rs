//! # spms-bench
//!
//! Criterion benchmarks that regenerate every table and figure of the
//! paper's evaluation. Each bench target corresponds to one experiment of
//! the index in DESIGN.md:
//!
//! | bench | experiment |
//! |---|---|
//! | `queue_ops` | E1 — Table 1 (queue operation durations) |
//! | `scheduler_functions` | E2 — release()/sch()/cnt_swth() costs |
//! | `preemption_anatomy` | E3 — Figure 1 overhead anatomy |
//! | `cache_overhead` | E4 — local vs. migration cache reload |
//! | `acceptance_ratio` | E5 — FP-TS vs FFD vs WFD acceptance ratio |
//! | `overhead_sensitivity` | E6 — acceptance vs overhead magnitude |
//!
//! The benches print the regenerated table before measuring, so running
//! `cargo bench -p spms-bench` reproduces the paper's numbers and measures
//! the cost of producing them at the same time.

#![forbid(unsafe_code)]

/// Shared helper: a deterministic task set of the size used throughout the
/// benchmark suite.
pub fn benchmark_task_set(tasks: usize, utilization: f64, seed: u64) -> spms_task::TaskSet {
    spms_task::TaskSetGenerator::new()
        .task_count(tasks)
        .total_utilization(utilization)
        .seed(seed)
        .generate()
        .expect("benchmark task-set configuration is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_task_set_is_deterministic() {
        assert_eq!(benchmark_task_set(8, 2.0, 1), benchmark_task_set(8, 2.0, 1));
        assert_eq!(benchmark_task_set(8, 2.0, 1).len(), 8);
    }
}
