//! Fixed power-of-two-bucket histograms.
//!
//! A [`Histogram`] spreads `u64` samples (nanoseconds, in practice) over 65
//! buckets: bucket 0 holds the value 0 and bucket `i ≥ 1` holds the values
//! in `[2^(i-1), 2^i - 1]`. The layout is fixed at compile time, so
//! recording is O(1), memory is O(buckets) regardless of how many samples
//! arrive, and two histograms merge bucket-wise without rebinning.
//!
//! Quantiles are resolved by nearest rank over the cumulative bucket
//! counts and reported as the matched bucket's upper bound — a
//! conservative (never under-reporting) estimate with at most 2× relative
//! error, which is plenty for the latency percentile columns the
//! experiment reports carry.

use serde::{Deserialize, Error, Serialize, Value};

/// Number of buckets: one for zero plus one per power of two up to `u64::MAX`.
pub const BUCKET_COUNT: usize = 65;

/// A fixed-layout power-of-two-bucket histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
        }
    }

    /// The bucket index `value` falls into.
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `index`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            i if i >= 64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_many(value, 1);
    }

    /// Records `n` samples of the same value.
    pub fn record_many(&mut self, value: u64, n: u64) {
        self.counts[Histogram::bucket_index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (nearest rank), for `q` in `[0, 1]`. Returns 0 for an empty
    /// histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, &bucket) in self.counts.iter().enumerate() {
            seen += bucket;
            if seen >= rank {
                return Histogram::bucket_upper_bound(index);
            }
        }
        Histogram::bucket_upper_bound(BUCKET_COUNT - 1)
    }

    /// The non-empty buckets as `(bucket index, count)` pairs, in index
    /// order — the sparse form the snapshot serialization uses.
    pub fn sparse_buckets(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u32, c))
            .collect()
    }

    /// Rebuilds a histogram from its sparse-bucket form.
    ///
    /// # Errors
    ///
    /// Fails when a bucket index is out of range or the total disagrees
    /// with `count`.
    pub fn from_sparse(count: u64, sum: u64, buckets: &[(u32, u64)]) -> Result<Self, Error> {
        let mut histogram = Histogram::new();
        let mut total = 0u64;
        for &(index, bucket_count) in buckets {
            let slot = histogram
                .counts
                .get_mut(index as usize)
                .ok_or_else(|| Error::custom(format!("histogram bucket {index} out of range")))?;
            *slot += bucket_count;
            total += bucket_count;
        }
        if total != count {
            return Err(Error::custom(format!(
                "histogram bucket counts sum to {total}, expected {count}"
            )));
        }
        histogram.count = count;
        histogram.sum = sum;
        Ok(histogram)
    }
}

impl Serialize for Histogram {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("count".to_string(), Value::U64(self.count)),
            ("sum".to_string(), Value::U64(self.sum)),
            (
                "buckets".to_string(),
                Value::Seq(
                    self.sparse_buckets()
                        .into_iter()
                        .map(|(i, c)| Value::Seq(vec![Value::U64(u64::from(i)), Value::U64(c)]))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for Histogram {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let count = u64::from_value(value.field("count")?)?;
        let sum = u64::from_value(value.field("sum")?)?;
        let buckets = <Vec<(u32, u64)>>::from_value(value.field("buckets")?)?;
        Histogram::from_sparse(count, sum, &buckets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1106);
        // Rank 3 of 5 at q=0.5 is the sample 3, whose bucket [2, 3] tops
        // out at 3.
        assert_eq!(h.value_at_quantile(0.5), 3);
        // The max sample 1000 sits in [512, 1023].
        assert_eq!(h.value_at_quantile(1.0), 1023);
        assert!(h.value_at_quantile(1.0) >= 1000);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let mut a = Histogram::new();
        a.record(5);
        a.record(7);
        let mut b = Histogram::new();
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 117);
        assert_eq!(a.sparse_buckets(), vec![(3, 3), (7, 1)]);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::new().value_at_quantile(0.99), 0);
    }

    #[test]
    fn sparse_form_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 17, 4096, u64::MAX] {
            h.record(v);
        }
        let rebuilt = Histogram::from_sparse(h.count(), h.sum(), &h.sparse_buckets()).unwrap();
        assert_eq!(rebuilt, h);
    }

    #[test]
    fn serde_round_trips() {
        let mut h = Histogram::new();
        h.record(42);
        h.record_many(9, 3);
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_sparse_rejects_inconsistent_totals() {
        assert!(Histogram::from_sparse(2, 0, &[(1, 1)]).is_err());
        assert!(Histogram::from_sparse(1, 0, &[(65, 1)]).is_err());
    }
}
