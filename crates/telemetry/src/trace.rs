//! Per-decision stage traces in a bounded ring buffer.
//!
//! A [`StageTrace`] records one admission decision as the ordered list of
//! cascade stages it visited, each with an outcome and a wall-clock span.
//! Traces land in a [`TraceRing`] that keeps only the most recent N, so
//! tracing every decision of a soak run costs O(ring capacity) memory.
//!
//! The stage *structure* (names, order, outcomes) is deterministic; only
//! the `nanos` fields are wall-clock. Consumers that diff traces across
//! runs must ignore `nanos`, exactly like the registry's timing section.

use std::collections::VecDeque;

/// How one visited stage ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// The stage produced the decision.
    Success,
    /// The stage gave up and the cascade fell through to the next one.
    Failure,
}

/// One visited stage within a decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Stage name (e.g. `fast_whole`).
    pub stage: &'static str,
    /// How the stage ended.
    pub outcome: SpanOutcome,
    /// Wall-clock nanoseconds spent in the stage (not deterministic).
    pub nanos: u64,
}

/// One decision's trace through the cascade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTrace {
    /// Monotonic sequence number assigned by the ring.
    pub seq: u64,
    /// The subject task's raw id.
    pub task: u64,
    /// Final decision label (e.g. `admitted_fast_split`, `rejected`).
    pub label: &'static str,
    /// The visited stages, in cascade order.
    pub spans: Vec<StageSpan>,
}

/// A bounded ring of the most recent [`StageTrace`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRing {
    capacity: usize,
    next_seq: u64,
    buf: VecDeque<StageTrace>,
}

impl TraceRing {
    /// A ring keeping the `capacity` most recent traces (capacity 0
    /// disables recording entirely).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            capacity,
            next_seq: 0,
            buf: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Records a trace, assigning and returning its sequence number; the
    /// oldest trace is dropped once the ring is full.
    pub fn record(&mut self, task: u64, label: &'static str, spans: Vec<StageSpan>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.capacity == 0 {
            return seq;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(StageTrace {
            seq,
            task,
            label,
            spans,
        });
        seq
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no traces are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total traces ever recorded (including dropped ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates retained traces, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &StageTrace> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(stage: &'static str, outcome: SpanOutcome) -> StageSpan {
        StageSpan {
            stage,
            outcome,
            nanos: 1,
        }
    }

    #[test]
    fn the_ring_is_bounded_and_keeps_the_most_recent() {
        let mut ring = TraceRing::new(2);
        for task in 0..5u64 {
            ring.record(
                task,
                "admitted_fast_whole",
                vec![span("fast_whole", SpanOutcome::Success)],
            );
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.total_recorded(), 5);
        let seqs: Vec<u64> = ring.iter().map(|t| t.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
        assert_eq!(ring.iter().next().unwrap().task, 3);
    }

    #[test]
    fn capacity_zero_counts_but_retains_nothing() {
        let mut ring = TraceRing::new(0);
        assert_eq!(ring.record(7, "rejected", Vec::new()), 0);
        assert_eq!(ring.record(8, "rejected", Vec::new()), 1);
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 2);
    }

    #[test]
    fn spans_keep_cascade_order() {
        let mut ring = TraceRing::new(4);
        ring.record(
            1,
            "admitted_repair",
            vec![
                span("fast_whole", SpanOutcome::Failure),
                span("fast_split", SpanOutcome::Failure),
                span("repair", SpanOutcome::Success),
            ],
        );
        let trace = ring.iter().next().unwrap();
        let stages: Vec<&str> = trace.spans.iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["fast_whole", "fast_split", "repair"]);
    }
}
