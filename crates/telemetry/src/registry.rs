//! The metrics registry: named counters, gauges, and histograms with a
//! hard determinism split.
//!
//! Every metric carries a [`MetricClass`] that its name prefix encodes:
//!
//! * [`MetricClass::Outcome`] (`spms_*`) — derivable from the final
//!   decision/event log alone. Byte-identical across `--threads` always,
//!   and across shard counts whenever the final decision streams agree.
//! * [`MetricClass::Mechanism`] (`spms_mech_*`) — deterministic for a
//!   fixed configuration (byte-identical across `--threads`), but
//!   describing *how* the engine got there (probe counts, cache hits,
//!   journal rewinds, routing overflow, rebalance), which legitimately
//!   depends on the shard layout.
//! * [`MetricClass::Timing`] (`spms_timing_*`) — wall-clock measurement
//!   data, never deterministic, strippable as one section.
//!
//! Registries are plain values owned by the engine they instrument (no
//! globals), so running N engines on M worker threads cannot interleave
//! updates: thread-count invariance holds by construction, and experiment
//! drivers [`merge`](Registry::merge) per-cell registries in grid order.

use crate::histogram::Histogram;
use crate::snapshot::{Snapshot, SnapshotEntry, SnapshotValue};

/// Determinism class of a metric; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricClass {
    /// Derivable from the final decision/event log; shard-invariant when
    /// the decision streams agree. Name prefix `spms_` (and nothing else).
    Outcome,
    /// Deterministic per configuration but layout-dependent. Name prefix
    /// `spms_mech_`.
    Mechanism,
    /// Wall-clock data, strippable. Name prefix `spms_timing_`.
    Timing,
}

impl MetricClass {
    /// The class `name` encodes, or `None` for a foreign name.
    pub fn of_name(name: &str) -> Option<MetricClass> {
        if name.starts_with("spms_timing_") {
            Some(MetricClass::Timing)
        } else if name.starts_with("spms_mech_") {
            Some(MetricClass::Mechanism)
        } else if name.starts_with("spms_") {
            Some(MetricClass::Outcome)
        } else {
            None
        }
    }
}

/// Which classes a [`Snapshot`] includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFilter {
    /// Everything, timing included.
    Full,
    /// Outcome plus mechanism metrics — the deterministic section.
    Deterministic,
    /// Outcome metrics only — the subset that is additionally invariant
    /// across shard layouts when the decision streams agree.
    ShardInvariant,
}

impl SnapshotFilter {
    /// Whether `class` survives this filter.
    pub fn includes(self, class: MetricClass) -> bool {
        match self {
            SnapshotFilter::Full => true,
            SnapshotFilter::Deterministic => class != MetricClass::Timing,
            SnapshotFilter::ShardInvariant => class == MetricClass::Outcome,
        }
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Clone, PartialEq)]
struct Metric<T> {
    name: String,
    class: MetricClass,
    value: T,
}

/// A named-metric store; see the [module docs](self) for the determinism
/// contract.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counters: Vec<Metric<u64>>,
    gauges: Vec<Metric<u64>>,
    histograms: Vec<Metric<Histogram>>,
}

fn assert_name(name: &str, class: MetricClass) {
    assert_eq!(
        MetricClass::of_name(name),
        Some(class),
        "metric name `{name}` does not encode class {class:?} \
         (expected prefix spms_/spms_mech_/spms_timing_ to match)"
    );
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) the counter `name`, which must carry the
    /// prefix of `class`.
    ///
    /// # Panics
    ///
    /// Panics when `name`'s prefix disagrees with `class`, or when `name`
    /// is already registered with a different class — both programmer
    /// errors.
    pub fn counter(&mut self, name: &str, class: MetricClass) -> CounterId {
        assert_name(name, class);
        if let Some(i) = self.counters.iter().position(|m| m.name == name) {
            assert_eq!(
                self.counters[i].class, class,
                "counter `{name}` re-registered"
            );
            return CounterId(i);
        }
        self.counters.push(Metric {
            name: name.to_string(),
            class,
            value: 0,
        });
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or finds) the gauge `name`; same contract as
    /// [`counter`](Registry::counter).
    pub fn gauge(&mut self, name: &str, class: MetricClass) -> GaugeId {
        assert_name(name, class);
        if let Some(i) = self.gauges.iter().position(|m| m.name == name) {
            assert_eq!(self.gauges[i].class, class, "gauge `{name}` re-registered");
            return GaugeId(i);
        }
        self.gauges.push(Metric {
            name: name.to_string(),
            class,
            value: 0,
        });
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or finds) the histogram `name`; same contract as
    /// [`counter`](Registry::counter).
    pub fn histogram(&mut self, name: &str, class: MetricClass) -> HistogramId {
        assert_name(name, class);
        if let Some(i) = self.histograms.iter().position(|m| m.name == name) {
            assert_eq!(
                self.histograms[i].class, class,
                "histogram `{name}` re-registered"
            );
            return HistogramId(i);
        }
        self.histograms.push(Metric {
            name: name.to_string(),
            class,
            value: Histogram::new(),
        });
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].value += n;
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].value
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, id: GaugeId, value: u64) {
        self.gauges[id.0].value = value;
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> u64 {
        self.gauges[id.0].value
    }

    /// Records one sample into a histogram.
    pub fn record(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].value.record(value);
    }

    /// Borrows a histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].value
    }

    /// Mutably borrows a histogram (for bulk merges).
    pub fn histogram_mut(&mut self, id: HistogramId) -> &mut Histogram {
        &mut self.histograms[id.0].value
    }

    /// Looks a counter's value up by name (test/report convenience).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|m| m.name == name)
            .map(|m| m.value)
    }

    /// Looks a gauge's value up by name (test/report convenience).
    pub fn gauge_by_name(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|m| m.name == name).map(|m| m.value)
    }

    /// Looks a histogram up by name (test/report convenience).
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Folds `other` into `self` by metric name: counters and gauges add,
    /// histograms merge bucket-wise, and names unknown to `self` are
    /// registered. Gauges add so per-shard last-tick values aggregate to a
    /// service-wide figure; engines that need a plain "last value" simply
    /// own the only registry that sets the gauge.
    pub fn merge(&mut self, other: &Registry) {
        self.merge_where(other, |_| true);
    }

    /// [`merge`](Registry::merge) restricted to the classes `include`
    /// accepts. A sharded service uses this to fold its shards' mechanism
    /// and timing metrics in while keeping outcome metrics to the final
    /// decision stream it owns — a shard's outcome counters describe
    /// per-shard `decide` attempts (a home rejection retried on an
    /// overflow shard would double-count).
    pub fn merge_where(&mut self, other: &Registry, include: impl Fn(MetricClass) -> bool) {
        for m in &other.counters {
            if include(m.class) {
                let id = self.counter(&m.name, m.class);
                self.add(id, m.value);
            }
        }
        for m in &other.gauges {
            if include(m.class) {
                let id = self.gauge(&m.name, m.class);
                self.gauges[id.0].value += m.value;
            }
        }
        for m in &other.histograms {
            if include(m.class) {
                let id = self.histogram(&m.name, m.class);
                self.histograms[id.0].value.merge(&m.value);
            }
        }
    }

    /// Renders the metrics surviving `filter` as a [`Snapshot`], sorted
    /// by metric name.
    pub fn snapshot(&self, filter: SnapshotFilter) -> Snapshot {
        let mut entries = Vec::new();
        for m in &self.counters {
            if filter.includes(m.class) {
                entries.push(SnapshotEntry {
                    name: m.name.clone(),
                    value: SnapshotValue::Counter(m.value),
                });
            }
        }
        for m in &self.gauges {
            if filter.includes(m.class) {
                entries.push(SnapshotEntry {
                    name: m.name.clone(),
                    value: SnapshotValue::Gauge(m.value),
                });
            }
        }
        for m in &self.histograms {
            if filter.includes(m.class) {
                entries.push(SnapshotEntry {
                    name: m.name.clone(),
                    value: SnapshotValue::histogram(&m.value),
                });
            }
        }
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_prefixes_encode_the_class() {
        assert_eq!(
            MetricClass::of_name("spms_admitted_total"),
            Some(MetricClass::Outcome)
        );
        assert_eq!(
            MetricClass::of_name("spms_mech_whole_probes_total"),
            Some(MetricClass::Mechanism)
        );
        assert_eq!(
            MetricClass::of_name("spms_timing_decision_latency_ns"),
            Some(MetricClass::Timing)
        );
        assert_eq!(MetricClass::of_name("other_metric"), None);
    }

    #[test]
    #[should_panic(expected = "does not encode class")]
    fn misprefixed_registration_panics() {
        Registry::new().counter("spms_timing_oops_total", MetricClass::Outcome);
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let mut r = Registry::new();
        let a = r.counter("spms_events_total", MetricClass::Outcome);
        let b = r.counter("spms_events_total", MetricClass::Outcome);
        assert_eq!(a, b);
        r.add(a, 3);
        assert_eq!(r.counter_value(b), 3);
        assert_eq!(r.counter_by_name("spms_events_total"), Some(3));
    }

    #[test]
    fn merge_adds_counters_and_gauges_and_merges_histograms() {
        let mut a = Registry::new();
        let c = a.counter("spms_events_total", MetricClass::Outcome);
        a.add(c, 2);
        let h = a.histogram("spms_timing_lat_ns", MetricClass::Timing);
        a.record(h, 100);

        let mut b = Registry::new();
        let c2 = b.counter("spms_events_total", MetricClass::Outcome);
        b.add(c2, 5);
        let g = b.gauge("spms_mech_rebalance_last_moves", MetricClass::Mechanism);
        b.set_gauge(g, 4);
        let h2 = b.histogram("spms_timing_lat_ns", MetricClass::Timing);
        b.record(h2, 200);

        a.merge(&b);
        assert_eq!(a.counter_by_name("spms_events_total"), Some(7));
        assert_eq!(a.gauge_by_name("spms_mech_rebalance_last_moves"), Some(4));
        assert_eq!(
            a.histogram_by_name("spms_timing_lat_ns").unwrap().count(),
            2
        );
    }

    #[test]
    fn snapshot_filters_by_class_and_sorts_by_name() {
        let mut r = Registry::new();
        let t = r.histogram("spms_timing_lat_ns", MetricClass::Timing);
        r.record(t, 5);
        let m = r.counter("spms_mech_probes_total", MetricClass::Mechanism);
        r.inc(m);
        let o = r.counter("spms_admitted_total", MetricClass::Outcome);
        r.inc(o);

        let full = r.snapshot(SnapshotFilter::Full);
        assert_eq!(full.entries.len(), 3);
        assert!(full.entries.windows(2).all(|w| w[0].name < w[1].name));

        let det = r.snapshot(SnapshotFilter::Deterministic);
        assert_eq!(
            det.entries
                .iter()
                .map(|e| e.name.as_str())
                .collect::<Vec<_>>(),
            vec!["spms_admitted_total", "spms_mech_probes_total"]
        );

        let inv = r.snapshot(SnapshotFilter::ShardInvariant);
        assert_eq!(
            inv.entries
                .iter()
                .map(|e| e.name.as_str())
                .collect::<Vec<_>>(),
            vec!["spms_admitted_total"]
        );
    }
}
