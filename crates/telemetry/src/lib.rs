//! Deterministic metrics registry, scoped hot-path counters, and stage
//! tracing for the spms admission engine.
//!
//! The crate has four pieces, designed around one contract — *measurement
//! must never perturb the experiment's determinism story*:
//!
//! * [`Registry`] — named counters, gauges, and power-of-two-bucket
//!   [`Histogram`]s, each tagged with a [`MetricClass`] its name prefix
//!   encodes. The **deterministic section** (`spms_*` outcome and
//!   `spms_mech_*` mechanism metrics) is byte-identical across
//!   `--threads`; the outcome subset is additionally byte-identical
//!   across shard counts whenever the final decision streams agree. The
//!   **timing section** (`spms_timing_*`) holds every wall-clock figure
//!   and strips as one unit.
//! * [`Snapshot`] — a sorted, filtered view of a registry with
//!   Prometheus-text and JSON exposition (and parsers for both, so
//!   round-trips are testable).
//! * [`scoped`] — a fixed set of process-global + thread-local twin
//!   counters for deep library code that cannot reach an engine's
//!   registry; engines fold per-thread deltas back into their registry
//!   per decision.
//! * [`TraceRing`] — bounded per-decision [`StageTrace`] storage.
//!
//! Registries are plain owned values: no global registry exists, engines
//! embed one and experiment drivers merge them in grid order, which is
//! what makes the determinism section hold under `--threads N` by
//! construction.

pub mod histogram;
pub mod registry;
pub mod scoped;
pub mod snapshot;
pub mod trace;
pub mod warnings;

pub use histogram::{Histogram, BUCKET_COUNT};
pub use registry::{CounterId, GaugeId, HistogramId, MetricClass, Registry, SnapshotFilter};
pub use scoped::{HotCounter, HotDeltas, HOT_COUNTERS, HOT_COUNTER_COUNT};
pub use snapshot::{
    ExpositionError, HistogramSummary, Snapshot, SnapshotEntry, SnapshotValue, QUANTILES,
};
pub use trace::{SpanOutcome, StageSpan, StageTrace, TraceRing};
pub use warnings::{drain_warnings, pending_warnings, warn_once, Warning};
