//! Scoped hot-path counters: a fixed set of process-global counters with
//! per-thread twins.
//!
//! Deep library code (RTA iteration caps, partition clones, placement
//! probes, journal rewinds) cannot reach the registry an engine owns —
//! plumbing a `&mut Registry` through the analysis call graph would
//! contaminate every signature. Instead those sites bump one of the
//! [`HotCounter`]s here: a relaxed process-wide atomic plus a
//! thread-local `Cell` twin, exactly the pattern `rta::cap_exhaustions`
//! and `Partition::clone_count` used individually before this crate
//! existed.
//!
//! The thread-local twin is what keeps attribution deterministic under
//! `--threads N`: an engine snapshots its thread's values
//! ([`thread_snapshot`]) before a decision and folds the
//! [`delta`](HotDeltas::since) into its own registry afterwards. Each
//! experiment cell runs on one worker thread, so the deltas an engine
//! sees are exactly its own work regardless of how cells are spread over
//! threads. The process-global twin is a debugging/bench convenience and
//! makes no determinism claim.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// The fixed set of hot-path counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotCounter {
    /// RTA fixed-point iterations that hit the iteration cap.
    RtaCapExhaustions,
    /// `Partition` deep clones.
    PartitionClones,
    /// Whole-task first-fit probes (`core_accepts`-style queries).
    WholeProbes,
    /// Body-budget probes during split carving.
    SplitProbes,
    /// Probes answered by a `CachedCoreAnalysis`.
    CacheProbeHits,
    /// Probes that fell back to a from-scratch RTA.
    CacheProbeMisses,
    /// Journal scopes opened (`journal_begin`).
    JournalBegins,
    /// Journal rewinds (rollbacks to a mark).
    JournalRewinds,
}

/// How many [`HotCounter`]s exist.
pub const HOT_COUNTER_COUNT: usize = 8;

/// Every hot counter, in index order.
pub const HOT_COUNTERS: [HotCounter; HOT_COUNTER_COUNT] = [
    HotCounter::RtaCapExhaustions,
    HotCounter::PartitionClones,
    HotCounter::WholeProbes,
    HotCounter::SplitProbes,
    HotCounter::CacheProbeHits,
    HotCounter::CacheProbeMisses,
    HotCounter::JournalBegins,
    HotCounter::JournalRewinds,
];

impl HotCounter {
    fn index(self) -> usize {
        match self {
            HotCounter::RtaCapExhaustions => 0,
            HotCounter::PartitionClones => 1,
            HotCounter::WholeProbes => 2,
            HotCounter::SplitProbes => 3,
            HotCounter::CacheProbeHits => 4,
            HotCounter::CacheProbeMisses => 5,
            HotCounter::JournalBegins => 6,
            HotCounter::JournalRewinds => 7,
        }
    }

    /// The registry metric name this counter feeds (mechanism class).
    pub fn metric_name(self) -> &'static str {
        match self {
            HotCounter::RtaCapExhaustions => "spms_mech_rta_cap_exhaustions_total",
            HotCounter::PartitionClones => "spms_mech_partition_clones_total",
            HotCounter::WholeProbes => "spms_mech_whole_probes_total",
            HotCounter::SplitProbes => "spms_mech_split_probes_total",
            HotCounter::CacheProbeHits => "spms_mech_cache_probe_hits_total",
            HotCounter::CacheProbeMisses => "spms_mech_cache_probe_misses_total",
            HotCounter::JournalBegins => "spms_mech_journal_begins_total",
            HotCounter::JournalRewinds => "spms_mech_journal_rewinds_total",
        }
    }
}

static GLOBALS: [AtomicU64; HOT_COUNTER_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

thread_local! {
    static THREAD: [Cell<u64>; HOT_COUNTER_COUNT] =
        const { [const { Cell::new(0) }; HOT_COUNTER_COUNT] };
}

/// Adds `n` to `counter` on this thread and process-wide; returns the
/// process-wide value *before* the addition (for fire-once diagnostics).
pub fn add(counter: HotCounter, n: u64) -> u64 {
    let i = counter.index();
    THREAD.with(|cells| cells[i].set(cells[i].get() + n));
    GLOBALS[i].fetch_add(n, Ordering::Relaxed)
}

/// [`add`]s one.
pub fn bump(counter: HotCounter) -> u64 {
    add(counter, 1)
}

/// This thread's running total for `counter`.
pub fn thread_value(counter: HotCounter) -> u64 {
    THREAD.with(|cells| cells[counter.index()].get())
}

/// The process-wide running total for `counter`.
pub fn global_value(counter: HotCounter) -> u64 {
    GLOBALS[counter.index()].load(Ordering::Relaxed)
}

/// Zeroes this thread's total for `counter` (the process-wide twin keeps
/// counting).
pub fn reset_thread(counter: HotCounter) {
    THREAD.with(|cells| cells[counter.index()].set(0));
}

/// Zeroes the process-wide total for `counter` (thread twins keep
/// counting).
pub fn reset_global(counter: HotCounter) {
    GLOBALS[counter.index()].store(0, Ordering::Relaxed);
}

/// A point-in-time copy of this thread's hot-counter values.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotDeltas {
    values: [u64; HOT_COUNTER_COUNT],
}

/// Snapshots this thread's hot-counter values.
pub fn thread_snapshot() -> HotDeltas {
    let mut values = [0u64; HOT_COUNTER_COUNT];
    THREAD.with(|cells| {
        for (v, cell) in values.iter_mut().zip(cells.iter()) {
            *v = cell.get();
        }
    });
    HotDeltas { values }
}

impl HotDeltas {
    /// What this thread has counted since `self` was snapshotted
    /// (saturating, so an interleaved `reset_thread` cannot underflow).
    pub fn since(&self) -> HotDeltas {
        let now = thread_snapshot();
        let mut values = [0u64; HOT_COUNTER_COUNT];
        for (out, (now, then)) in values
            .iter_mut()
            .zip(now.values.iter().zip(self.values.iter()))
        {
            *out = now.saturating_sub(*then);
        }
        HotDeltas { values }
    }

    /// This delta's value for `counter`.
    pub fn get(&self, counter: HotCounter) -> u64 {
        self.values[counter.index()]
    }

    /// Iterates `(counter, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (HotCounter, u64)> + '_ {
        HOT_COUNTERS.iter().map(|&c| (c, self.get(c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The counters are process- and thread-global, so every assertion
    // here is delta-based to stay independent of test ordering.
    #[test]
    fn bumps_land_on_both_twins_and_deltas_attribute_them() {
        let before_global = global_value(HotCounter::WholeProbes);
        let before = thread_snapshot();
        bump(HotCounter::WholeProbes);
        add(HotCounter::WholeProbes, 2);
        bump(HotCounter::JournalRewinds);
        let delta = before.since();
        assert_eq!(delta.get(HotCounter::WholeProbes), 3);
        assert_eq!(delta.get(HotCounter::JournalRewinds), 1);
        assert_eq!(delta.get(HotCounter::PartitionClones), 0);
        assert_eq!(global_value(HotCounter::WholeProbes) - before_global, 3);
    }

    #[test]
    fn add_returns_the_previous_global_value() {
        let before = global_value(HotCounter::SplitProbes);
        assert_eq!(add(HotCounter::SplitProbes, 5), before);
        assert_eq!(global_value(HotCounter::SplitProbes), before + 5);
    }

    #[test]
    fn other_threads_do_not_leak_into_thread_deltas() {
        let before = thread_snapshot();
        std::thread::spawn(|| {
            add(HotCounter::CacheProbeHits, 100);
        })
        .join()
        .unwrap();
        assert_eq!(before.since().get(HotCounter::CacheProbeHits), 0);
    }

    #[test]
    fn metric_names_carry_the_mechanism_prefix() {
        for counter in HOT_COUNTERS {
            assert!(counter.metric_name().starts_with("spms_mech_"));
        }
    }
}
