//! Process-global once-per-run warning collection.
//!
//! Deep library code (the RTA iteration-cap guard, fault-recovery paths)
//! sometimes has a diagnostic worth surfacing exactly once per run, but no
//! path to a [`Registry`](crate::Registry) and no business writing to
//! stderr behind the CLI's back. [`warn_once`] records the first message
//! per key into a process-global store; the CLI (or a test) calls
//! [`drain_warnings`] at the end of the run and decides where the text
//! goes. Repeat warnings under the same key are counted, not stored, so a
//! hot loop that trips the same guard a million times costs one entry.
//!
//! The store is deliberately *not* part of any registry snapshot: warning
//! text is human diagnostics, never part of the deterministic metric
//! sections the CI diffs.

use std::sync::Mutex;

/// One collected warning: the deduplication key, the first message
/// recorded under it, and how many times [`warn_once`] was called with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Warning {
    /// Stable deduplication key, e.g. `"rta_iteration_cap"`.
    pub key: String,
    /// The message of the *first* call under `key`.
    pub message: String,
    /// Total calls under `key` since the last drain.
    pub count: u64,
}

/// The process-global warning store. A `Mutex<Vec<_>>` keeps insertion
/// order (first-warned first-reported); the list stays tiny because keys
/// deduplicate.
static WARNINGS: Mutex<Vec<Warning>> = Mutex::new(Vec::new());

/// Records a warning under a stable `key`. Only the first call per key
/// stores `message`; later calls just bump the count. Returns `true` when
/// this call was the first for `key` (callers can gate extra work on it).
pub fn warn_once(key: &str, message: impl Into<String>) -> bool {
    let mut store = WARNINGS.lock().expect("warning store poisoned");
    if let Some(existing) = store.iter_mut().find(|w| w.key == key) {
        existing.count += 1;
        false
    } else {
        store.push(Warning {
            key: key.to_string(),
            message: message.into(),
            count: 1,
        });
        true
    }
}

/// Takes every collected warning, leaving the store empty. Warnings are
/// returned in first-warned order.
pub fn drain_warnings() -> Vec<Warning> {
    std::mem::take(&mut *WARNINGS.lock().expect("warning store poisoned"))
}

/// Number of distinct warning keys currently collected (cheap peek for
/// tests and status lines).
pub fn pending_warnings() -> usize {
    WARNINGS.lock().expect("warning store poisoned").len()
}

#[cfg(test)]
mod tests {
    use super::*;

    // The store is process-global, so this test serializes against itself
    // by using unique keys and draining at the end.
    #[test]
    fn first_call_stores_later_calls_count() {
        let key = "warnings_test_dedup";
        assert!(warn_once(key, "first message"));
        assert!(!warn_once(key, "second message ignored"));
        assert!(!warn_once(key, "third"));
        let drained: Vec<Warning> = drain_warnings()
            .into_iter()
            .filter(|w| w.key == key)
            .collect();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].message, "first message");
        assert_eq!(drained[0].count, 3);
        // Drained means gone: the next warn under the key is first again.
        assert!(warn_once(key, "fresh after drain"));
        let _ = drain_warnings();
    }
}
