//! Point-in-time metric snapshots and their exposition formats.
//!
//! A [`Snapshot`] is the sorted, filtered rendering of a
//! [`Registry`](crate::Registry): plain `(name, value)` entries with all
//! handles and classes resolved. Two exposition formats are supported:
//!
//! * **Prometheus text** ([`Snapshot::render_prometheus`] /
//!   [`Snapshot::from_prometheus`]) — counters and gauges as plain
//!   samples, histograms as summaries (`{quantile="…"}` samples plus
//!   `_sum`/`_count`). Parsing is exact for counters and gauges;
//!   summaries parse back without their buckets (the text format does not
//!   carry them), so round-trips are byte-exact precisely for
//!   timing-stripped snapshots — which is the determinism contract.
//! * **JSON** (`serde` impls) — lossless for everything, including sparse
//!   histogram buckets.

use std::fmt::Write as _;

use serde::{Deserialize, Error, Serialize, Value};

use crate::histogram::Histogram;

/// The quantiles every histogram exposes.
pub const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")];

/// A histogram reduced to its exposition form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Conservative p50/p99/p999 (bucket upper bounds), in [`QUANTILES`]
    /// order.
    pub quantiles: [u64; 3],
    /// Sparse `(bucket index, count)` pairs; empty after a Prometheus
    /// round-trip.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(histogram: &Histogram) -> Self {
        HistogramSummary {
            count: histogram.count(),
            sum: histogram.sum(),
            quantiles: [
                histogram.value_at_quantile(QUANTILES[0].0),
                histogram.value_at_quantile(QUANTILES[1].0),
                histogram.value_at_quantile(QUANTILES[2].0),
            ],
            buckets: histogram.sparse_buckets(),
        }
    }
}

/// One metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// Monotonic count.
    Counter(u64),
    /// Instantaneous value.
    Gauge(u64),
    /// Distribution summary.
    Histogram(HistogramSummary),
}

impl SnapshotValue {
    /// Summarizes `histogram` as a snapshot value.
    pub fn histogram(histogram: &Histogram) -> Self {
        SnapshotValue::Histogram(HistogramSummary::of(histogram))
    }

    /// The exposition type tag: `counter`, `gauge`, or `histogram`.
    pub fn type_name(&self) -> &'static str {
        match self {
            SnapshotValue::Counter(_) => "counter",
            SnapshotValue::Gauge(_) => "gauge",
            SnapshotValue::Histogram(_) => "histogram",
        }
    }
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// Metric name (prefix encodes the determinism class).
    pub name: String,
    /// The value.
    pub value: SnapshotValue,
}

/// A sorted, filtered point-in-time view of a registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// The entries, sorted by name.
    pub entries: Vec<SnapshotEntry>,
}

/// A snapshot failed to parse back from an exposition format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpositionError(pub String);

impl std::fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "exposition parse error: {}", self.0)
    }
}

impl std::error::Error for ExpositionError {}

impl Snapshot {
    /// Renders the snapshot as Prometheus text exposition. Histograms
    /// become summaries (quantile samples plus `_sum`/`_count`).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let name = &entry.name;
            match &entry.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
                }
                SnapshotValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} summary");
                    for ((_, label), value) in QUANTILES.iter().zip(h.quantiles.iter()) {
                        let _ = writeln!(out, "{name}{{quantile=\"{label}\"}} {value}");
                    }
                    let _ = writeln!(out, "{name}_sum {}\n{name}_count {}", h.sum, h.count);
                }
            }
        }
        out
    }

    /// Parses Prometheus text produced by
    /// [`render_prometheus`](Snapshot::render_prometheus) back into a
    /// snapshot. Summary buckets are not representable in the text format,
    /// so parsed histograms come back with empty `buckets`; counters and
    /// gauges round-trip exactly.
    ///
    /// # Errors
    ///
    /// Returns [`ExpositionError`] on malformed lines, unknown sample
    /// names, or incomplete summaries.
    pub fn from_prometheus(text: &str) -> Result<Snapshot, ExpositionError> {
        let mut entries: Vec<SnapshotEntry> = Vec::new();
        // A summary under construction: (name, quantiles seen, sum, count).
        type OpenSummary = (String, Vec<u64>, Option<u64>, Option<u64>);
        let mut open_summary: Option<OpenSummary> = None;

        fn close_summary(
            entries: &mut Vec<SnapshotEntry>,
            summary: Option<OpenSummary>,
        ) -> Result<(), ExpositionError> {
            let Some((name, quantiles, sum, count)) = summary else {
                return Ok(());
            };
            let quantiles: [u64; 3] = quantiles
                .try_into()
                .map_err(|_| ExpositionError(format!("summary `{name}` is missing quantiles")))?;
            let sum =
                sum.ok_or_else(|| ExpositionError(format!("summary `{name}` has no _sum")))?;
            let count =
                count.ok_or_else(|| ExpositionError(format!("summary `{name}` has no _count")))?;
            entries.push(SnapshotEntry {
                name,
                value: SnapshotValue::Histogram(HistogramSummary {
                    count,
                    sum,
                    quantiles,
                    buckets: Vec::new(),
                }),
            });
            Ok(())
        }

        let mut pending_type: Option<(String, String)> = None;
        for (line_no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| ExpositionError(format!("line {}: {what}", line_no + 1));
            if let Some(comment) = line.strip_prefix('#') {
                let mut parts = comment.split_whitespace();
                if parts.next() == Some("TYPE") {
                    let name = parts.next().ok_or_else(|| err("# TYPE without a name"))?;
                    let kind = parts.next().ok_or_else(|| err("# TYPE without a kind"))?;
                    if !matches!(kind, "counter" | "gauge" | "summary") {
                        return Err(err("unknown metric kind"));
                    }
                    if kind == "summary" {
                        close_summary(&mut entries, open_summary.take())?;
                        open_summary = Some((name.to_string(), Vec::new(), None, None));
                        pending_type = None;
                    } else {
                        pending_type = Some((name.to_string(), kind.to_string()));
                    }
                }
                continue;
            }
            let (sample, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| err("sample line without a value"))?;
            let value: u64 = value.parse().map_err(|_| err("non-integer sample value"))?;
            let (name, labels) = match sample.split_once('{') {
                Some((name, rest)) => {
                    let labels = rest
                        .strip_suffix('}')
                        .ok_or_else(|| err("unterminated label set"))?;
                    (name, Some(labels))
                }
                None => (sample, None),
            };
            // Summary component lines.
            if let Some((ref sname, ref mut quantiles, ref mut sum, ref mut count)) = open_summary {
                let sname = sname.clone();
                if name == sname {
                    let labels = labels.ok_or_else(|| err("summary sample without quantile"))?;
                    if !labels.starts_with("quantile=\"") {
                        return Err(err("summary sample with non-quantile label"));
                    }
                    quantiles.push(value);
                    continue;
                } else if name == format!("{sname}_sum") {
                    *sum = Some(value);
                    continue;
                } else if name == format!("{sname}_count") {
                    *count = Some(value);
                    close_summary(&mut entries, open_summary.take())?;
                    continue;
                }
                close_summary(&mut entries, open_summary.take())?;
            }
            let (tname, kind) = pending_type
                .take()
                .ok_or_else(|| err("sample without a preceding # TYPE"))?;
            if tname != name {
                return Err(err("sample name disagrees with its # TYPE"));
            }
            if labels.is_some() {
                return Err(err("unexpected labels on a counter/gauge sample"));
            }
            entries.push(SnapshotEntry {
                name: name.to_string(),
                value: if kind == "counter" {
                    SnapshotValue::Counter(value)
                } else {
                    SnapshotValue::Gauge(value)
                },
            });
        }
        close_summary(&mut entries, open_summary.take())?;
        Ok(Snapshot { entries })
    }
}

impl Serialize for Snapshot {
    fn to_value(&self) -> Value {
        Value::Map(
            self.entries
                .iter()
                .map(|entry| {
                    let value = match &entry.value {
                        SnapshotValue::Counter(v) => Value::Map(vec![
                            ("type".to_string(), Value::Str("counter".to_string())),
                            ("value".to_string(), Value::U64(*v)),
                        ]),
                        SnapshotValue::Gauge(v) => Value::Map(vec![
                            ("type".to_string(), Value::Str("gauge".to_string())),
                            ("value".to_string(), Value::U64(*v)),
                        ]),
                        SnapshotValue::Histogram(h) => Value::Map(vec![
                            ("type".to_string(), Value::Str("histogram".to_string())),
                            ("count".to_string(), Value::U64(h.count)),
                            ("sum".to_string(), Value::U64(h.sum)),
                            ("p50".to_string(), Value::U64(h.quantiles[0])),
                            ("p99".to_string(), Value::U64(h.quantiles[1])),
                            ("p999".to_string(), Value::U64(h.quantiles[2])),
                            (
                                "buckets".to_string(),
                                Value::Seq(
                                    h.buckets
                                        .iter()
                                        .map(|&(i, c)| {
                                            Value::Seq(vec![
                                                Value::U64(u64::from(i)),
                                                Value::U64(c),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ]),
                    };
                    (entry.name.clone(), value)
                })
                .collect(),
        )
    }
}

impl Deserialize for Snapshot {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let map = value
            .as_map()
            .ok_or_else(|| Error::custom(format!("expected map, found {}", value.kind())))?;
        let mut entries = Vec::with_capacity(map.len());
        for (name, body) in map {
            let kind = body.field("type")?;
            let kind = kind
                .as_str()
                .ok_or_else(|| Error::custom(format!("metric `{name}`: missing type tag")))?;
            let value = match kind {
                "counter" => SnapshotValue::Counter(u64::from_value(body.field("value")?)?),
                "gauge" => SnapshotValue::Gauge(u64::from_value(body.field("value")?)?),
                "histogram" => SnapshotValue::Histogram(HistogramSummary {
                    count: u64::from_value(body.field("count")?)?,
                    sum: u64::from_value(body.field("sum")?)?,
                    quantiles: [
                        u64::from_value(body.field("p50")?)?,
                        u64::from_value(body.field("p99")?)?,
                        u64::from_value(body.field("p999")?)?,
                    ],
                    buckets: <Vec<(u32, u64)>>::from_value(body.field("buckets")?)?,
                }),
                other => {
                    return Err(Error::custom(format!(
                        "metric `{name}`: unknown type `{other}`"
                    )))
                }
            };
            entries.push(SnapshotEntry {
                name: name.clone(),
                value,
            });
        }
        Ok(Snapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{MetricClass, Registry, SnapshotFilter};

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        let c = r.counter("spms_admitted_total", MetricClass::Outcome);
        r.add(c, 41);
        let m = r.counter("spms_mech_whole_probes_total", MetricClass::Mechanism);
        r.add(m, 7);
        let g = r.gauge("spms_mech_rebalance_last_moves", MetricClass::Mechanism);
        r.set_gauge(g, 2);
        let h = r.histogram("spms_timing_decision_latency_ns", MetricClass::Timing);
        for v in [100, 200, 5000, 80_000] {
            r.record(h, v);
        }
        r
    }

    #[test]
    fn prometheus_round_trips_timing_stripped_snapshots_exactly() {
        let snapshot = sample_registry().snapshot(SnapshotFilter::Deterministic);
        let text = snapshot.render_prometheus();
        let back = Snapshot::from_prometheus(&text).unwrap();
        assert_eq!(back, snapshot);
        // And the re-rendered text is byte-identical.
        assert_eq!(back.render_prometheus(), text);
    }

    #[test]
    fn prometheus_full_output_parses_with_summaries() {
        let snapshot = sample_registry().snapshot(SnapshotFilter::Full);
        let text = snapshot.render_prometheus();
        let back = Snapshot::from_prometheus(&text).unwrap();
        assert_eq!(back.entries.len(), snapshot.entries.len());
        let hist = back
            .entries
            .iter()
            .find(|e| e.name == "spms_timing_decision_latency_ns")
            .unwrap();
        match &hist.value {
            SnapshotValue::Histogram(h) => {
                assert_eq!(h.count, 4);
                // Buckets are not representable in the text format.
                assert!(h.buckets.is_empty());
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_round_trips_everything_including_buckets() {
        for filter in [
            SnapshotFilter::Full,
            SnapshotFilter::Deterministic,
            SnapshotFilter::ShardInvariant,
        ] {
            let snapshot = sample_registry().snapshot(filter);
            let json = serde_json::to_string(&snapshot).unwrap();
            let back: Snapshot = serde_json::from_str(&json).unwrap();
            assert_eq!(back, snapshot);
        }
    }

    #[test]
    fn malformed_prometheus_is_rejected() {
        assert!(Snapshot::from_prometheus("spms_x 1").is_err());
        assert!(Snapshot::from_prometheus("# TYPE spms_x counter\nspms_x nope").is_err());
        assert!(Snapshot::from_prometheus("# TYPE spms_x histogram\nspms_x 1").is_err());
        assert!(Snapshot::from_prometheus("# TYPE spms_x summary\nspms_x_sum 1").is_err());
    }

    #[test]
    fn type_names_are_stable() {
        assert_eq!(SnapshotValue::Counter(0).type_name(), "counter");
        assert_eq!(SnapshotValue::Gauge(0).type_name(), "gauge");
        assert_eq!(
            SnapshotValue::histogram(&Histogram::new()).type_name(),
            "histogram"
        );
    }
}
