//! A pairing heap — ablation alternative to the binomial-heap ready queue.

use std::fmt;

#[derive(Debug, Clone)]
struct Node<T> {
    item: T,
    children: Vec<Node<T>>,
}

/// A mergeable min-heap implemented as a pairing heap.
///
/// Included as the ablation alternative for the ready queue (DESIGN.md,
/// design choice 1): pairing heaps have excellent practical performance and a
/// simpler structure than binomial heaps, which the `queue_ops` benchmark uses
/// to put the paper's binomial-heap numbers in context.
///
/// # Example
///
/// ```
/// use spms_queues::PairingHeap;
///
/// let mut h: PairingHeap<u32> = [4, 2, 9].into_iter().collect();
/// assert_eq!(h.pop(), Some(2));
/// assert_eq!(h.pop(), Some(4));
/// assert_eq!(h.pop(), Some(9));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Clone)]
pub struct PairingHeap<T: Ord> {
    root: Option<Node<T>>,
    len: usize,
}

impl<T: Ord> Default for PairingHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> PairingHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        PairingHeap { root: None, len: 0 }
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    /// Inserts an element. `O(1)`.
    pub fn push(&mut self, item: T) {
        let node = Node {
            item,
            children: Vec::new(),
        };
        self.root = Some(match self.root.take() {
            None => node,
            Some(root) => Self::meld(root, node),
        });
        self.len += 1;
    }

    /// A reference to the smallest element, if any. `O(1)`.
    pub fn peek(&self) -> Option<&T> {
        self.root.as_ref().map(|n| &n.item)
    }

    /// Removes and returns the smallest element. `O(log n)` amortised.
    pub fn pop(&mut self) -> Option<T> {
        let root = self.root.take()?;
        self.len -= 1;
        self.root = Self::merge_pairs(root.children);
        Some(root.item)
    }

    /// Merges another heap into this one. `O(1)`.
    pub fn merge(&mut self, other: PairingHeap<T>) {
        self.len += other.len;
        self.root = match (self.root.take(), other.root) {
            (None, r) | (r, None) => r,
            (Some(a), Some(b)) => Some(Self::meld(a, b)),
        };
    }

    /// Consumes the heap and returns its elements in ascending order.
    pub fn into_sorted_vec(mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }

    fn meld(mut a: Node<T>, mut b: Node<T>) -> Node<T> {
        if a.item <= b.item {
            a.children.push(b);
            a
        } else {
            b.children.push(a);
            b
        }
    }

    /// Two-pass pairing: meld children left-to-right in pairs, then meld the
    /// resulting heaps right-to-left.
    fn merge_pairs(children: Vec<Node<T>>) -> Option<Node<T>> {
        let mut pairs: Vec<Node<T>> = Vec::with_capacity(children.len() / 2 + 1);
        let mut iter = children.into_iter();
        while let Some(first) = iter.next() {
            match iter.next() {
                Some(second) => pairs.push(Self::meld(first, second)),
                None => pairs.push(first),
            }
        }
        let mut result: Option<Node<T>> = None;
        for node in pairs.into_iter().rev() {
            result = Some(match result {
                None => node,
                Some(acc) => Self::meld(node, acc),
            });
        }
        result
    }
}

impl<T: Ord> FromIterator<T> for PairingHeap<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut heap = PairingHeap::new();
        for item in iter {
            heap.push(item);
        }
        heap
    }
}

impl<T: Ord> Extend<T> for PairingHeap<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for PairingHeap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PairingHeap")
            .field("len", &self.len)
            .field("min", &self.peek())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_behaviour() {
        let mut h: PairingHeap<u8> = PairingHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.peek(), None);
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn pops_ascending() {
        let h: PairingHeap<i32> = [5, -1, 3, 3, 0].into_iter().collect();
        assert_eq!(h.into_sorted_vec(), vec![-1, 0, 3, 3, 5]);
    }

    #[test]
    fn peek_matches_min() {
        let mut h = PairingHeap::new();
        h.push(9);
        assert_eq!(h.peek(), Some(&9));
        h.push(4);
        assert_eq!(h.peek(), Some(&4));
        h.push(6);
        assert_eq!(h.peek(), Some(&4));
    }

    #[test]
    fn merge_combines() {
        let mut a: PairingHeap<u32> = [1, 7].into_iter().collect();
        let b: PairingHeap<u32> = [0, 9].into_iter().collect();
        a.merge(b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.into_sorted_vec(), vec![0, 1, 7, 9]);
    }

    #[test]
    fn clear_resets() {
        let mut h: PairingHeap<u32> = (0..10).collect();
        h.clear();
        assert!(h.is_empty());
        h.push(3);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn debug_shows_len() {
        let h: PairingHeap<u32> = (0..3).collect();
        assert!(format!("{h:?}").contains("len"));
    }

    proptest! {
        #[test]
        fn prop_sorts_like_std(mut values in proptest::collection::vec(any::<i32>(), 0..300)) {
            let heap: PairingHeap<i32> = values.iter().copied().collect();
            let sorted = heap.into_sorted_vec();
            values.sort_unstable();
            prop_assert_eq!(sorted, values);
        }

        #[test]
        fn prop_interleaved_matches_model(ops in proptest::collection::vec(any::<Option<u16>>(), 0..400)) {
            let mut heap = PairingHeap::new();
            let mut model = std::collections::BinaryHeap::new();
            for op in ops {
                match op {
                    Some(v) => {
                        heap.push(v);
                        model.push(std::cmp::Reverse(v));
                    }
                    None => {
                        prop_assert_eq!(heap.pop(), model.pop().map(|std::cmp::Reverse(v)| v));
                    }
                }
                prop_assert_eq!(heap.len(), model.len());
            }
        }
    }
}
