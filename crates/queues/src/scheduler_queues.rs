//! Scheduler-flavoured wrappers: the per-core ready queue and sleep queue.
//!
//! The paper measures four queue operations (Table 1): *ready queue add*,
//! *ready queue delete*, *sleep queue add* and *sleep queue delete*, each
//! locally and remotely. These wrappers expose precisely those operations so
//! that the overhead-measurement crate and the simulator share one
//! implementation.

use std::fmt;

use crate::{BinomialHeap, PairingHeap, RbTree};

/// Which heap implementation backs a [`ReadyQueue`].
///
/// The paper uses a binomial heap; the pairing-heap and sorted-`BTreeMap`-like
/// alternatives exist for the ablation benchmark (DESIGN.md, choice 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReadyQueueKind {
    /// Binomial heap (the paper's choice).
    #[default]
    BinomialHeap,
    /// Pairing heap.
    PairingHeap,
}

#[derive(Clone)]
enum ReadyQueueImpl<P: Ord, T: Ord> {
    Binomial(BinomialHeap<(P, T)>),
    Pairing(PairingHeap<(P, T)>),
}

/// The per-core ready queue: released-but-unfinished jobs ordered by priority.
///
/// Entries are `(priority, payload)` pairs; smaller priorities pop first, and
/// the payload (typically a monotonically increasing sequence number plus a
/// job identifier) breaks ties deterministically.
///
/// # Example
///
/// ```
/// use spms_queues::ReadyQueue;
///
/// let mut q: ReadyQueue<u32, u64> = ReadyQueue::new();
/// q.add(3, 100);
/// q.add(1, 101);
/// assert_eq!(q.peek(), Some((&1, &101)));
/// assert_eq!(q.delete_highest(), Some((1, 101)));
/// assert_eq!(q.len(), 1);
/// ```
#[derive(Clone)]
pub struct ReadyQueue<P: Ord, T: Ord> {
    inner: ReadyQueueImpl<P, T>,
}

impl<P: Ord, T: Ord> Default for ReadyQueue<P, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Ord, T: Ord> ReadyQueue<P, T> {
    /// Creates an empty ready queue backed by a binomial heap (the paper's
    /// configuration).
    pub fn new() -> Self {
        Self::with_kind(ReadyQueueKind::BinomialHeap)
    }

    /// Creates an empty ready queue backed by the given heap implementation.
    pub fn with_kind(kind: ReadyQueueKind) -> Self {
        let inner = match kind {
            ReadyQueueKind::BinomialHeap => ReadyQueueImpl::Binomial(BinomialHeap::new()),
            ReadyQueueKind::PairingHeap => ReadyQueueImpl::Pairing(PairingHeap::new()),
        };
        ReadyQueue { inner }
    }

    /// Which heap implementation backs this queue.
    pub fn kind(&self) -> ReadyQueueKind {
        match &self.inner {
            ReadyQueueImpl::Binomial(_) => ReadyQueueKind::BinomialHeap,
            ReadyQueueImpl::Pairing(_) => ReadyQueueKind::PairingHeap,
        }
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        match &self.inner {
            ReadyQueueImpl::Binomial(h) => h.len(),
            ReadyQueueImpl::Pairing(h) => h.len(),
        }
    }

    /// Whether no job is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The paper's *ready queue add* operation: inserts a job with the given
    /// priority.
    pub fn add(&mut self, priority: P, payload: T) {
        match &mut self.inner {
            ReadyQueueImpl::Binomial(h) => h.push((priority, payload)),
            ReadyQueueImpl::Pairing(h) => h.push((priority, payload)),
        }
    }

    /// The highest-priority entry without removing it.
    pub fn peek(&self) -> Option<(&P, &T)> {
        match &self.inner {
            ReadyQueueImpl::Binomial(h) => h.peek().map(|(p, t)| (p, t)),
            ReadyQueueImpl::Pairing(h) => h.peek().map(|(p, t)| (p, t)),
        }
    }

    /// The paper's *ready queue delete* operation: removes and returns the
    /// highest-priority job.
    pub fn delete_highest(&mut self) -> Option<(P, T)> {
        match &mut self.inner {
            ReadyQueueImpl::Binomial(h) => h.pop(),
            ReadyQueueImpl::Pairing(h) => h.pop(),
        }
    }

    /// Removes every queued job.
    pub fn clear(&mut self) {
        match &mut self.inner {
            ReadyQueueImpl::Binomial(h) => h.clear(),
            ReadyQueueImpl::Pairing(h) => h.clear(),
        }
    }
}

impl<P: Ord + fmt::Debug, T: Ord + fmt::Debug> fmt::Debug for ReadyQueue<P, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadyQueue")
            .field("kind", &self.kind())
            .field("len", &self.len())
            .finish()
    }
}

/// The per-core sleep queue: inactive tasks keyed by next release time.
///
/// Backed by the red-black tree, mirroring the paper's implementation. The
/// key is typically `(release_time, task_id)` so that simultaneous releases
/// are both representable and deterministically ordered.
///
/// # Example
///
/// ```
/// use spms_queues::SleepQueue;
///
/// let mut q: SleepQueue<(u64, u32), &str> = SleepQueue::new();
/// q.add((500, 1), "tau1");
/// q.add((200, 0), "tau0");
/// assert_eq!(q.next_release(), Some((&(200, 0), &"tau0")));
/// assert_eq!(q.pop_earliest(), Some(((200, 0), "tau0")));
/// assert_eq!(q.delete(&(500, 1)), Some("tau1"));
/// assert!(q.is_empty());
/// ```
#[derive(Clone)]
pub struct SleepQueue<K: Ord, T> {
    tree: RbTree<K, T>,
}

impl<K: Ord, T> Default for SleepQueue<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, T> SleepQueue<K, T> {
    /// Creates an empty sleep queue.
    pub fn new() -> Self {
        SleepQueue {
            tree: RbTree::new(),
        }
    }

    /// Number of sleeping tasks.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether no task is sleeping.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// The paper's *sleep queue add* operation: inserts a task keyed by its
    /// next release time. Returns the previous entry under an equal key.
    pub fn add(&mut self, key: K, task: T) -> Option<T> {
        self.tree.insert(key, task)
    }

    /// The paper's *sleep queue delete* operation: removes the entry with the
    /// given key.
    pub fn delete(&mut self, key: &K) -> Option<T> {
        self.tree.remove(key)
    }

    /// The earliest-release entry without removing it.
    pub fn next_release(&self) -> Option<(&K, &T)> {
        self.tree.first()
    }

    /// Removes and returns the earliest-release entry.
    pub fn pop_earliest(&mut self) -> Option<(K, T)> {
        self.tree.pop_first()
    }

    /// Whether a task with the given key is sleeping.
    pub fn contains(&self, key: &K) -> bool {
        self.tree.contains_key(key)
    }

    /// Removes every sleeping task.
    pub fn clear(&mut self) {
        self.tree.clear();
    }
}

impl<K: Ord + fmt::Debug, T: fmt::Debug> fmt::Debug for SleepQueue<K, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SleepQueue")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_queue_orders_by_priority_then_payload() {
        for kind in [ReadyQueueKind::BinomialHeap, ReadyQueueKind::PairingHeap] {
            let mut q: ReadyQueue<u32, u64> = ReadyQueue::with_kind(kind);
            assert!(q.is_empty());
            q.add(2, 10);
            q.add(0, 11);
            q.add(2, 5);
            assert_eq!(q.kind(), kind);
            assert_eq!(q.len(), 3);
            assert_eq!(q.delete_highest(), Some((0, 11)));
            assert_eq!(q.delete_highest(), Some((2, 5)));
            assert_eq!(q.delete_highest(), Some((2, 10)));
            assert_eq!(q.delete_highest(), None);
        }
    }

    #[test]
    fn ready_queue_peek_and_clear() {
        let mut q: ReadyQueue<u32, u32> = ReadyQueue::new();
        q.add(7, 1);
        q.add(3, 2);
        assert_eq!(q.peek(), Some((&3, &2)));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn sleep_queue_pops_earliest_release() {
        let mut q: SleepQueue<(u64, u32), u32> = SleepQueue::new();
        q.add((1_000, 3), 3);
        q.add((500, 1), 1);
        q.add((500, 2), 2);
        assert_eq!(q.len(), 3);
        assert!(q.contains(&(500, 1)));
        assert_eq!(q.next_release(), Some((&(500, 1), &1)));
        assert_eq!(q.pop_earliest(), Some(((500, 1), 1)));
        assert_eq!(q.delete(&(1_000, 3)), Some(3));
        assert_eq!(q.delete(&(1_000, 3)), None);
        assert_eq!(q.pop_earliest(), Some(((500, 2), 2)));
        assert!(q.is_empty());
    }

    #[test]
    fn sleep_queue_clear_and_debug() {
        let mut q: SleepQueue<u64, u32> = SleepQueue::new();
        q.add(1, 1);
        q.clear();
        assert!(q.is_empty());
        assert!(format!("{q:?}").contains("SleepQueue"));
        let rq: ReadyQueue<u32, u32> = ReadyQueue::new();
        assert!(format!("{rq:?}").contains("ReadyQueue"));
    }
}
