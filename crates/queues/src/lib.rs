//! # spms-queues
//!
//! Scheduler queue substrates for the semi-partitioned multi-core scheduler.
//!
//! The paper's Linux implementation states (§2): *"The ready queue is
//! implemented by a binomial heap and the sleep queue is implemented by a
//! red-black tree."* This crate provides from-scratch implementations of both
//! data structures (plus a pairing heap used as an ablation alternative for
//! the ready queue), so that the overhead measurements of Table 1 can be
//! regenerated against the very structures the scheduler uses:
//!
//! * [`BinomialHeap`] — mergeable min-heap, the per-core **ready queue**,
//! * [`RbTree`] — ordered map, the per-core **sleep queue** (keyed by next
//!   release time),
//! * [`PairingHeap`] — alternative mergeable heap for the ready-queue ablation
//!   benchmark,
//! * [`ReadyQueue`] / [`SleepQueue`] — thin, scheduler-flavoured wrappers that
//!   expose exactly the operations the paper measures (`add`, `delete`,
//!   `peek highest priority`, `pop earliest release`).
//!
//! All structures are implemented in safe Rust (`#![forbid(unsafe_code)]`).
//!
//! # Example
//!
//! ```
//! use spms_queues::BinomialHeap;
//!
//! let mut ready: BinomialHeap<(u32, u64)> = BinomialHeap::new();
//! ready.push((2, 0)); // (priority level, sequence number)
//! ready.push((0, 1));
//! ready.push((1, 2));
//! assert_eq!(ready.pop(), Some((0, 1))); // smallest = highest priority first
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binomial_heap;
mod pairing_heap;
mod rb_tree;
mod scheduler_queues;

pub use binomial_heap::BinomialHeap;
pub use pairing_heap::PairingHeap;
pub use rb_tree::RbTree;
pub use scheduler_queues::{ReadyQueue, ReadyQueueKind, SleepQueue};
