//! A red-black tree map — the paper's per-core sleep queue.
//!
//! The sleep queue stores inactive tasks keyed by their next release time;
//! the scheduler's timer path needs cheap `insert`, `remove` and
//! `pop_first` (earliest release) operations, which is exactly what a
//! red-black tree provides (and what Linux itself uses for its `hrtimer` and
//! CFS run queues). The implementation follows the classic CLRS formulation
//! with an arena of index-linked slots and an explicit sentinel node, so the
//! whole structure is safe Rust.

use std::cmp::Ordering;
use std::fmt;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Color {
    Red,
    Black,
}

const NIL: usize = 0;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: Option<K>,
    value: Option<V>,
    left: usize,
    right: usize,
    parent: usize,
    color: Color,
}

impl<K, V> Slot<K, V> {
    fn sentinel() -> Self {
        Slot {
            key: None,
            value: None,
            left: NIL,
            right: NIL,
            parent: NIL,
            color: Color::Black,
        }
    }
}

/// An ordered map implemented as a red-black tree.
///
/// # Example
///
/// ```
/// use spms_queues::RbTree;
///
/// let mut sleep_queue: RbTree<u64, &str> = RbTree::new();
/// sleep_queue.insert(300, "tau2");
/// sleep_queue.insert(100, "tau0");
/// sleep_queue.insert(200, "tau1");
/// assert_eq!(sleep_queue.first(), Some((&100, &"tau0")));
/// assert_eq!(sleep_queue.pop_first(), Some((100, "tau0")));
/// assert_eq!(sleep_queue.len(), 2);
/// ```
#[derive(Clone)]
pub struct RbTree<K: Ord, V> {
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    root: usize,
    len: usize,
}

impl<K: Ord, V> Default for RbTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> RbTree<K, V> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RbTree {
            slots: vec![Slot::sentinel()],
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.slots.truncate(1);
        self.free.clear();
        self.root = NIL;
        self.len = 0;
    }

    /// Inserts a key/value pair, returning the previous value stored under an
    /// equal key (like `BTreeMap::insert`). `O(log n)`.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        let mut parent = NIL;
        let mut cursor = self.root;
        while cursor != NIL {
            parent = cursor;
            match key.cmp(self.key(cursor)) {
                Ordering::Less => cursor = self.slots[cursor].left,
                Ordering::Greater => cursor = self.slots[cursor].right,
                Ordering::Equal => {
                    return self.slots[cursor].value.replace(value);
                }
            }
        }
        let z = self.alloc(key, value, parent);
        if parent == NIL {
            self.root = z;
        } else if self.key(z) < self.key(parent) {
            self.slots[parent].left = z;
        } else {
            self.slots[parent].right = z;
        }
        self.len += 1;
        self.insert_fixup(z);
        None
    }

    /// Looks up the value stored under `key`. `O(log n)`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let idx = self.find(key)?;
        self.slots[idx].value.as_ref()
    }

    /// Mutable lookup. `O(log n)`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = self.find(key)?;
        self.slots[idx].value.as_mut()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Removes `key`, returning its value if it was present. `O(log n)`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let z = self.find(key)?;
        Some(self.remove_index(z))
    }

    /// The entry with the smallest key.
    pub fn first(&self) -> Option<(&K, &V)> {
        if self.root == NIL {
            return None;
        }
        let m = self.minimum(self.root);
        Some((
            self.slots[m].key.as_ref().expect("non-sentinel has key"),
            self.slots[m]
                .value
                .as_ref()
                .expect("non-sentinel has value"),
        ))
    }

    /// The entry with the largest key.
    pub fn last(&self) -> Option<(&K, &V)> {
        if self.root == NIL {
            return None;
        }
        let mut cursor = self.root;
        while self.slots[cursor].right != NIL {
            cursor = self.slots[cursor].right;
        }
        Some((
            self.slots[cursor]
                .key
                .as_ref()
                .expect("non-sentinel has key"),
            self.slots[cursor]
                .value
                .as_ref()
                .expect("non-sentinel has value"),
        ))
    }

    /// Removes and returns the entry with the smallest key — the sleep
    /// queue's "next task to wake" operation. `O(log n)`.
    pub fn pop_first(&mut self) -> Option<(K, V)> {
        if self.root == NIL {
            return None;
        }
        let m = self.minimum(self.root);
        Some(self.remove_index_with_key(m))
    }

    /// Iterates over the entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::new();
        let mut cursor = self.root;
        while cursor != NIL {
            stack.push(cursor);
            cursor = self.slots[cursor].left;
        }
        Iter { tree: self, stack }
    }

    /// Ascending iterator over keys.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Ascending iterator over values.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn key(&self, idx: usize) -> &K {
        self.slots[idx].key.as_ref().expect("non-sentinel has key")
    }

    fn alloc(&mut self, key: K, value: V, parent: usize) -> usize {
        let slot = Slot {
            key: Some(key),
            value: Some(value),
            left: NIL,
            right: NIL,
            parent,
            color: Color::Red,
        };
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = slot;
                idx
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        }
    }

    fn find(&self, key: &K) -> Option<usize> {
        let mut cursor = self.root;
        while cursor != NIL {
            match key.cmp(self.key(cursor)) {
                Ordering::Less => cursor = self.slots[cursor].left,
                Ordering::Greater => cursor = self.slots[cursor].right,
                Ordering::Equal => return Some(cursor),
            }
        }
        None
    }

    fn minimum(&self, mut idx: usize) -> usize {
        while self.slots[idx].left != NIL {
            idx = self.slots[idx].left;
        }
        idx
    }

    fn left_rotate(&mut self, x: usize) {
        let y = self.slots[x].right;
        self.slots[x].right = self.slots[y].left;
        if self.slots[y].left != NIL {
            let yl = self.slots[y].left;
            self.slots[yl].parent = x;
        }
        self.slots[y].parent = self.slots[x].parent;
        let xp = self.slots[x].parent;
        if xp == NIL {
            self.root = y;
        } else if self.slots[xp].left == x {
            self.slots[xp].left = y;
        } else {
            self.slots[xp].right = y;
        }
        self.slots[y].left = x;
        self.slots[x].parent = y;
    }

    fn right_rotate(&mut self, x: usize) {
        let y = self.slots[x].left;
        self.slots[x].left = self.slots[y].right;
        if self.slots[y].right != NIL {
            let yr = self.slots[y].right;
            self.slots[yr].parent = x;
        }
        self.slots[y].parent = self.slots[x].parent;
        let xp = self.slots[x].parent;
        if xp == NIL {
            self.root = y;
        } else if self.slots[xp].right == x {
            self.slots[xp].right = y;
        } else {
            self.slots[xp].left = y;
        }
        self.slots[y].right = x;
        self.slots[x].parent = y;
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.slots[self.slots[z].parent].color == Color::Red {
            let zp = self.slots[z].parent;
            let zpp = self.slots[zp].parent;
            if zp == self.slots[zpp].left {
                let uncle = self.slots[zpp].right;
                if self.slots[uncle].color == Color::Red {
                    self.slots[zp].color = Color::Black;
                    self.slots[uncle].color = Color::Black;
                    self.slots[zpp].color = Color::Red;
                    z = zpp;
                } else {
                    if z == self.slots[zp].right {
                        z = zp;
                        self.left_rotate(z);
                    }
                    let zp = self.slots[z].parent;
                    let zpp = self.slots[zp].parent;
                    self.slots[zp].color = Color::Black;
                    self.slots[zpp].color = Color::Red;
                    self.right_rotate(zpp);
                }
            } else {
                let uncle = self.slots[zpp].left;
                if self.slots[uncle].color == Color::Red {
                    self.slots[zp].color = Color::Black;
                    self.slots[uncle].color = Color::Black;
                    self.slots[zpp].color = Color::Red;
                    z = zpp;
                } else {
                    if z == self.slots[zp].left {
                        z = zp;
                        self.right_rotate(z);
                    }
                    let zp = self.slots[z].parent;
                    let zpp = self.slots[zp].parent;
                    self.slots[zp].color = Color::Black;
                    self.slots[zpp].color = Color::Red;
                    self.left_rotate(zpp);
                }
            }
            if z == self.root {
                break;
            }
        }
        let root = self.root;
        self.slots[root].color = Color::Black;
        // The sentinel may have been recoloured through uncle handling when
        // the uncle is NIL; restore its invariant colour.
        self.slots[NIL].color = Color::Black;
    }

    fn transplant(&mut self, u: usize, v: usize) {
        let up = self.slots[u].parent;
        if up == NIL {
            self.root = v;
        } else if u == self.slots[up].left {
            self.slots[up].left = v;
        } else {
            self.slots[up].right = v;
        }
        self.slots[v].parent = up;
    }

    fn remove_index(&mut self, z: usize) -> V {
        self.remove_index_with_key(z).1
    }

    fn remove_index_with_key(&mut self, z: usize) -> (K, V) {
        let mut y = z;
        let mut y_original_color = self.slots[y].color;
        let x;
        if self.slots[z].left == NIL {
            x = self.slots[z].right;
            self.transplant(z, self.slots[z].right);
        } else if self.slots[z].right == NIL {
            x = self.slots[z].left;
            self.transplant(z, self.slots[z].left);
        } else {
            y = self.minimum(self.slots[z].right);
            y_original_color = self.slots[y].color;
            x = self.slots[y].right;
            if self.slots[y].parent == z {
                self.slots[x].parent = y;
            } else {
                self.transplant(y, self.slots[y].right);
                self.slots[y].right = self.slots[z].right;
                let yr = self.slots[y].right;
                self.slots[yr].parent = y;
            }
            self.transplant(z, y);
            self.slots[y].left = self.slots[z].left;
            let yl = self.slots[y].left;
            self.slots[yl].parent = y;
            self.slots[y].color = self.slots[z].color;
        }
        if y_original_color == Color::Black {
            self.delete_fixup(x);
        }
        let key = self.slots[z].key.take().expect("removed node has key");
        let value = self.slots[z].value.take().expect("removed node has value");
        self.free.push(z);
        self.len -= 1;
        // Reset the sentinel's parent, which delete may have dirtied.
        self.slots[NIL].parent = NIL;
        self.slots[NIL].color = Color::Black;
        (key, value)
    }

    fn delete_fixup(&mut self, mut x: usize) {
        while x != self.root && self.slots[x].color == Color::Black {
            let xp = self.slots[x].parent;
            if x == self.slots[xp].left {
                let mut w = self.slots[xp].right;
                if self.slots[w].color == Color::Red {
                    self.slots[w].color = Color::Black;
                    self.slots[xp].color = Color::Red;
                    self.left_rotate(xp);
                    w = self.slots[self.slots[x].parent].right;
                }
                let wl = self.slots[w].left;
                let wr = self.slots[w].right;
                if self.slots[wl].color == Color::Black && self.slots[wr].color == Color::Black {
                    self.slots[w].color = Color::Red;
                    x = self.slots[x].parent;
                } else {
                    if self.slots[wr].color == Color::Black {
                        self.slots[wl].color = Color::Black;
                        self.slots[w].color = Color::Red;
                        self.right_rotate(w);
                        w = self.slots[self.slots[x].parent].right;
                    }
                    let xp = self.slots[x].parent;
                    self.slots[w].color = self.slots[xp].color;
                    self.slots[xp].color = Color::Black;
                    let wr = self.slots[w].right;
                    self.slots[wr].color = Color::Black;
                    self.left_rotate(xp);
                    x = self.root;
                }
            } else {
                let mut w = self.slots[xp].left;
                if self.slots[w].color == Color::Red {
                    self.slots[w].color = Color::Black;
                    self.slots[xp].color = Color::Red;
                    self.right_rotate(xp);
                    w = self.slots[self.slots[x].parent].left;
                }
                let wl = self.slots[w].left;
                let wr = self.slots[w].right;
                if self.slots[wr].color == Color::Black && self.slots[wl].color == Color::Black {
                    self.slots[w].color = Color::Red;
                    x = self.slots[x].parent;
                } else {
                    if self.slots[wl].color == Color::Black {
                        self.slots[wr].color = Color::Black;
                        self.slots[w].color = Color::Red;
                        self.left_rotate(w);
                        w = self.slots[self.slots[x].parent].left;
                    }
                    let xp = self.slots[x].parent;
                    self.slots[w].color = self.slots[xp].color;
                    self.slots[xp].color = Color::Black;
                    let wl = self.slots[w].left;
                    self.slots[wl].color = Color::Black;
                    self.right_rotate(xp);
                    x = self.root;
                }
            }
        }
        self.slots[x].color = Color::Black;
        self.slots[NIL].color = Color::Black;
    }

    /// Verifies the red-black and binary-search-tree invariants.
    /// Intended for tests; panics on violation.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        if self.root == NIL {
            assert_eq!(self.len, 0, "empty tree must have length zero");
            return;
        }
        assert_eq!(
            self.slots[self.root].color,
            Color::Black,
            "root must be black"
        );
        let mut count = 0usize;
        let black_height = self.check_subtree(self.root, &mut count, None, None);
        assert!(black_height > 0);
        assert_eq!(count, self.len, "length matches number of reachable nodes");
    }

    fn check_subtree(
        &self,
        idx: usize,
        count: &mut usize,
        lower: Option<&K>,
        upper: Option<&K>,
    ) -> usize {
        if idx == NIL {
            return 1; // sentinel counts one black node
        }
        *count += 1;
        let key = self.key(idx);
        if let Some(lo) = lower {
            assert!(key > lo, "BST order violated");
        }
        if let Some(hi) = upper {
            assert!(key < hi, "BST order violated");
        }
        let left = self.slots[idx].left;
        let right = self.slots[idx].right;
        if self.slots[idx].color == Color::Red {
            assert_eq!(
                self.slots[left].color,
                Color::Black,
                "red node has red child"
            );
            assert_eq!(
                self.slots[right].color,
                Color::Black,
                "red node has red child"
            );
        }
        if left != NIL {
            assert_eq!(self.slots[left].parent, idx, "parent pointer consistent");
        }
        if right != NIL {
            assert_eq!(self.slots[right].parent, idx, "parent pointer consistent");
        }
        let lh = self.check_subtree(left, count, lower, Some(key));
        let rh = self.check_subtree(right, count, Some(key), upper);
        assert_eq!(lh, rh, "black heights must match");
        lh + usize::from(self.slots[idx].color == Color::Black)
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for RbTree<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut tree = RbTree::new();
        for (k, v) in iter {
            tree.insert(k, v);
        }
        tree
    }
}

impl<K: Ord, V> Extend<(K, V)> for RbTree<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        for (k, v) in iter {
            self.insert(k, v);
        }
    }
}

impl<K: Ord + fmt::Debug, V: fmt::Debug> fmt::Debug for RbTree<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

/// In-order iterator over a [`RbTree`], created by [`RbTree::iter`].
pub struct Iter<'a, K: Ord, V> {
    tree: &'a RbTree<K, V>,
    stack: Vec<usize>,
}

impl<'a, K: Ord, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.stack.pop()?;
        let mut cursor = self.tree.slots[idx].right;
        while cursor != NIL {
            self.stack.push(cursor);
            cursor = self.tree.slots[cursor].left;
        }
        Some((
            self.tree.slots[idx].key.as_ref().expect("non-sentinel"),
            self.tree.slots[idx].value.as_ref().expect("non-sentinel"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::BTreeMap;

    #[test]
    fn empty_tree() {
        let t: RbTree<u32, u32> = RbTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.first(), None);
        assert_eq!(t.last(), None);
        assert_eq!(t.get(&3), None);
        t.check_invariants();
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(5, "five"), None);
        assert_eq!(t.insert(3, "three"), None);
        assert_eq!(t.insert(8, "eight"), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(&3), Some(&"three"));
        assert_eq!(t.get(&9), None);
        assert!(t.contains_key(&8));
        assert_eq!(t.remove(&3), Some("three"));
        assert_eq!(t.remove(&3), None);
        assert_eq!(t.len(), 2);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces_existing_value() {
        let mut t = RbTree::new();
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 20), Some(10));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&1), Some(&20));
    }

    #[test]
    fn first_last_and_pop_first() {
        let mut t: RbTree<u64, &str> = [(300u64, "c"), (100, "a"), (200, "b")]
            .into_iter()
            .collect();
        assert_eq!(t.first(), Some((&100, &"a")));
        assert_eq!(t.last(), Some((&300, &"c")));
        assert_eq!(t.pop_first(), Some((100, "a")));
        assert_eq!(t.pop_first(), Some((200, "b")));
        assert_eq!(t.pop_first(), Some((300, "c")));
        assert_eq!(t.pop_first(), None);
        t.check_invariants();
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut t: RbTree<u32, u32> = [(1, 1), (2, 2)].into_iter().collect();
        *t.get_mut(&2).unwrap() = 99;
        assert_eq!(t.get(&2), Some(&99));
        assert_eq!(t.get_mut(&7), None);
    }

    #[test]
    fn ascending_insertion_stays_balanced() {
        let mut t = RbTree::new();
        for i in 0..1_000u32 {
            t.insert(i, i * 2);
            if i % 97 == 0 {
                t.check_invariants();
            }
        }
        t.check_invariants();
        assert_eq!(t.len(), 1_000);
        let keys: Vec<u32> = t.keys().copied().collect();
        assert_eq!(keys, (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn descending_insertion_stays_balanced() {
        let mut t = RbTree::new();
        for i in (0..1_000u32).rev() {
            t.insert(i, ());
        }
        t.check_invariants();
        assert_eq!(
            t.keys().copied().collect::<Vec<_>>(),
            (0..1_000).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_insert_remove_matches_btreemap() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut tree = RbTree::new();
        let mut model = BTreeMap::new();
        let mut keys: Vec<u32> = (0..500).collect();
        keys.shuffle(&mut rng);
        for &k in &keys {
            assert_eq!(tree.insert(k, k as u64), model.insert(k, k as u64));
        }
        tree.check_invariants();
        keys.shuffle(&mut rng);
        for &k in keys.iter().take(250) {
            assert_eq!(tree.remove(&k), model.remove(&k));
        }
        tree.check_invariants();
        assert_eq!(tree.len(), model.len());
        let tree_pairs: Vec<(u32, u64)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
        let model_pairs: Vec<(u32, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    fn slot_reuse_after_removal() {
        let mut t = RbTree::new();
        for i in 0..100u32 {
            t.insert(i, i);
        }
        for i in 0..100u32 {
            t.remove(&i);
        }
        assert!(t.is_empty());
        let slots_before = t.slots.len();
        for i in 0..100u32 {
            t.insert(i, i);
        }
        // Freed slots are reused rather than growing the arena.
        assert_eq!(t.slots.len(), slots_before);
        t.check_invariants();
    }

    #[test]
    fn clear_resets_everything() {
        let mut t: RbTree<u32, u32> = (0..64).map(|i| (i, i)).collect();
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.first(), None);
        t.insert(1, 1);
        assert_eq!(t.len(), 1);
        t.check_invariants();
    }

    #[test]
    fn iteration_is_sorted() {
        let t: RbTree<i32, ()> = [5, -3, 12, 0, 7, -8].into_iter().map(|k| (k, ())).collect();
        let keys: Vec<i32> = t.keys().copied().collect();
        assert_eq!(keys, vec![-8, -3, 0, 5, 7, 12]);
        assert_eq!(t.values().count(), 6);
    }

    #[test]
    fn debug_formats_as_map() {
        let t: RbTree<u32, u32> = [(1, 10), (2, 20)].into_iter().collect();
        let s = format!("{t:?}");
        assert!(s.contains('1') && s.contains("10"));
    }

    #[test]
    fn duplicate_release_times_via_tuple_keys() {
        // The sleep queue keys by (release_time, task_id) so equal release
        // times are allowed; verify tuple keys order correctly.
        let mut t = RbTree::new();
        t.insert((100u64, 2u32), "b");
        t.insert((100, 1), "a");
        t.insert((50, 9), "c");
        assert_eq!(t.pop_first(), Some(((50, 9), "c")));
        assert_eq!(t.pop_first(), Some(((100, 1), "a")));
        assert_eq!(t.pop_first(), Some(((100, 2), "b")));
    }

    proptest! {
        #[test]
        fn prop_matches_btreemap(ops in proptest::collection::vec((any::<u16>(), any::<bool>()), 0..400)) {
            let mut tree = RbTree::new();
            let mut model = BTreeMap::new();
            for (key, is_insert) in ops {
                if is_insert {
                    prop_assert_eq!(tree.insert(key, u32::from(key)), model.insert(key, u32::from(key)));
                } else {
                    prop_assert_eq!(tree.remove(&key), model.remove(&key));
                }
                prop_assert_eq!(tree.len(), model.len());
            }
            tree.check_invariants();
            let tree_pairs: Vec<(u16, u32)> = tree.iter().map(|(k, v)| (*k, *v)).collect();
            let model_pairs: Vec<(u16, u32)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(tree_pairs, model_pairs);
        }

        #[test]
        fn prop_pop_first_drains_in_order(keys in proptest::collection::btree_set(any::<i32>(), 0..200)) {
            let mut tree: RbTree<i32, ()> = keys.iter().map(|&k| (k, ())).collect();
            let expected: Vec<i32> = keys.into_iter().collect();
            let mut drained = Vec::new();
            while let Some((k, ())) = tree.pop_first() {
                drained.push(k);
            }
            prop_assert_eq!(drained, expected);
            tree.check_invariants();
        }
    }
}
