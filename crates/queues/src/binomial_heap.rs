//! A binomial min-heap — the paper's per-core ready queue.

use std::fmt;

/// A node of the binomial heap: a binomial tree of order `order`, whose
/// children are binomial trees of orders `0..order` stored in increasing
/// order.
#[derive(Debug, Clone)]
struct Node<T> {
    item: T,
    order: u32,
    children: Vec<Node<T>>,
}

impl<T: Ord> Node<T> {
    fn singleton(item: T) -> Self {
        Node {
            item,
            order: 0,
            children: Vec::new(),
        }
    }

    /// Links two trees of equal order into one tree of order + 1, keeping the
    /// smaller item at the root (min-heap property).
    fn link(mut a: Node<T>, mut b: Node<T>) -> Node<T> {
        debug_assert_eq!(a.order, b.order);
        if a.item <= b.item {
            a.children.push(b);
            a.order += 1;
            a
        } else {
            b.children.push(a);
            b.order += 1;
            b
        }
    }
}

/// A mergeable min-heap implemented as a binomial heap.
///
/// The paper's ready queue stores released-but-unfinished jobs ordered by
/// fixed priority; a binomial heap gives `O(log n)` insertion and extraction
/// and, importantly for semi-partitioned scheduling, `O(log n)` melding when a
/// migrating subtask's state is handed to another core.
///
/// The element type doubles as the key: the heap pops the *smallest* element
/// first, so scheduler users store `(priority_level, sequence, payload)`
/// tuples where a smaller priority level means a higher priority.
///
/// # Example
///
/// ```
/// use spms_queues::BinomialHeap;
///
/// let mut h = BinomialHeap::new();
/// for x in [5, 1, 4, 2, 3] {
///     h.push(x);
/// }
/// assert_eq!(h.len(), 5);
/// assert_eq!(h.peek(), Some(&1));
/// let sorted: Vec<_> = h.into_sorted_vec();
/// assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
/// ```
#[derive(Clone)]
pub struct BinomialHeap<T: Ord> {
    /// Roots sorted by strictly increasing tree order.
    roots: Vec<Node<T>>,
    len: usize,
}

impl<T: Ord> Default for BinomialHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> BinomialHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        BinomialHeap {
            roots: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements stored in the heap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the heap contains no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.roots.clear();
        self.len = 0;
    }

    /// Inserts an element. `O(log n)` worst case, `O(1)` amortised.
    pub fn push(&mut self, item: T) {
        let singleton = vec![Node::singleton(item)];
        self.roots = Self::merge_root_lists(std::mem::take(&mut self.roots), singleton);
        self.len += 1;
    }

    /// A reference to the smallest element, if any. `O(log n)`.
    pub fn peek(&self) -> Option<&T> {
        self.roots.iter().map(|n| &n.item).min()
    }

    /// Removes and returns the smallest element. `O(log n)`.
    pub fn pop(&mut self) -> Option<T> {
        if self.roots.is_empty() {
            return None;
        }
        let min_idx = self
            .roots
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.item.cmp(&b.item))
            .map(|(i, _)| i)
            .expect("roots is non-empty");
        let node = self.roots.remove(min_idx);
        // The children of a binomial tree are themselves a valid root list
        // (orders 0..order in increasing order).
        self.roots = Self::merge_root_lists(std::mem::take(&mut self.roots), node.children);
        self.len -= 1;
        Some(node.item)
    }

    /// Merges another heap into this one. `O(log n)`.
    pub fn merge(&mut self, other: BinomialHeap<T>) {
        self.len += other.len;
        self.roots = Self::merge_root_lists(std::mem::take(&mut self.roots), other.roots);
    }

    /// Removes the first element equal to `item` (by `Ord` equality),
    /// returning it if found. `O(n)` — provided for the scheduler's rare
    /// "remove a specific job from the ready queue" path (e.g. job abortion).
    pub fn remove_eq(&mut self, item: &T) -> Option<T> {
        // Simplest correct approach: drain and rebuild. The scheduler only
        // uses this on job abortion, never on the hot path measured in
        // Table 1.
        let mut drained = Vec::with_capacity(self.len);
        while let Some(x) = self.pop() {
            drained.push(x);
        }
        let mut removed = None;
        for x in drained {
            if removed.is_none() && &x == item {
                removed = Some(x);
            } else {
                self.push(x);
            }
        }
        removed
    }

    /// Consumes the heap and returns its elements in ascending order.
    pub fn into_sorted_vec(mut self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        while let Some(x) = self.pop() {
            out.push(x);
        }
        out
    }

    /// Iterates over the elements in unspecified order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            stack: self.roots.iter().collect(),
        }
    }

    /// Merges two root lists (each sorted by strictly increasing order) into
    /// one, linking trees of equal order like binary addition with carry.
    fn merge_root_lists(a: Vec<Node<T>>, b: Vec<Node<T>>) -> Vec<Node<T>> {
        // 1. Merge the two sorted lists by order.
        let mut merged = Vec::with_capacity(a.len() + b.len());
        let mut ai = a.into_iter().peekable();
        let mut bi = b.into_iter().peekable();
        loop {
            match (ai.peek(), bi.peek()) {
                (Some(x), Some(y)) => {
                    if x.order <= y.order {
                        merged.push(ai.next().expect("peeked"));
                    } else {
                        merged.push(bi.next().expect("peeked"));
                    }
                }
                (Some(_), None) => merged.push(ai.next().expect("peeked")),
                (None, Some(_)) => merged.push(bi.next().expect("peeked")),
                (None, None) => break,
            }
        }
        // 2. Combine trees of equal order, propagating a carry exactly like
        //    binary addition. The merged list contains at most two trees of
        //    any order (one per input heap), so together with the carry at
        //    most three trees of one order meet; in that case one of them is
        //    emitted and the other two are linked into the carry.
        let mut out: Vec<Node<T>> = Vec::with_capacity(merged.len());
        let mut iter = merged.into_iter().peekable();
        let mut carry: Option<Node<T>> = None;
        loop {
            match (carry.take(), iter.peek()) {
                (None, None) => break,
                (Some(c), None) => {
                    out.push(c);
                }
                (None, Some(_)) => {
                    let first = iter.next().expect("peeked");
                    if iter
                        .peek()
                        .is_some_and(|second| second.order == first.order)
                    {
                        let second = iter.next().expect("peeked");
                        carry = Some(Node::link(first, second));
                    } else {
                        out.push(first);
                    }
                }
                (Some(c), Some(head)) => {
                    debug_assert!(c.order <= head.order, "carry can never lag the input");
                    if c.order < head.order {
                        out.push(c);
                    } else {
                        // Same order: if the input holds a second tree of this
                        // order, emit the carry and link the two input trees;
                        // otherwise link the carry with the single input tree.
                        let first = iter.next().expect("peeked");
                        if iter
                            .peek()
                            .is_some_and(|second| second.order == first.order)
                        {
                            let second = iter.next().expect("peeked");
                            out.push(c);
                            carry = Some(Node::link(first, second));
                        } else {
                            carry = Some(Node::link(c, first));
                        }
                    }
                }
            }
        }
        out
    }

    #[cfg(test)]
    fn assert_invariants(&self) {
        fn check_tree<T: Ord>(node: &Node<T>) -> usize {
            assert_eq!(node.children.len() as u32, node.order);
            let mut size = 1;
            for (i, child) in node.children.iter().enumerate() {
                assert_eq!(child.order as usize, i, "children sorted by order");
                assert!(child.item >= node.item, "min-heap property");
                size += check_tree(child);
            }
            assert_eq!(size, 1usize << node.order);
            size
        }
        let mut total = 0;
        for w in self.roots.windows(2) {
            assert!(w[0].order < w[1].order, "root orders strictly increasing");
        }
        for root in &self.roots {
            total += check_tree(root);
        }
        assert_eq!(total, self.len);
    }
}

impl<T: Ord> FromIterator<T> for BinomialHeap<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut heap = BinomialHeap::new();
        for item in iter {
            heap.push(item);
        }
        heap
    }
}

impl<T: Ord> Extend<T> for BinomialHeap<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T: Ord + fmt::Debug> fmt::Debug for BinomialHeap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BinomialHeap")
            .field("len", &self.len)
            .field(
                "orders",
                &self.roots.iter().map(|r| r.order).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// Iterator over heap elements in unspecified order; created by
/// [`BinomialHeap::iter`].
pub struct Iter<'a, T> {
    stack: Vec<&'a Node<T>>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        let node = self.stack.pop()?;
        self.stack.extend(node.children.iter());
        Some(&node.item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_heap_behaviour() {
        let mut h: BinomialHeap<i32> = BinomialHeap::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.peek(), None);
        assert_eq!(h.pop(), None);
        h.assert_invariants();
    }

    #[test]
    fn push_pop_single() {
        let mut h = BinomialHeap::new();
        h.push(42);
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek(), Some(&42));
        assert_eq!(h.pop(), Some(42));
        assert!(h.is_empty());
    }

    #[test]
    fn pops_in_ascending_order() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut values: Vec<u32> = (0..200).collect();
        values.shuffle(&mut rng);
        let h: BinomialHeap<u32> = values.iter().copied().collect();
        h.assert_invariants();
        let sorted = h.into_sorted_vec();
        let expected: Vec<u32> = (0..200).collect();
        assert_eq!(sorted, expected);
    }

    #[test]
    fn duplicate_elements_are_all_returned() {
        let mut h = BinomialHeap::new();
        h.extend([3, 1, 3, 1, 2]);
        assert_eq!(h.into_sorted_vec(), vec![1, 1, 2, 3, 3]);
    }

    #[test]
    fn merge_combines_both_heaps() {
        let a: BinomialHeap<u32> = [1, 5, 9, 13].into_iter().collect();
        let mut b: BinomialHeap<u32> = [2, 6, 10].into_iter().collect();
        b.merge(a);
        b.assert_invariants();
        assert_eq!(b.len(), 7);
        assert_eq!(b.into_sorted_vec(), vec![1, 2, 5, 6, 9, 10, 13]);
    }

    #[test]
    fn merge_with_empty() {
        let mut a: BinomialHeap<u32> = [3, 1].into_iter().collect();
        a.merge(BinomialHeap::new());
        assert_eq!(a.len(), 2);
        let mut empty: BinomialHeap<u32> = BinomialHeap::new();
        empty.merge(a);
        assert_eq!(empty.into_sorted_vec(), vec![1, 3]);
    }

    #[test]
    fn clear_empties_the_heap() {
        let mut h: BinomialHeap<u32> = (0..17).collect();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn remove_eq_removes_one_instance() {
        let mut h: BinomialHeap<u32> = [4, 2, 4, 7].into_iter().collect();
        assert_eq!(h.remove_eq(&4), Some(4));
        assert_eq!(h.len(), 3);
        assert_eq!(h.remove_eq(&99), None);
        assert_eq!(h.into_sorted_vec(), vec![2, 4, 7]);
    }

    #[test]
    fn iter_visits_every_element() {
        let h: BinomialHeap<u32> = (0..37).collect();
        let mut seen: Vec<u32> = h.iter().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn tuple_keys_model_priority_plus_sequence() {
        let mut h = BinomialHeap::new();
        h.push((1u32, 100u64));
        h.push((0, 200));
        h.push((1, 50));
        assert_eq!(h.pop(), Some((0, 200)));
        assert_eq!(h.pop(), Some((1, 50)));
        assert_eq!(h.pop(), Some((1, 100)));
    }

    #[test]
    fn invariants_hold_during_interleaved_operations() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut h = BinomialHeap::new();
        let mut model = std::collections::BinaryHeap::new();
        for i in 0..500u32 {
            if rng.gen_bool(0.6) || model.is_empty() {
                h.push(i);
                model.push(std::cmp::Reverse(i));
            } else {
                let expected = model.pop().map(|std::cmp::Reverse(v)| v);
                assert_eq!(h.pop(), expected);
            }
            if i % 64 == 0 {
                h.assert_invariants();
            }
        }
        h.assert_invariants();
    }

    #[test]
    fn debug_output_is_nonempty() {
        let h: BinomialHeap<u32> = (0..5).collect();
        let s = format!("{h:?}");
        assert!(s.contains("BinomialHeap"));
        assert!(s.contains("len"));
    }

    proptest! {
        #[test]
        fn prop_heap_sort_matches_std_sort(mut values in proptest::collection::vec(any::<i64>(), 0..300)) {
            let heap: BinomialHeap<i64> = values.iter().copied().collect();
            heap.assert_invariants();
            let heap_sorted = heap.into_sorted_vec();
            values.sort_unstable();
            prop_assert_eq!(heap_sorted, values);
        }

        #[test]
        fn prop_merge_equivalent_to_pushing_all(
            a in proptest::collection::vec(any::<i32>(), 0..120),
            b in proptest::collection::vec(any::<i32>(), 0..120),
        ) {
            let mut merged: BinomialHeap<i32> = a.iter().copied().collect();
            merged.merge(b.iter().copied().collect());
            merged.assert_invariants();
            let mut expected: Vec<i32> = a;
            expected.extend(b);
            expected.sort_unstable();
            prop_assert_eq!(merged.into_sorted_vec(), expected);
        }

        #[test]
        fn prop_interleaved_matches_model(ops in proptest::collection::vec(any::<Option<u16>>(), 0..400)) {
            let mut heap = BinomialHeap::new();
            let mut model = std::collections::BinaryHeap::new();
            for op in ops {
                match op {
                    Some(v) => {
                        heap.push(v);
                        model.push(std::cmp::Reverse(v));
                    }
                    None => {
                        let expected = model.pop().map(|std::cmp::Reverse(v)| v);
                        prop_assert_eq!(heap.pop(), expected);
                    }
                }
                prop_assert_eq!(heap.len(), model.len());
                prop_assert_eq!(heap.peek().copied(), model.peek().map(|std::cmp::Reverse(v)| *v));
            }
            heap.assert_invariants();
        }
    }
}
