//! Exact response-time analysis (RTA) for fixed-priority scheduling on one
//! processor.
//!
//! The classic recurrence (Joseph & Pandya / Audsley et al.):
//!
//! ```text
//! R_i^(k+1) = C_i + B_i + Σ_{j ∈ hp(i)} ⌈ R_i^(k) / T_j ⌉ · C_j
//! ```
//!
//! iterated to a fixed point, starting from `R_i^(0) = C_i + B_i`. The task is
//! schedulable iff the fixed point exists and does not exceed its relative
//! deadline. Constrained deadlines (`D ≤ T`) are supported, which is what the
//! split-task analysis needs: subtasks of a split task receive synthetic
//! deadlines shorter than their period.

use spms_task::{Priority, Task, Time};

/// Result of analysing one processor's task assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAnalysis {
    /// Per-task response times in the same order as the analysed slice, or
    /// `None` for tasks whose recurrence exceeded the deadline.
    pub response_times: Vec<Option<Time>>,
    /// Whether every task met its deadline.
    pub schedulable: bool,
}

/// Computes the worst-case response time of `task` under interference from
/// the higher-priority tasks `hp`, without any blocking term.
///
/// Returns `None` if the recurrence exceeds the task's deadline (the task is
/// unschedulable) or if the processor is overloaded and the recurrence would
/// diverge.
///
/// # Example
///
/// ```
/// use spms_analysis::rta::response_time;
/// use spms_task::{Task, Time};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let hp = Task::new(0, Time::from_millis(1), Time::from_millis(4))?;
/// let low = Task::new(1, Time::from_millis(2), Time::from_millis(10))?;
/// assert_eq!(response_time(&low, &[hp]), Some(Time::from_millis(3)));
/// # Ok(())
/// # }
/// ```
pub fn response_time(task: &Task, hp: &[Task]) -> Option<Time> {
    response_time_with_blocking(task, hp, Time::ZERO)
}

/// Computes the worst-case response time of `task` under interference from
/// `hp` plus a constant blocking term `blocking` (used for the migration
/// synchronisation of split tasks and for non-preemptive sections).
///
/// Returns `None` when the response time exceeds the task's deadline.
pub fn response_time_with_blocking(task: &Task, hp: &[Task], blocking: Time) -> Option<Time> {
    let deadline = task.deadline();
    let base = task.wcet() + blocking;
    if base > deadline {
        return None;
    }
    let mut r = base;
    // The recurrence is monotonically non-decreasing and bounded by the
    // deadline check, so it terminates; cap iterations defensively anyway.
    for _ in 0..10_000 {
        let interference: Time = hp.iter().map(|h| h.wcet() * r.div_ceil(h.period())).sum();
        let next = base + interference;
        if next > deadline {
            return None;
        }
        if next == r {
            return Some(r);
        }
        r = next;
    }
    None
}

/// Splits `tasks` into (higher-priority, lower-or-equal-priority) relative to
/// `priority`, preserving order. Tasks without a priority count as lowest.
pub fn higher_priority_tasks(tasks: &[Task], priority: Priority) -> Vec<Task> {
    tasks
        .iter()
        .filter(|t| t.priority().is_some_and(|p| p.is_higher_than(priority)))
        .cloned()
        .collect()
}

/// Analyses a full per-core assignment: every task is checked against the
/// interference of all strictly higher-priority tasks on the same core.
///
/// Tasks must carry priorities (see
/// [`TaskSet::assign_priorities`](spms_task::TaskSet::assign_priorities));
/// a task without a priority is treated as lowest priority.
pub fn analyse_core(tasks: &[Task]) -> CoreAnalysis {
    let mut response_times = Vec::with_capacity(tasks.len());
    let mut schedulable = true;
    for task in tasks {
        let prio = task.priority().unwrap_or(Priority::LOWEST);
        let hp = higher_priority_tasks(tasks, prio);
        let r = response_time(task, &hp);
        if r.is_none() {
            schedulable = false;
        }
        response_times.push(r);
    }
    CoreAnalysis {
        response_times,
        schedulable,
    }
}

/// Convenience predicate: is the per-core assignment schedulable under exact
/// RTA?
pub fn is_core_schedulable(tasks: &[Task]) -> bool {
    analyse_core(tasks).schedulable
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{PriorityAssignment, TaskSet};

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    fn prioritised(tasks: Vec<Task>) -> Vec<Task> {
        let mut ts: TaskSet = tasks.into_iter().collect();
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        ts.sort_by_priority();
        ts.into_iter().collect()
    }

    #[test]
    fn textbook_example_response_times() {
        // Classic example: C=(1,2,3), T=(4,10,20) — all schedulable under RM.
        let tasks = prioritised(vec![task(0, 1, 4), task(1, 2, 10), task(2, 3, 20)]);
        let analysis = analyse_core(&tasks);
        assert!(analysis.schedulable);
        assert_eq!(analysis.response_times[0], Some(Time::from_micros(1)));
        assert_eq!(analysis.response_times[1], Some(Time::from_micros(3)));
        // τ2: R = 3 + ⌈R/4⌉·1 + ⌈R/10⌉·2 → fixed point at 7.
        assert_eq!(analysis.response_times[2], Some(Time::from_micros(7)));
    }

    #[test]
    fn unschedulable_low_priority_task_detected() {
        // τ0 uses 50%, τ1 uses 60% → τ1 cannot finish.
        let tasks = prioritised(vec![task(0, 5, 10), task(1, 12, 20)]);
        let analysis = analyse_core(&tasks);
        assert!(!analysis.schedulable);
        assert_eq!(analysis.response_times[0], Some(Time::from_micros(5)));
        assert_eq!(analysis.response_times[1], None);
    }

    #[test]
    fn full_utilization_harmonic_set_is_schedulable() {
        // Harmonic periods allow 100% utilization under RM.
        let tasks = prioritised(vec![task(0, 5, 10), task(1, 10, 20)]);
        assert!(is_core_schedulable(&tasks));
    }

    #[test]
    fn blocking_term_increases_response_time() {
        let hp = vec![task(0, 1, 4)];
        let low = task(1, 2, 10);
        let without = response_time_with_blocking(&low, &hp, Time::ZERO).unwrap();
        let with = response_time_with_blocking(&low, &hp, Time::from_micros(2)).unwrap();
        assert!(with > without);
        // Excessive blocking makes it unschedulable.
        assert_eq!(
            response_time_with_blocking(&low, &hp, Time::from_micros(50)),
            None
        );
    }

    #[test]
    fn constrained_deadline_is_respected() {
        let hp = vec![task(0, 2, 8)];
        let constrained = Task::builder(1)
            .wcet(Time::from_micros(3))
            .period(Time::from_micros(20))
            .deadline(Time::from_micros(4))
            .build()
            .unwrap();
        // Response time would be 5 µs, which exceeds the 4 µs deadline.
        assert_eq!(response_time(&constrained, &hp), None);
        let relaxed = constrained.with_deadline(Time::from_micros(10)).unwrap();
        assert_eq!(response_time(&relaxed, &hp), Some(Time::from_micros(5)));
    }

    #[test]
    fn task_alone_on_core_has_response_equal_to_wcet() {
        let t = task(0, 7, 100);
        assert_eq!(response_time(&t, &[]), Some(Time::from_micros(7)));
    }

    #[test]
    fn higher_priority_filter_respects_levels() {
        let mut a = task(0, 1, 10);
        let mut b = task(1, 1, 20);
        let mut c = task(2, 1, 30);
        a.set_priority(Priority::new(0));
        b.set_priority(Priority::new(1));
        c.set_priority(Priority::new(2));
        let all = vec![a, b, c];
        let hp = higher_priority_tasks(&all, Priority::new(2));
        assert_eq!(hp.len(), 2);
        let hp_top = higher_priority_tasks(&all, Priority::new(0));
        assert!(hp_top.is_empty());
    }

    #[test]
    fn tasks_without_priority_are_treated_as_lowest() {
        let mut high = task(0, 1, 4);
        high.set_priority(Priority::new(0));
        let unprioritised = task(1, 2, 10);
        let analysis = analyse_core(&[high, unprioritised]);
        assert!(analysis.schedulable);
        // R = 2 + ⌈R/4⌉·1 → fixed point at 3.
        assert_eq!(analysis.response_times[1], Some(Time::from_micros(3)));
    }

    #[test]
    fn empty_core_is_schedulable() {
        let analysis = analyse_core(&[]);
        assert!(analysis.schedulable);
        assert!(analysis.response_times.is_empty());
    }
}
