//! Exact response-time analysis (RTA) for fixed-priority scheduling on one
//! processor.
//!
//! The classic recurrence (Joseph & Pandya / Audsley et al.):
//!
//! ```text
//! R_i^(k+1) = C_i + B_i + Σ_{j ∈ hp(i)} ⌈ R_i^(k) / T_j ⌉ · C_j
//! ```
//!
//! iterated to a fixed point, starting from `R_i^(0) = C_i + B_i`. The task is
//! schedulable iff the fixed point exists and does not exceed its relative
//! deadline. Constrained deadlines (`D ≤ T`) are supported, which is what the
//! split-task analysis needs: subtasks of a split task receive synthetic
//! deadlines shorter than their period.
//!
//! # Priority ties
//!
//! Two tasks that share a priority level can be dispatched in either order at
//! run time, so [`analyse_core`] counts each as interference on the other —
//! the standard conservative treatment. (An earlier revision counted only
//! *strictly* higher levels, which silently declared two same-level tasks
//! non-interfering and could accept overloaded cores; two tasks without any
//! priority both fall back to [`Priority::LOWEST`] and hit the same case.)
//!
//! # Warm starts
//!
//! The recurrence's fixed point is the *least* fixed point at or above the
//! start value, so iteration may begin from any value known to be a lower
//! bound on the result — e.g. a response time previously converged under a
//! subset of the current interference. [`CachedCoreAnalysis`]
//! (crate::CachedCoreAnalysis) exploits this to re-converge invalidated
//! priority levels in a handful of iterations after an insertion.

use spms_task::{Priority, Task, Time};
use spms_telemetry::{scoped, HotCounter};

/// Defensive bound on fixed-point iterations; see [`cap_exhaustions`].
const MAX_ITERATIONS: usize = 10_000;

/// Number of times the defensive iteration cap was exhausted since process
/// start (or the last [`reset_cap_exhaustions`]).
///
/// The recurrence is monotone and bounded by the deadline check, so under a
/// correct configuration it always converges or provably misses the
/// deadline; exhausting the cap instead means the analysis gave up on a
/// still-undecided recurrence and conservatively reported "unschedulable".
/// A non-zero counter therefore flags configurations (extreme period ratios,
/// enormous deadlines) whose rejections are *time-outs*, not proofs — which
/// would otherwise be indistinguishable from genuine deadline misses.
///
/// This is a thin shim over the telemetry crate's
/// [`HotCounter::RtaCapExhaustions`] scoped counter, which admission
/// engines also fold into their metrics registry per decision (as
/// `spms_mech_rta_cap_exhaustions_total`).
pub fn cap_exhaustions() -> u64 {
    scoped::global_value(HotCounter::RtaCapExhaustions)
}

/// Resets the [`cap_exhaustions`] counter (test support).
pub fn reset_cap_exhaustions() {
    scoped::reset_global(HotCounter::RtaCapExhaustions);
}

/// Number of times the defensive iteration cap was exhausted **on the
/// calling thread** since it started. Experiment drivers snapshot this
/// around each grid cell to report a deterministic `rta_cap_exhaustions`
/// column regardless of the worker-thread count; see [`cap_exhaustions`]
/// for what an exhaustion means. Shim over the scoped counter's
/// thread-local twin.
pub fn thread_cap_exhaustions() -> u64 {
    scoped::thread_value(HotCounter::RtaCapExhaustions)
}

/// The effective priority used by the per-core analysis: the task's assigned
/// priority, or [`Priority::LOWEST`] when none was assigned.
#[inline]
pub fn effective_priority(task: &Task) -> Priority {
    task.priority().unwrap_or(Priority::LOWEST)
}

/// Iterates `r ← base + interference(r)` to its least fixed point at or
/// above `start`, returning `None` once the iterate exceeds `deadline`.
///
/// `warm_start` must be a lower bound on the fixed point (e.g. the fixed
/// point of the same recurrence under a subset of the interference); the
/// monotonicity debug-assertion below catches an invalid warm start, which
/// would otherwise silently converge to a non-least fixed point.
pub(crate) fn converge(
    base: Time,
    deadline: Time,
    warm_start: Option<Time>,
    mut interference: impl FnMut(Time) -> Time,
) -> Option<Time> {
    if base > deadline {
        return None;
    }
    let mut r = warm_start.map_or(base, |w| w.max(base));
    for _ in 0..MAX_ITERATIONS {
        let next = base + interference(r);
        if next > deadline {
            return None;
        }
        debug_assert!(
            next >= r,
            "RTA recurrence decreased ({next:?} < {r:?}): warm start above the fixed point"
        );
        if next == r {
            return Some(r);
        }
        r = next;
    }
    // The cap is a time-out, not a proof: make it visible instead of
    // blending into ordinary deadline misses. Library code never writes to
    // stderr behind the CLI's back — the warning goes to the process-global
    // once-per-run store, which the CLI drains and prints after the run.
    scoped::bump(HotCounter::RtaCapExhaustions);
    spms_telemetry::warn_once(
        "rta_iteration_cap",
        format!(
            "spms-analysis: RTA iteration cap ({MAX_ITERATIONS}) exhausted without convergence; \
             reporting unschedulable (further exhaustions counted in rta::cap_exhaustions())"
        ),
    );
    None
}

/// Computes the worst-case response time of `task` under interference from
/// the higher-priority tasks `hp`, without any blocking term.
///
/// Returns `None` if the recurrence exceeds the task's deadline (the task is
/// unschedulable) or if the processor is overloaded and the recurrence would
/// diverge.
///
/// # Example
///
/// ```
/// use spms_analysis::rta::response_time;
/// use spms_task::{Task, Time};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let hp = Task::new(0, Time::from_millis(1), Time::from_millis(4))?;
/// let low = Task::new(1, Time::from_millis(2), Time::from_millis(10))?;
/// assert_eq!(response_time(&low, &[hp]), Some(Time::from_millis(3)));
/// # Ok(())
/// # }
/// ```
pub fn response_time(task: &Task, hp: &[Task]) -> Option<Time> {
    response_time_with_blocking(task, hp, Time::ZERO)
}

/// Computes the worst-case response time of `task` under interference from
/// `hp` plus a constant blocking term `blocking` (used for the migration
/// synchronisation of split tasks and for non-preemptive sections).
///
/// Returns `None` when the response time exceeds the task's deadline.
pub fn response_time_with_blocking(task: &Task, hp: &[Task], blocking: Time) -> Option<Time> {
    converge(task.wcet() + blocking, task.deadline(), None, |r| {
        hp.iter().map(|h| h.wcet() * r.div_ceil(h.period())).sum()
    })
}

/// Splits `tasks` into (higher-priority, lower-or-equal-priority) relative to
/// `priority`, preserving order. Tasks without a priority count as lowest.
///
/// Note that [`analyse_core`] does *not* use this filter for its interference
/// sets: tasks *at* a given level also interfere with each other there (see
/// the [module docs](self) on priority ties).
pub fn higher_priority_tasks(tasks: &[Task], priority: Priority) -> Vec<Task> {
    tasks
        .iter()
        .filter(|t| t.priority().is_some_and(|p| p.is_higher_than(priority)))
        .cloned()
        .collect()
}

/// Analyses a full per-core assignment: every task is checked against the
/// interference of all higher-priority tasks *and all other tasks at its own
/// priority level* on the same core (same-level tasks can be dispatched in
/// either order, so each must tolerate the other; see the
/// [module docs](self)).
///
/// Tasks must carry priorities (see
/// [`TaskSet::assign_priorities`](spms_task::TaskSet::assign_priorities));
/// a task without a priority is treated as lowest priority.
pub fn analyse_core(tasks: &[Task]) -> CoreAnalysis {
    let mut response_times = Vec::with_capacity(tasks.len());
    let mut schedulable = true;
    for (i, task) in tasks.iter().enumerate() {
        let prio = effective_priority(task);
        let r = converge(task.wcet(), task.deadline(), None, |r| {
            tasks
                .iter()
                .enumerate()
                .filter(|(j, other)| *j != i && !effective_priority(other).is_lower_than(prio))
                .map(|(_, other)| other.wcet() * r.div_ceil(other.period()))
                .sum()
        });
        if r.is_none() {
            schedulable = false;
        }
        response_times.push(r);
    }
    CoreAnalysis {
        response_times,
        schedulable,
    }
}

/// Result of analysing one processor's task assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreAnalysis {
    /// Per-task response times in the same order as the analysed slice, or
    /// `None` for tasks whose recurrence exceeded the deadline.
    pub response_times: Vec<Option<Time>>,
    /// Whether every task met its deadline.
    pub schedulable: bool,
}

/// Convenience predicate: is the per-core assignment schedulable under exact
/// RTA?
pub fn is_core_schedulable(tasks: &[Task]) -> bool {
    analyse_core(tasks).schedulable
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{PriorityAssignment, TaskSet};

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    fn prioritised(tasks: Vec<Task>) -> Vec<Task> {
        let mut ts: TaskSet = tasks.into_iter().collect();
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        ts.sort_by_priority();
        ts.into_iter().collect()
    }

    #[test]
    fn textbook_example_response_times() {
        // Classic example: C=(1,2,3), T=(4,10,20) — all schedulable under RM.
        let tasks = prioritised(vec![task(0, 1, 4), task(1, 2, 10), task(2, 3, 20)]);
        let analysis = analyse_core(&tasks);
        assert!(analysis.schedulable);
        assert_eq!(analysis.response_times[0], Some(Time::from_micros(1)));
        assert_eq!(analysis.response_times[1], Some(Time::from_micros(3)));
        // τ2: R = 3 + ⌈R/4⌉·1 + ⌈R/10⌉·2 → fixed point at 7.
        assert_eq!(analysis.response_times[2], Some(Time::from_micros(7)));
    }

    #[test]
    fn unschedulable_low_priority_task_detected() {
        // τ0 uses 50%, τ1 uses 60% → τ1 cannot finish.
        let tasks = prioritised(vec![task(0, 5, 10), task(1, 12, 20)]);
        let analysis = analyse_core(&tasks);
        assert!(!analysis.schedulable);
        assert_eq!(analysis.response_times[0], Some(Time::from_micros(5)));
        assert_eq!(analysis.response_times[1], None);
    }

    #[test]
    fn full_utilization_harmonic_set_is_schedulable() {
        // Harmonic periods allow 100% utilization under RM.
        let tasks = prioritised(vec![task(0, 5, 10), task(1, 10, 20)]);
        assert!(is_core_schedulable(&tasks));
    }

    #[test]
    fn blocking_term_increases_response_time() {
        let hp = vec![task(0, 1, 4)];
        let low = task(1, 2, 10);
        let without = response_time_with_blocking(&low, &hp, Time::ZERO).unwrap();
        let with = response_time_with_blocking(&low, &hp, Time::from_micros(2)).unwrap();
        assert!(with > without);
        // Excessive blocking makes it unschedulable.
        assert_eq!(
            response_time_with_blocking(&low, &hp, Time::from_micros(50)),
            None
        );
    }

    #[test]
    fn constrained_deadline_is_respected() {
        let hp = vec![task(0, 2, 8)];
        let constrained = Task::builder(1)
            .wcet(Time::from_micros(3))
            .period(Time::from_micros(20))
            .deadline(Time::from_micros(4))
            .build()
            .unwrap();
        // Response time would be 5 µs, which exceeds the 4 µs deadline.
        assert_eq!(response_time(&constrained, &hp), None);
        let relaxed = constrained.with_deadline(Time::from_micros(10)).unwrap();
        assert_eq!(response_time(&relaxed, &hp), Some(Time::from_micros(5)));
    }

    #[test]
    fn task_alone_on_core_has_response_equal_to_wcet() {
        let t = task(0, 7, 100);
        assert_eq!(response_time(&t, &[]), Some(Time::from_micros(7)));
    }

    #[test]
    fn higher_priority_filter_respects_levels() {
        let mut a = task(0, 1, 10);
        let mut b = task(1, 1, 20);
        let mut c = task(2, 1, 30);
        a.set_priority(Priority::new(0));
        b.set_priority(Priority::new(1));
        c.set_priority(Priority::new(2));
        let all = vec![a, b, c];
        let hp = higher_priority_tasks(&all, Priority::new(2));
        assert_eq!(hp.len(), 2);
        let hp_top = higher_priority_tasks(&all, Priority::new(0));
        assert!(hp_top.is_empty());
    }

    #[test]
    fn tasks_without_priority_are_treated_as_lowest() {
        let mut high = task(0, 1, 4);
        high.set_priority(Priority::new(0));
        let unprioritised = task(1, 2, 10);
        let analysis = analyse_core(&[high, unprioritised]);
        assert!(analysis.schedulable);
        // R = 2 + ⌈R/4⌉·1 → fixed point at 3.
        assert_eq!(analysis.response_times[1], Some(Time::from_micros(3)));
    }

    #[test]
    fn two_unprioritised_overloading_tasks_are_rejected() {
        // Regression for the priority-tie optimism bug: both tasks default
        // to `Priority::LOWEST`, so the old strictly-higher filter counted
        // zero interference for each and accepted a 120%-utilized core.
        let a = task(0, 6, 10);
        let b = task(1, 6, 10);
        let analysis = analyse_core(&[a, b]);
        assert!(!analysis.schedulable);
        assert_eq!(analysis.response_times, vec![None, None]);
    }

    #[test]
    fn same_level_tasks_count_each_other_as_interference() {
        let mut a = task(0, 2, 10);
        let mut b = task(1, 3, 10);
        a.set_priority(Priority::new(5));
        b.set_priority(Priority::new(5));
        let analysis = analyse_core(&[a.clone(), b.clone()]);
        assert!(analysis.schedulable);
        // Each tolerates one job of the other: R_a = 2 + 3, R_b = 3 + 2.
        assert_eq!(analysis.response_times[0], Some(Time::from_micros(5)));
        assert_eq!(analysis.response_times[1], Some(Time::from_micros(5)));
        // An overloaded pair at one level is rejected.
        let heavy_a = task(0, 6, 10);
        let heavy_b = task(1, 6, 10);
        let mut ha = heavy_a;
        let mut hb = heavy_b;
        ha.set_priority(Priority::new(5));
        hb.set_priority(Priority::new(5));
        assert!(!is_core_schedulable(&[ha, hb]));
    }

    #[test]
    fn iteration_cap_exhaustion_is_counted_not_silent() {
        // Two 50%-utilization 2 ns interferers make the recurrence crawl
        // upward ~2 ns per iteration; with a 1 ms deadline it can neither
        // converge nor exceed the deadline within the cap.
        reset_cap_exhaustions();
        assert_eq!(cap_exhaustions(), 0);
        let hp = vec![
            Task::new(0, Time::from_nanos(1), Time::from_nanos(2)).unwrap(),
            Task::new(1, Time::from_nanos(1), Time::from_nanos(2)).unwrap(),
        ];
        let victim = Task::new(2, Time::from_nanos(1), Time::from_millis(1)).unwrap();
        assert_eq!(response_time(&victim, &hp), None);
        assert_eq!(cap_exhaustions(), 1);

        // The exhaustion also lands in the once-per-run warning store
        // (instead of an eprintln behind the CLI's back); the stored
        // message names the cap.
        let warned: Vec<_> = spms_telemetry::drain_warnings()
            .into_iter()
            .filter(|w| w.key == "rta_iteration_cap")
            .collect();
        assert_eq!(warned.len(), 1);
        assert!(warned[0].message.contains("iteration cap"));

        // Thread-local twin, exercised in the same test function so its
        // spawned thread's *global* increment cannot race the exact
        // global-count assertions above (cargo runs separate #[test]s
        // concurrently in one process): a fresh thread starts at zero,
        // counts its own exhaustion, and leaves this thread's counter
        // untouched.
        let here_before = thread_cap_exhaustions();
        std::thread::spawn(move || {
            assert_eq!(thread_cap_exhaustions(), 0);
            assert_eq!(response_time(&victim, &hp), None);
            assert_eq!(thread_cap_exhaustions(), 1);
        })
        .join()
        .unwrap();
        assert_eq!(thread_cap_exhaustions(), here_before);

        reset_cap_exhaustions();
        assert_eq!(cap_exhaustions(), 0);
    }

    #[test]
    fn warm_start_converges_to_the_same_fixed_point() {
        // The fixed point from a valid lower-bound warm start must equal the
        // cold-start fixed point bit-for-bit.
        let hp = [task(0, 1, 4), task(1, 2, 10)];
        let low = task(2, 3, 20);
        let cold = response_time(&low, &hp).unwrap();
        for warm_ns in [0, 1, cold.as_nanos() / 2, cold.as_nanos()] {
            let warmed = converge(
                low.wcet(),
                low.deadline(),
                Some(Time::from_nanos(warm_ns)),
                |r| hp.iter().map(|h| h.wcet() * r.div_ceil(h.period())).sum(),
            );
            assert_eq!(warmed, Some(cold));
        }
    }

    #[test]
    fn empty_core_is_schedulable() {
        let analysis = analyse_core(&[]);
        assert!(analysis.schedulable);
        assert!(analysis.response_times.is_empty());
    }
}
