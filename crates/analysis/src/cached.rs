//! Incremental per-core response-time analysis.
//!
//! [`CachedCoreAnalysis`] memoizes the converged response time of every task
//! on one core and keeps the memo coherent under mutation, exploiting two
//! structural facts of the fixed-priority recurrence:
//!
//! * a task's response time depends only on its own `(C, D)` and on the
//!   `(C, T)` multiset of the tasks at higher-or-equal priority — so a
//!   mutation at priority level `p` invalidates **only the levels at or
//!   below `p`**; everything above keeps its converged fixed point;
//! * the fixed point is the *least* fixed point, so a response time
//!   converged under a subset of the current interference is a valid **warm
//!   start**: after an insertion, each invalidated level re-converges from
//!   its previous value in a handful of iterations instead of from `C_i`.
//!
//! The cache is *always converged*: [`insert`](CachedCoreAnalysis::insert),
//! [`remove`](CachedCoreAnalysis::remove) and
//! [`refresh`](CachedCoreAnalysis::refresh) re-establish every response time
//! eagerly, so the read-side — [`is_schedulable`], [`analysis`] and the
//! non-mutating what-if probes ([`accepts_candidate`],
//! [`accepts_prioritised`]) — works on `&self` and allocates nothing.
//! Results are bit-identical to a from-scratch [`rta::analyse_core`] over
//! the same tasks (property-tested in `tests/cache_equivalence.rs`).
//!
//! Task ids must be unique within one core — every partitioner in the
//! workspace guarantees this (a split chain places at most one piece of a
//! parent per core).
//!
//! [`is_schedulable`]: CachedCoreAnalysis::is_schedulable
//! [`analysis`]: CachedCoreAnalysis::analysis
//! [`accepts_candidate`]: CachedCoreAnalysis::accepts_candidate
//! [`accepts_prioritised`]: CachedCoreAnalysis::accepts_prioritised

use spms_task::{Priority, Task, TaskId, Time};

use crate::rta::{self, CoreAnalysis};

/// One memoized task on the core: the analysis task plus its converged
/// worst-case response time (`None` = proven to miss its deadline).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    task: Task,
    response: Option<Time>,
}

/// Canonical cache order: highest priority first, ties broken by task id so
/// the order is total (ids are unique within a core).
fn sort_key(task: &Task) -> (u32, TaskId) {
    (rta::effective_priority(task).level(), task.id())
}

/// The interference each entry contributes to a lower-or-equal level:
/// `(C, T)` — all that the recurrence reads from an interferer.
fn interference_term(task: &Task, r: Time) -> Time {
    task.wcet() * r.div_ceil(task.period())
}

/// Memoized exact RTA for one core. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CachedCoreAnalysis {
    /// Sorted by [`sort_key`]; every `response` is converged (the cache has
    /// no stale state between method calls).
    entries: Vec<Entry>,
    /// Set by the fault-injection hook
    /// [`corrupt_first_response`](Self::corrupt_first_response): at least
    /// one memoized response is known-divergent from scratch, so the
    /// debug-build convergence guard must not fire until a self-audit
    /// ([`audit`](Self::audit)) repairs or acquits the core.
    corrupted: bool,
}

impl CachedCoreAnalysis {
    /// An empty core.
    pub fn new() -> Self {
        CachedCoreAnalysis::default()
    }

    /// Builds a converged cache for an existing assignment (cold start).
    pub fn from_tasks(tasks: &[Task]) -> Self {
        let mut cache = CachedCoreAnalysis::new();
        cache.refresh(tasks);
        cache
    }

    /// Number of tasks on the core.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the core is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached tasks in canonical (priority, id) order.
    pub fn tasks(&self) -> impl Iterator<Item = &Task> {
        self.entries.iter().map(|e| &e.task)
    }

    /// The cached response time of the task with `id`: `None` when the task
    /// is not on this core, `Some(None)` when it provably misses its
    /// deadline.
    pub fn response_of(&self, id: TaskId) -> Option<Option<Time>> {
        self.entries
            .iter()
            .find(|e| e.task.id() == id)
            .map(|e| e.response)
    }

    /// The cached slack (`deadline − response`) of the task with `id`:
    /// `None` when the task is not on this core, `Some(None)` when it
    /// provably misses its deadline (negative slack). Free to read — the
    /// cache is always converged — which is what makes slack-guided repair
    /// ranking affordable on the admission hot path.
    pub fn slack_of(&self, id: TaskId) -> Option<Option<Time>> {
        self.entries.iter().find(|e| e.task.id() == id).map(|e| {
            e.response
                .map(|response| e.task.deadline().saturating_sub(response))
        })
    }

    /// The full analysis in canonical order — bit-identical to
    /// [`rta::analyse_core`] over [`tasks`](Self::tasks).
    pub fn analysis(&self) -> CoreAnalysis {
        CoreAnalysis {
            response_times: self.entries.iter().map(|e| e.response).collect(),
            schedulable: self.is_schedulable(),
        }
    }

    /// Whether every task on the core meets its deadline.
    pub fn is_schedulable(&self) -> bool {
        self.entries.iter().all(|e| e.response.is_some())
    }

    /// Adds `task` to the core and re-converges exactly the priority levels
    /// at or below the insertion point. Levels above keep their fixed
    /// points; invalidated levels warm-start from their previous (now
    /// lower-bound) response times.
    pub fn insert(&mut self, task: Task) {
        debug_assert!(
            self.entries.iter().all(|e| e.task.id() != task.id()),
            "duplicate task id {} on one core",
            task.id()
        );
        let key = sort_key(&task);
        let pos = self.entries.partition_point(|e| sort_key(&e.task) < key);
        self.entries.insert(
            pos,
            Entry {
                task,
                response: None,
            },
        );
        // Invalidate from the first entry *at* the inserted level: same-level
        // peers gain the newcomer's interference too, and some sort before
        // `pos` (smaller id).
        let first_affected = self
            .entries
            .partition_point(|e| sort_key(&e.task).0 < key.0);
        self.recompute_from(first_affected, true);
    }

    /// Removes the task with `id`, re-converging the levels at or below it
    /// (cold: removal shrinks interference, so previous responses are upper
    /// bounds and unusable as warm starts). Returns the removed task, or
    /// `None` when no task with `id` is on the core.
    pub fn remove(&mut self, id: TaskId) -> Option<Task> {
        let pos = self.entries.iter().position(|e| e.task.id() == id)?;
        let removed = self.entries.remove(pos);
        let level = sort_key(&removed.task).0;
        let first_affected = self
            .entries
            .partition_point(|e| sort_key(&e.task).0 < level);
        self.recompute_from(first_affected, false);
        Some(removed.task)
    }

    /// Resynchronizes the cache to an arbitrary new assignment (the
    /// [`Partition`](../spms_core) calls this after a priority
    /// renormalization). A per-task diff decides how much survives:
    ///
    /// * same `(C, D)` and identical interferer multiset → the old fixed
    ///   point is **reused** outright (renormalization shifts numeric
    ///   levels but preserves relative order, so this is the common case
    ///   for every level above a mutation);
    /// * same `(C, D)` and the old interferer multiset is a subset of the
    ///   new one → the old response is a valid **warm start**;
    /// * anything else → cold recompute.
    pub fn refresh(&mut self, tasks: &[Task]) {
        let _ = self.refresh_general(tasks);
        self.debug_assert_converged();
    }

    /// Runs the refresh flavour selected by `mode` and returns a compact
    /// [`RefreshUndo`] that restores the pre-refresh state bit-identically
    /// via [`apply_refresh_undo`](Self::apply_refresh_undo).
    ///
    /// The undo record holds only the *differences* — entries the refresh
    /// dropped, ids it added, and `(priority, response)` pairs of surviving
    /// entries it changed — so a renormalization that shifts nothing (the
    /// common steady-state case) records nothing, and one that shifts `k`
    /// levels records `O(k)`, never a clone of the whole core. The diff is
    /// computed against the old entry vector the refresh already detaches
    /// internally, so building it performs no extra clones either.
    pub fn refresh_with_undo(&mut self, tasks: &[Task], mode: RefreshMode) -> RefreshUndo {
        let old = match mode {
            RefreshMode::General => self.refresh_general(tasks),
            RefreshMode::AfterInsert => self.refresh_after_insert_inner(tasks),
            RefreshMode::AfterRemove => self.refresh_after_remove_inner(tasks),
        };
        let undo = RefreshUndo::diff(old, &self.entries);
        self.debug_assert_converged();
        undo
    }

    /// Restores the state a [`refresh_with_undo`](Self::refresh_with_undo)
    /// call destroyed. Must be applied against the exact post-refresh state
    /// the undo was recorded for (journal rewinds guarantee this by undoing
    /// in LIFO order).
    pub fn apply_refresh_undo(&mut self, undo: RefreshUndo) {
        self.entries.retain(|e| !undo.added.contains(&e.task.id()));
        for delta in undo.changed {
            let entry = self
                .entries
                .iter_mut()
                .find(|e| e.task.id() == delta.id)
                .expect("refresh undo names a task no longer on the core");
            match delta.priority {
                Some(priority) => entry.task.set_priority(priority),
                None => entry.task.clear_priority(),
            }
            entry.response = delta.response;
        }
        for (task, response) in undo.removed {
            self.entries.push(Entry { task, response });
        }
        self.entries.sort_by_key(|e| sort_key(&e.task));
        self.debug_assert_converged();
    }

    /// [`refresh`](Self::refresh) specialised for a **pure insertion**: the
    /// previous assignment plus one or more new tasks, with the surviving
    /// tasks' parameters unchanged and their relative priority order
    /// preserved (numeric levels may shift, as a whole-task renormalization
    /// does). Every surviving task warm-starts from its previous response —
    /// an unchanged level re-converges in a single interference sum — and
    /// only the new tasks run cold. No interferer profiles are built.
    pub fn refresh_after_insert(&mut self, tasks: &[Task]) {
        let _ = self.refresh_after_insert_inner(tasks);
        self.debug_assert_converged();
    }

    /// [`refresh_after_insert`](Self::refresh_after_insert) body; returns
    /// the detached pre-refresh entries so
    /// [`refresh_with_undo`](Self::refresh_with_undo) can diff them.
    fn refresh_after_insert_inner(&mut self, tasks: &[Task]) -> Vec<Entry> {
        let old = std::mem::take(&mut self.entries);
        self.entries = tasks
            .iter()
            .map(|task| Entry {
                task: task.clone(),
                response: None,
            })
            .collect();
        self.entries.sort_by_key(|e| sort_key(&e.task));
        for i in 0..self.entries.len() {
            let warm = old
                .iter()
                .find(|e| e.task.id() == self.entries[i].task.id())
                .and_then(|prev| {
                    debug_assert_eq!(prev.task.wcet(), self.entries[i].task.wcet());
                    debug_assert_eq!(prev.task.deadline(), self.entries[i].task.deadline());
                    prev.response
                });
            let response = self.compute(i, warm);
            self.entries[i].response = response;
        }
        old
    }

    /// [`refresh`](Self::refresh) specialised for a **pure removal**: the
    /// previous assignment minus one or more tasks, surviving parameters
    /// unchanged and relative order preserved. Survivors ranked strictly
    /// above every removed task keep their fixed points outright; the rest
    /// lost interference and re-converge cold.
    pub fn refresh_after_remove(&mut self, tasks: &[Task]) {
        let _ = self.refresh_after_remove_inner(tasks);
        self.debug_assert_converged();
    }

    /// [`refresh_after_remove`](Self::refresh_after_remove) body; returns
    /// the detached pre-refresh entries so
    /// [`refresh_with_undo`](Self::refresh_with_undo) can diff them.
    fn refresh_after_remove_inner(&mut self, tasks: &[Task]) -> Vec<Entry> {
        let old = std::mem::take(&mut self.entries);
        self.entries = tasks
            .iter()
            .map(|task| Entry {
                task: task.clone(),
                response: None,
            })
            .collect();
        self.entries.sort_by_key(|e| sort_key(&e.task));
        let removed_min_level = old
            .iter()
            .filter(|e| !self.entries.iter().any(|n| n.task.id() == e.task.id()))
            .map(|e| sort_key(&e.task).0)
            .min();
        for i in 0..self.entries.len() {
            let prev = old
                .iter()
                .find(|e| e.task.id() == self.entries[i].task.id());
            let response = match (prev, removed_min_level) {
                // Ranked strictly above everything removed: untouched.
                (Some(prev), Some(min_level)) if sort_key(&prev.task).0 < min_level => {
                    prev.response
                }
                (Some(prev), None) => prev.response,
                _ => self.compute(i, None),
            };
            self.entries[i].response = response;
        }
        old
    }

    /// Fault-injection hook: nudges the first strictly-positive memoized
    /// response time *down* by one nanosecond and marks the core corrupted,
    /// so a later [`audit`](Self::audit) provably detects the divergence.
    ///
    /// The downward direction is deliberate. Memoized responses double as
    /// warm starts for the monotone RTA recurrence, and a warm start *below*
    /// the least fixed point still converges to the true fixed point — so a
    /// corrupted-but-unaudited core can mis-rank repair victims (slack looks
    /// one nanosecond larger) but can never admit an unschedulable task.
    /// Returns `false` (and flips nothing) when no entry has a positive
    /// converged response.
    pub fn corrupt_first_response(&mut self) -> bool {
        let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.response.is_some_and(|r| r > Time::ZERO))
        else {
            return false;
        };
        let flipped = entry
            .response
            .expect("filtered on is_some above")
            .saturating_sub(Time::from_nanos(1));
        entry.response = Some(flipped);
        self.corrupted = true;
        true
    }

    /// Whether the fault-injection hook has flipped a response on this core
    /// since the last repairing or acquitting [`audit`](Self::audit).
    pub fn corruption_marked(&self) -> bool {
        self.corrupted
    }

    /// Self-audit: re-derives the core's analysis from scratch and compares
    /// it against the memo. Returns `true` when the memo is bit-identical
    /// (the corruption mark, if any, is cleared — the core is acquitted);
    /// on a mismatch the whole memo is quarantined and rebuilt from scratch
    /// and `false` is returned.
    pub fn audit(&mut self) -> bool {
        let tasks: Vec<Task> = self.tasks().cloned().collect();
        if self.analysis() == rta::analyse_core(&tasks) {
            self.corrupted = false;
            true
        } else {
            *self = CachedCoreAnalysis::from_tasks(&tasks);
            false
        }
    }

    /// Debug-build guard: after any refresh the cache must be bit-identical
    /// to a from-scratch analysis (the property tests run in debug mode, so
    /// an unsound reuse or warm start fails loudly there). Suspended while
    /// an injected corruption is pending its audit — the divergence is the
    /// point of the fault, not an incremental-maintenance bug.
    fn debug_assert_converged(&self) {
        #[cfg(debug_assertions)]
        {
            if self.corrupted {
                return;
            }
            let tasks: Vec<Task> = self.tasks().cloned().collect();
            debug_assert_eq!(
                self.analysis(),
                rta::analyse_core(&tasks),
                "cached analysis diverged from scratch"
            );
        }
    }

    /// The general diff-based resynchronization behind
    /// [`refresh`](Self::refresh); returns the detached pre-refresh entries
    /// so [`refresh_with_undo`](Self::refresh_with_undo) can diff them.
    fn refresh_general(&mut self, tasks: &[Task]) -> Vec<Entry> {
        let old = std::mem::take(&mut self.entries);
        self.entries = tasks
            .iter()
            .map(|task| Entry {
                task: task.clone(),
                response: None,
            })
            .collect();
        self.entries.sort_by_key(|e| sort_key(&e.task));

        let old_tasks: Vec<&Task> = old.iter().map(|e| &e.task).collect();
        let new_tasks: Vec<&Task> = self.entries.iter().map(|e| &e.task).collect();
        let plans: Vec<Option<ReusePlan>> = self
            .entries
            .iter()
            .map(|entry| {
                let prev = old.iter().find(|e| e.task.id() == entry.task.id())?;
                diff_entry(prev, &entry.task, &old_tasks, &new_tasks)
            })
            .collect();
        for (i, plan) in plans.into_iter().enumerate() {
            let response = match plan {
                Some(ReusePlan::Reuse(response)) => response,
                Some(ReusePlan::WarmStart(warm)) => self.compute(i, Some(warm)),
                None => self.compute(i, None),
            };
            self.entries[i].response = response;
        }
        old
    }

    /// Non-mutating what-if probe: would the core stay schedulable with
    /// `candidate` added?
    ///
    /// The caller describes where the candidate would rank: `outranked(t)`
    /// must hold exactly for the entries the candidate would sit strictly
    /// above, and `peer(t)` exactly for entries that would share its level
    /// (mutual interference); the two must be disjoint, and must be
    /// consistent with the priorities the commit path will actually assign
    /// — with that, the probe's verdict is bit-identical to re-running
    /// [`rta::analyse_core`] over the committed core.
    ///
    /// Entries the candidate outranks re-converge from their cached
    /// responses (warm starts); entries above it are not re-analysed at
    /// all. Nothing is cloned or allocated.
    pub fn accepts_candidate(
        &self,
        candidate: &Task,
        outranked: impl Fn(&Task) -> bool,
        peer: impl Fn(&Task) -> bool,
    ) -> bool {
        self.probe_candidate(candidate, outranked, peer).is_none()
    }

    /// [`accepts_candidate`](Self::accepts_candidate) with **blocker
    /// localization**: `None` means the core accepts the candidate;
    /// `Some(id)` names the first task whose slack goes negative — the
    /// candidate itself when its own recurrence exceeds its deadline, or
    /// the first cached entry (in canonical priority order) that a
    /// from-scratch analysis of the committed core would prove to miss.
    /// Slack-guided repair uses the blocker to prune victims whose eviction
    /// provably cannot unblock the arrival (a victim ranked strictly below
    /// the blocker never relieves it).
    pub fn probe_candidate(
        &self,
        candidate: &Task,
        outranked: impl Fn(&Task) -> bool,
        peer: impl Fn(&Task) -> bool,
    ) -> Option<TaskId> {
        // Extra interference never repairs an already-doomed task.
        if let Some(doomed) = self.entries.iter().find(|e| e.response.is_none()) {
            return Some(doomed.task.id());
        }
        // The candidate sees everything it does not outrank (peers included).
        let candidate_response = rta::converge(candidate.wcet(), candidate.deadline(), None, |r| {
            self.entries
                .iter()
                .filter(|e| !outranked(&e.task))
                .map(|e| interference_term(&e.task, r))
                .sum()
        });
        if candidate_response.is_none() {
            return Some(candidate.id());
        }
        // Entries at or below the candidate gain its interference; their
        // interference among existing entries is unchanged, so their cached
        // responses are valid warm starts.
        for (i, entry) in self.entries.iter().enumerate() {
            if !outranked(&entry.task) && !peer(&entry.task) {
                continue;
            }
            let survived = rta::converge(
                entry.task.wcet(),
                entry.task.deadline(),
                entry.response,
                |r| self.own_interference(i, r) + interference_term(candidate, r),
            );
            if survived.is_none() {
                return Some(entry.task.id());
            }
        }
        None
    }

    /// What-if probe for one repair eviction: would the core accept
    /// `candidate` with the entry `removed` evicted first? Nothing is
    /// cloned; the verdict is bit-identical to re-running
    /// [`rta::analyse_core`] over the committed (evicted + admitted) core.
    ///
    /// The `outranked` / `peer` predicates describe the candidate's rank
    /// exactly as in [`accepts_candidate`](Self::accepts_candidate) (they
    /// are only consulted for surviving entries). Entries above both the
    /// candidate and the removed entry keep their memoized responses;
    /// entries that only gain the candidate's interference re-converge from
    /// warm starts; entries that lose the removed entry's interference
    /// re-converge cold (their cached responses are upper bounds there).
    /// Falls back to [`accepts_candidate`](Self::accepts_candidate) when
    /// `removed` is not on this core.
    pub fn accepts_candidate_without(
        &self,
        candidate: &Task,
        removed: TaskId,
        outranked: impl Fn(&Task) -> bool,
        peer: impl Fn(&Task) -> bool,
    ) -> bool {
        let Some(removed_idx) = self.entries.iter().position(|e| e.task.id() == removed) else {
            return self.accepts_candidate(candidate, outranked, peer);
        };
        let removed_level = sort_key(&self.entries[removed_idx].task).0;
        // The candidate sees every *surviving* entry it does not outrank.
        let candidate_response = rta::converge(candidate.wcet(), candidate.deadline(), None, |r| {
            self.entries
                .iter()
                .enumerate()
                .filter(|(j, e)| *j != removed_idx && !outranked(&e.task))
                .map(|(_, e)| interference_term(&e.task, r))
                .sum()
        });
        if candidate_response.is_none() {
            return false;
        }
        for (i, entry) in self.entries.iter().enumerate() {
            if i == removed_idx {
                continue;
            }
            let gains = outranked(&entry.task) || peer(&entry.task);
            // The removed entry interfered with everything at or below its
            // level (peers included): those entries shrink and must run
            // cold — a cached response is an upper bound after a removal.
            let loses = sort_key(&entry.task).0 >= removed_level;
            let response = match (gains, loses) {
                // Unaffected: above both the candidate and the removal.
                (false, false) => entry.response,
                // Only gains the candidate: the cached response is a valid
                // warm start.
                (true, false) => rta::converge(
                    entry.task.wcet(),
                    entry.task.deadline(),
                    entry.response,
                    |r| {
                        self.interference_without(i, removed_idx, r)
                            + interference_term(candidate, r)
                    },
                ),
                (gains, true) => {
                    rta::converge(entry.task.wcet(), entry.task.deadline(), None, |r| {
                        let candidate_term = if gains {
                            interference_term(candidate, r)
                        } else {
                            Time::ZERO
                        };
                        self.interference_without(i, removed_idx, r) + candidate_term
                    })
                }
            };
            if response.is_none() {
                return false;
            }
        }
        true
    }

    /// [`accepts_candidate`](Self::accepts_candidate) for a candidate whose
    /// priority is already assigned (split pieces, explicitly-prioritised
    /// whole tasks): it outranks strictly lower levels and peers with its
    /// own level.
    pub fn accepts_prioritised(&self, candidate: &Task) -> bool {
        let level = rta::effective_priority(candidate).level();
        self.accepts_candidate(
            candidate,
            |t| rta::effective_priority(t).level() > level,
            |t| rta::effective_priority(t).level() == level,
        )
    }

    /// [`accepts_prioritised`](Self::accepts_prioritised) with a
    /// **cross-probe warm start**: the split-budget binary search probes
    /// this core repeatedly with the same template at growing WCETs, and
    /// each accepted probe's converged response times are valid lower
    /// bounds for every later probe with a larger WCET (interference only
    /// grows with the candidate's `C`). `warmth` carries that state between
    /// probes; the verdict is bit-identical to the cold probe — only the
    /// number of fixed-point iterations changes.
    ///
    /// `warmth` must only ever be reused against the *same* cache state and
    /// candidate template (same id, period, priority); the
    /// [`ProbeWarmth::reset`] guard drops state recorded for a different
    /// entry count defensively.
    pub fn accepts_prioritised_warm(&self, candidate: &Task, warmth: &mut ProbeWarmth) -> bool {
        if !self.is_schedulable() {
            return false;
        }
        let level = rta::effective_priority(candidate).level();
        let outranked = |t: &Task| rta::effective_priority(t).level() > level;
        let peer = |t: &Task| rta::effective_priority(t).level() == level;
        // State from a probe of a larger candidate would be an upper bound,
        // not a lower bound: only smaller-or-equal WCETs warm-start.
        let usable = warmth.entry_responses.len() == self.entries.len()
            && warmth.wcet.is_some_and(|w| w <= candidate.wcet());
        if !usable {
            warmth.reset();
        }

        let candidate_warm = if usable {
            warmth.candidate_response
        } else {
            None
        };
        let candidate_response = rta::converge(
            candidate.wcet(),
            candidate.deadline(),
            candidate_warm,
            |r| {
                self.entries
                    .iter()
                    .filter(|e| !outranked(&e.task))
                    .map(|e| interference_term(&e.task, r))
                    .sum()
            },
        );
        let Some(candidate_response) = candidate_response else {
            return false;
        };

        let mut responses = Vec::with_capacity(self.entries.len());
        for (i, entry) in self.entries.iter().enumerate() {
            if !outranked(&entry.task) && !peer(&entry.task) {
                responses.push(entry.response);
                continue;
            }
            // The cached baseline is always a valid lower bound; a previous
            // smaller probe's converged response is a tighter one.
            let warm = if usable {
                warmth.entry_responses[i].or(entry.response)
            } else {
                entry.response
            };
            let survived = rta::converge(entry.task.wcet(), entry.task.deadline(), warm, |r| {
                self.own_interference(i, r) + interference_term(candidate, r)
            });
            let Some(survived) = survived else {
                return false;
            };
            responses.push(Some(survived));
        }
        // Fully converged: this probe becomes the warm start for the next
        // (larger) one.
        warmth.wcet = Some(candidate.wcet());
        warmth.candidate_response = Some(candidate_response);
        warmth.entry_responses = responses;
        true
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Re-converges entries `from..`, in order. With `warm`, each entry
    /// starts from its previous response (valid only when interference has
    /// grown, i.e. after an insertion).
    fn recompute_from(&mut self, from: usize, warm: bool) {
        for i in from..self.entries.len() {
            let warm_start = if warm { self.entries[i].response } else { None };
            let response = self.compute(i, warm_start);
            self.entries[i].response = response;
        }
    }

    /// The converged response time of entry `i` under the current
    /// assignment, optionally warm-started.
    fn compute(&self, i: usize, warm_start: Option<Time>) -> Option<Time> {
        let task = &self.entries[i].task;
        rta::converge(task.wcet(), task.deadline(), warm_start, |r| {
            self.own_interference(i, r)
        })
    }

    /// Interference entry `i` suffers from the other entries at
    /// higher-or-equal priority, at recurrence value `r`. The entries are
    /// sorted, so the interferers form the prefix up to the end of `i`'s
    /// equal-level group.
    fn own_interference(&self, i: usize, r: Time) -> Time {
        let level = sort_key(&self.entries[i].task).0;
        self.entries
            .iter()
            .take_while(|e| sort_key(&e.task).0 <= level)
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, e)| interference_term(&e.task, r))
            .sum()
    }

    /// [`own_interference`](Self::own_interference) with entry
    /// `removed_idx` evicted from the core.
    fn interference_without(&self, i: usize, removed_idx: usize, r: Time) -> Time {
        let level = sort_key(&self.entries[i].task).0;
        self.entries
            .iter()
            .enumerate()
            .take_while(|(_, e)| sort_key(&e.task).0 <= level)
            .filter(|(j, _)| *j != i && *j != removed_idx)
            .map(|(_, e)| interference_term(&e.task, r))
            .sum()
    }
}

/// Cross-probe warm-start state for
/// [`CachedCoreAnalysis::accepts_prioritised_warm`]: the converged response
/// times of the last *accepted* probe, valid as lower-bound warm starts for
/// every later probe of the same core with a larger candidate WCET. One
/// instance lives for the duration of one split-budget binary search.
#[derive(Debug, Clone, Default)]
pub struct ProbeWarmth {
    /// Candidate WCET of the last accepted probe (`None` = no state yet).
    wcet: Option<Time>,
    /// The candidate's converged response at that WCET.
    candidate_response: Option<Time>,
    /// Converged per-entry responses at that WCET, parallel to the cache's
    /// entries (entries above the candidate keep their cached baselines).
    entry_responses: Vec<Option<Time>>,
}

impl ProbeWarmth {
    /// A fresh, empty warm-start state.
    pub fn new() -> Self {
        ProbeWarmth::default()
    }

    /// Drops all recorded state (the next probe runs from the cache's
    /// baselines).
    pub fn reset(&mut self) {
        self.wcet = None;
        self.candidate_response = None;
        self.entry_responses.clear();
    }
}

/// Which refresh specialisation [`CachedCoreAnalysis::refresh_with_undo`]
/// runs — mirrors the three public refresh entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefreshMode {
    /// The general diff-based resynchronization of
    /// [`refresh`](CachedCoreAnalysis::refresh).
    General,
    /// The pure-insertion fast path of
    /// [`refresh_after_insert`](CachedCoreAnalysis::refresh_after_insert).
    AfterInsert,
    /// The pure-removal fast path of
    /// [`refresh_after_remove`](CachedCoreAnalysis::refresh_after_remove).
    AfterRemove,
}

/// Prior `(priority, response)` of one surviving entry a refresh changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EntryDelta {
    id: TaskId,
    priority: Option<Priority>,
    response: Option<Time>,
}

/// Compact, per-entry undo record of one
/// [`CachedCoreAnalysis::refresh_with_undo`] call: only what the refresh
/// actually changed — `O(changed levels)`, never a clone of the whole core.
/// Consumed by [`CachedCoreAnalysis::apply_refresh_undo`].
#[derive(Debug, Default)]
pub struct RefreshUndo {
    /// Entries the refresh dropped (or re-shaped beyond a priority shift):
    /// full prior copies, reinserted on undo.
    removed: Vec<(Task, Option<Time>)>,
    /// Ids the refresh added (or re-shaped): their entries are dropped on
    /// undo before the `removed` copies come back.
    added: Vec<TaskId>,
    /// Surviving entries whose priority or response shifted: prior values,
    /// patched back in place on undo.
    changed: Vec<EntryDelta>,
}

impl RefreshUndo {
    /// Number of per-entry records the undo carries (test/bench support:
    /// a no-op renormalization must record zero).
    pub fn len(&self) -> usize {
        self.removed.len() + self.added.len() + self.changed.len()
    }

    /// Whether the refresh changed nothing at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Diffs the detached pre-refresh entries against the refreshed state.
    /// `old` is consumed, so dropped entries move into the record without a
    /// clone. A same-id entry whose task parameters changed shape (WCET,
    /// period or deadline — possible through the general refresh after a
    /// split re-carve) is treated as removed-plus-added.
    fn diff(old: Vec<Entry>, new: &[Entry]) -> RefreshUndo {
        let same_shape = |a: &Task, b: &Task| {
            a.wcet() == b.wcet() && a.period() == b.period() && a.deadline() == b.deadline()
        };
        let added = new
            .iter()
            .filter(|e| {
                !old.iter()
                    .any(|p| p.task.id() == e.task.id() && same_shape(&p.task, &e.task))
            })
            .map(|e| e.task.id())
            .collect();
        let mut removed = Vec::new();
        let mut changed = Vec::new();
        for prev in old {
            match new
                .iter()
                .find(|e| e.task.id() == prev.task.id() && same_shape(&prev.task, &e.task))
            {
                Some(now) => {
                    if prev.task.priority() != now.task.priority() || prev.response != now.response
                    {
                        changed.push(EntryDelta {
                            id: prev.task.id(),
                            priority: prev.task.priority(),
                            response: prev.response,
                        });
                    }
                }
                None => removed.push((prev.task, prev.response)),
            }
        }
        RefreshUndo {
            removed,
            added,
            changed,
        }
    }
}

/// How a previously converged response carries over through
/// [`CachedCoreAnalysis::refresh`].
enum ReusePlan {
    /// Identical interference: the old response (including a proven miss)
    /// is the new response.
    Reuse(Option<Time>),
    /// Interference grew: the old response is a lower bound.
    WarmStart(Time),
}

/// Classifies how much of `prev`'s converged response survives for the same
/// task placed among `new_tasks`.
fn diff_entry(
    prev: &Entry,
    task: &Task,
    old_tasks: &[&Task],
    new_tasks: &[&Task],
) -> Option<ReusePlan> {
    if prev.task.wcet() != task.wcet() || prev.task.deadline() != task.deadline() {
        return None;
    }
    let old_profile = interferer_profile(old_tasks, &prev.task);
    let new_profile = interferer_profile(new_tasks, task);
    if old_profile == new_profile {
        Some(ReusePlan::Reuse(prev.response))
    } else if is_sub_multiset(&old_profile, &new_profile) {
        prev.response.map(ReusePlan::WarmStart)
    } else {
        None
    }
}

/// The `(C, T)` multiset of `task`'s interferers within `tasks` (every other
/// task at higher-or-equal effective priority), sorted for comparison.
fn interferer_profile(tasks: &[&Task], task: &Task) -> Vec<(Time, Time)> {
    let level = rta::effective_priority(task).level();
    let mut profile: Vec<(Time, Time)> = tasks
        .iter()
        .filter(|t| t.id() != task.id() && rta::effective_priority(t).level() <= level)
        .map(|t| (t.wcet(), t.period()))
        .collect();
    profile.sort_unstable();
    profile
}

/// Whether sorted multiset `a` is contained in sorted multiset `b`.
fn is_sub_multiset(a: &[(Time, Time)], b: &[(Time, Time)]) -> bool {
    let mut bi = 0;
    for item in a {
        loop {
            if bi >= b.len() {
                return false;
            }
            if &b[bi] == item {
                bi += 1;
                break;
            }
            if b[bi] > *item {
                return false;
            }
            bi += 1;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::Priority;

    fn task(id: u32, wcet_us: u64, period_us: u64, prio: u32) -> Task {
        let mut t =
            Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap();
        t.set_priority(Priority::new(prio));
        t
    }

    fn assert_matches_scratch(cache: &CachedCoreAnalysis) {
        let tasks: Vec<Task> = cache.tasks().cloned().collect();
        assert_eq!(cache.analysis(), rta::analyse_core(&tasks));
    }

    #[test]
    fn corrupt_then_audit_detects_and_rebuilds() {
        let mut cache = CachedCoreAnalysis::from_tasks(&[task(0, 1, 4, 2), task(1, 2, 10, 3)]);
        assert!(!cache.corruption_marked());
        assert!(cache.corrupt_first_response());
        assert!(cache.corruption_marked());
        // The audit notices the flipped memo, quarantines it, and rebuilds
        // from scratch.
        assert!(!cache.audit());
        assert!(!cache.corruption_marked());
        assert_matches_scratch(&cache);
        // A second audit on the repaired cache acquits it.
        assert!(cache.audit());
    }

    #[test]
    fn corrupt_first_response_needs_a_positive_converged_response() {
        let mut empty = CachedCoreAnalysis::new();
        assert!(!empty.corrupt_first_response());
        assert!(!empty.corruption_marked());
    }

    #[test]
    fn empty_cache_is_schedulable() {
        let cache = CachedCoreAnalysis::new();
        assert!(cache.is_schedulable());
        assert!(cache.is_empty());
        assert_matches_scratch(&cache);
    }

    #[test]
    fn insert_orders_by_priority_then_id() {
        let mut cache = CachedCoreAnalysis::new();
        cache.insert(task(2, 1, 10, 4));
        cache.insert(task(0, 1, 10, 2));
        cache.insert(task(1, 1, 10, 4));
        let ids: Vec<u32> = cache.tasks().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_matches_scratch(&cache);
    }

    #[test]
    fn insert_only_recomputes_at_or_below_and_matches_scratch() {
        let mut cache = CachedCoreAnalysis::new();
        cache.insert(task(0, 1, 4, 2));
        cache.insert(task(1, 2, 10, 3));
        let high_before = cache.response_of(TaskId(0)).unwrap();
        cache.insert(task(2, 3, 20, 4));
        // The top level is untouched; the new bottom level converged.
        assert_eq!(cache.response_of(TaskId(0)).unwrap(), high_before);
        assert_eq!(
            cache.response_of(TaskId(2)).unwrap(),
            Some(Time::from_micros(7))
        );
        assert_matches_scratch(&cache);
    }

    #[test]
    fn remove_restores_pre_insertion_state() {
        let mut cache = CachedCoreAnalysis::new();
        cache.insert(task(0, 1, 4, 2));
        cache.insert(task(1, 2, 10, 3));
        let before = cache.clone();
        cache.insert(task(2, 5, 20, 1));
        assert_ne!(cache, before);
        assert_eq!(cache.remove(TaskId(2)).map(|t| t.id()), Some(TaskId(2)));
        assert_eq!(cache, before);
        assert!(cache.remove(TaskId(9)).is_none());
    }

    #[test]
    fn unschedulable_insertions_are_detected_and_recover_on_removal() {
        let mut cache = CachedCoreAnalysis::new();
        cache.insert(task(0, 6, 10, 2));
        assert!(cache.is_schedulable());
        cache.insert(task(1, 6, 10, 3));
        assert!(!cache.is_schedulable());
        assert_eq!(cache.response_of(TaskId(1)).unwrap(), None);
        assert_matches_scratch(&cache);
        cache.remove(TaskId(0));
        assert!(cache.is_schedulable());
        assert_matches_scratch(&cache);
    }

    #[test]
    fn refresh_reuses_fixed_points_across_level_shifts() {
        // Renormalization shifts numeric levels without reordering: every
        // response must carry over bit-identically.
        let initial = [task(0, 1, 4, 2), task(1, 2, 10, 3), task(2, 3, 20, 4)];
        let mut cache = CachedCoreAnalysis::from_tasks(&initial);
        let before: Vec<_> = (0..3)
            .map(|i| cache.response_of(TaskId(i)).unwrap())
            .collect();
        let shifted = [task(0, 1, 4, 5), task(1, 2, 10, 6), task(2, 3, 20, 7)];
        cache.refresh(&shifted);
        let after: Vec<_> = (0..3)
            .map(|i| cache.response_of(TaskId(i)).unwrap())
            .collect();
        assert_eq!(before, after);
        assert_matches_scratch(&cache);
    }

    #[test]
    fn refresh_undo_is_empty_for_noop_and_restores_bit_identically() {
        // A refresh that changes nothing (same tasks, same levels) must
        // record an empty undo — the journal's steady-state cost.
        let initial = [task(0, 1, 4, 2), task(1, 2, 10, 3), task(2, 3, 20, 4)];
        let mut cache = CachedCoreAnalysis::from_tasks(&initial);
        let noop = cache.refresh_with_undo(&initial, RefreshMode::AfterInsert);
        assert!(
            noop.is_empty(),
            "no-op refresh recorded {} deltas",
            noop.len()
        );

        // An insertion-plus-shift refresh records only what changed, and
        // applying the undo restores the prior state bit-identically.
        let before = cache.clone();
        let grown = [
            task(0, 1, 4, 2),
            task(3, 1, 6, 3),
            task(1, 2, 10, 4),
            task(2, 3, 20, 5),
        ];
        let undo = cache.refresh_with_undo(&grown, RefreshMode::AfterInsert);
        assert!(!undo.is_empty());
        assert!(undo.len() <= grown.len(), "undo must stay per-entry");
        assert_matches_scratch(&cache);
        cache.apply_refresh_undo(undo);
        assert_eq!(cache, before);

        // Same round trip through the removal-specialised refresh.
        let before = cache.clone();
        let shrunk = [task(0, 1, 4, 2), task(2, 3, 20, 3)];
        let undo = cache.refresh_with_undo(&shrunk, RefreshMode::AfterRemove);
        assert!(!undo.is_empty());
        assert_matches_scratch(&cache);
        cache.apply_refresh_undo(undo);
        assert_eq!(cache, before);
    }

    #[test]
    fn refresh_undo_round_trips_a_parameter_reshape() {
        // The general refresh can see a same-id task change shape (split
        // re-carves); the undo must restore the old shape outright.
        let mut cache = CachedCoreAnalysis::from_tasks(&[task(0, 1, 4, 2), task(1, 2, 10, 3)]);
        let before = cache.clone();
        let reshaped = [task(0, 2, 4, 2), task(1, 2, 10, 3)];
        let undo = cache.refresh_with_undo(&reshaped, RefreshMode::General);
        assert!(!undo.is_empty());
        assert_matches_scratch(&cache);
        cache.apply_refresh_undo(undo);
        assert_eq!(cache, before);
    }

    #[test]
    fn refresh_handles_parameter_changes_cold() {
        let mut cache = CachedCoreAnalysis::from_tasks(&[task(0, 1, 4, 2), task(1, 2, 10, 3)]);
        cache.refresh(&[task(0, 2, 4, 2), task(1, 2, 10, 3)]);
        assert_matches_scratch(&cache);
        // R = 2 + ⌈R/4⌉·2 → fixed point at 4.
        assert_eq!(
            cache.response_of(TaskId(1)).unwrap(),
            Some(Time::from_micros(4))
        );
    }

    #[test]
    fn prioritised_probe_matches_scratch() {
        let cache = CachedCoreAnalysis::from_tasks(&[task(0, 1, 4, 2), task(1, 2, 10, 3)]);
        let fits = task(2, 3, 20, 4);
        let too_big = task(3, 12, 20, 4);
        for candidate in [&fits, &too_big] {
            let mut combined: Vec<Task> = cache.tasks().cloned().collect();
            combined.push(candidate.clone());
            assert_eq!(
                cache.accepts_prioritised(candidate),
                rta::is_core_schedulable(&combined),
                "probe diverged from scratch for task {}",
                candidate.id()
            );
        }
        // Probes never mutate.
        let snapshot = cache.clone();
        let _ = cache.accepts_prioritised(&fits);
        assert_eq!(cache, snapshot);
    }

    #[test]
    fn probe_counts_peer_interference() {
        // Regression tied to the priority-tie fix: a 60% peer at the same
        // level must reject a second 60% candidate.
        let cache = CachedCoreAnalysis::from_tasks(&[task(0, 6, 10, 5)]);
        assert!(!cache.accepts_prioritised(&task(1, 6, 10, 5)));
        assert!(cache.accepts_prioritised(&task(1, 3, 10, 5)));
    }

    #[test]
    fn probe_on_unschedulable_core_rejects() {
        let cache = CachedCoreAnalysis::from_tasks(&[task(0, 6, 10, 2), task(1, 6, 10, 3)]);
        assert!(!cache.is_schedulable());
        assert!(!cache.accepts_prioritised(&task(2, 1, 1000, 9)));
    }

    #[test]
    fn slack_accessors_match_response_times() {
        let cache = CachedCoreAnalysis::from_tasks(&[task(0, 1, 4, 2), task(1, 2, 10, 3)]);
        // R0 = 1 → slack 3; R1 = 3 → slack 7.
        assert_eq!(cache.slack_of(TaskId(0)), Some(Some(Time::from_micros(3))));
        assert_eq!(cache.slack_of(TaskId(1)), Some(Some(Time::from_micros(7))));
        assert_eq!(cache.slack_of(TaskId(9)), None);
        let doomed = CachedCoreAnalysis::from_tasks(&[task(0, 6, 10, 2), task(1, 6, 10, 3)]);
        assert_eq!(doomed.slack_of(TaskId(1)), Some(None));
    }

    #[test]
    fn probe_candidate_localizes_the_blocker() {
        let cache = CachedCoreAnalysis::from_tasks(&[task(0, 1, 4, 2), task(1, 2, 10, 3)]);
        // Accepted: no blocker.
        assert_eq!(
            cache.probe_candidate(&task(2, 3, 20, 4), |_| true, |_| false),
            None
        );
        // A candidate whose own recurrence exceeds its constrained deadline
        // blocks on itself (it absorbs the entries' interference).
        let constrained = Task::builder(3)
            .wcet(Time::from_micros(9))
            .period(Time::from_micros(40))
            .deadline(Time::from_micros(12))
            .priority(Priority::new(4))
            .build()
            .unwrap();
        assert_eq!(
            cache.probe_candidate(&constrained, |_| false, |_| false),
            Some(TaskId(3))
        );
        // A candidate that outranks everything converges itself but pushes
        // an entry over its deadline: that entry is the blocker (τ0 still
        // fits exactly at R = D = 4; τ1 diverges past 10).
        assert_eq!(
            cache.probe_candidate(&task(4, 3, 4, 0), |_| true, |_| false),
            Some(TaskId(1))
        );
    }

    #[test]
    fn eviction_probe_matches_scratch() {
        // Three tasks; probing "remove one, add candidate" must agree with
        // a from-scratch analysis of the modified core for every victim.
        let tasks = [task(0, 1, 4, 2), task(1, 3, 10, 3), task(2, 4, 20, 4)];
        let cache = CachedCoreAnalysis::from_tasks(&tasks);
        for candidate in [task(7, 5, 20, 5), task(8, 11, 20, 5), task(9, 2, 8, 1)] {
            let level = rta::effective_priority(&candidate).level();
            for victim in &tasks {
                let mut modified: Vec<Task> = tasks
                    .iter()
                    .filter(|t| t.id() != victim.id())
                    .cloned()
                    .collect();
                modified.push(candidate.clone());
                assert_eq!(
                    cache.accepts_candidate_without(
                        &candidate,
                        victim.id(),
                        |t| rta::effective_priority(t).level() > level,
                        |t| rta::effective_priority(t).level() == level,
                    ),
                    rta::is_core_schedulable(&modified),
                    "eviction probe diverged for candidate {} victim {}",
                    candidate.id(),
                    victim.id()
                );
            }
        }
        // Unknown victim falls back to the plain probe.
        assert_eq!(
            cache.accepts_candidate_without(&task(7, 5, 20, 5), TaskId(42), |_| true, |_| false),
            cache.accepts_candidate(&task(7, 5, 20, 5), |_| true, |_| false)
        );
    }

    #[test]
    fn warm_probe_matches_cold_probe_across_growing_budgets() {
        // The split-budget search probes the same core with C = D pieces of
        // growing budget; warm and cold probes must agree bit-for-bit.
        let cache = CachedCoreAnalysis::from_tasks(&[task(0, 2, 10, 2), task(1, 3, 20, 3)]);
        let mut warmth = ProbeWarmth::new();
        for budget_us in [1u64, 5, 3, 8, 6, 14, 2, 20] {
            let piece = Task::builder(9)
                .wcet(Time::from_micros(budget_us))
                .period(Time::from_micros(20))
                .deadline(Time::from_micros(budget_us))
                .priority(Priority::new(0))
                .build()
                .unwrap();
            assert_eq!(
                cache.accepts_prioritised_warm(&piece, &mut warmth),
                cache.accepts_prioritised(&piece),
                "warm probe diverged at budget {budget_us}"
            );
        }
    }

    #[test]
    fn warm_probe_rejects_on_unschedulable_core() {
        let cache = CachedCoreAnalysis::from_tasks(&[task(0, 6, 10, 2), task(1, 6, 10, 3)]);
        let mut warmth = ProbeWarmth::new();
        assert!(!cache.accepts_prioritised_warm(&task(2, 1, 1000, 9), &mut warmth));
    }

    #[test]
    fn sub_multiset_logic() {
        let a = Time::from_micros(1);
        let b = Time::from_micros(2);
        assert!(is_sub_multiset(&[], &[(a, b)]));
        assert!(is_sub_multiset(&[(a, b)], &[(a, b), (b, b)]));
        assert!(!is_sub_multiset(&[(a, b), (a, b)], &[(a, b)]));
        assert!(!is_sub_multiset(&[(b, b)], &[(a, b)]));
    }
}
