//! Uniprocessor EDF schedulability analysis.
//!
//! The paper notes (§2) that its scheduler framework "can be easily extended
//! to support a wide range of semi-partitioned algorithms based on both
//! fixed-priority and EDF scheduling"; the portioned-EDF algorithms of Kato &
//! Yamasaki are cited as related work. This module provides the uniprocessor
//! EDF tests needed for that extension:
//!
//! * the exact utilization test `ΣU ≤ 1` for implicit-deadline task sets,
//! * the processor-demand criterion (demand bound function) for constrained
//!   deadlines, checked over the standard bounded testing interval.

use spms_task::{Task, Time};

/// The demand bound function `dbf(τ, t)`: the maximum cumulative execution
/// demand of jobs of `task` that have both release time and deadline inside
/// any interval of length `t`.
///
/// ```
/// use spms_analysis::edf::demand_bound_function;
/// use spms_task::{Task, Time};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let task = Task::new(0, Time::from_millis(2), Time::from_millis(10))?;
/// assert_eq!(demand_bound_function(&task, Time::from_millis(9)), Time::ZERO);
/// assert_eq!(demand_bound_function(&task, Time::from_millis(10)), Time::from_millis(2));
/// assert_eq!(demand_bound_function(&task, Time::from_millis(25)), Time::from_millis(4));
/// # Ok(())
/// # }
/// ```
pub fn demand_bound_function(task: &Task, t: Time) -> Time {
    if t < task.deadline() {
        return Time::ZERO;
    }
    let jobs = (t - task.deadline()).div_floor(task.period()) + 1;
    task.wcet() * jobs
}

/// Sufficient-and-necessary EDF test for *implicit-deadline* sporadic tasks:
/// total utilization at most one.
pub fn fits_edf_utilization(tasks: &[Task]) -> bool {
    tasks.iter().map(Task::utilization).sum::<f64>() <= 1.0 + 1e-9
}

/// Exact (processor-demand) EDF schedulability test for constrained-deadline
/// sporadic tasks on one processor.
///
/// Implicit-deadline sets short-circuit to the utilization test. For
/// constrained deadlines the demand bound function is checked at every
/// absolute deadline inside the bounded testing interval
/// `L = min(hyperperiod-like horizon, busy-period bound)`; the horizon is
/// additionally capped to keep the check affordable for pathological period
/// ratios, which can only make the test more conservative (never unsound).
pub fn is_edf_schedulable(tasks: &[Task]) -> bool {
    if tasks.is_empty() {
        return true;
    }
    if !fits_edf_utilization(tasks) {
        return false;
    }
    if tasks.iter().all(Task::has_implicit_deadline) {
        return true;
    }
    let utilization: f64 = tasks.iter().map(Task::utilization).sum();
    // La bound: L = Σ (T_i − D_i)·U_i / (1 − U); degenerate when U ≈ 1.
    let la_bound = if utilization < 1.0 - 1e-9 {
        let numerator: f64 = tasks
            .iter()
            .map(|t| (t.period() - t.deadline()).as_secs_f64() * t.utilization())
            .sum();
        Time::from_secs_f64(numerator / (1.0 - utilization))
    } else {
        Time::MAX
    };
    let max_period = tasks.iter().map(Task::period).max().unwrap_or(Time::ZERO);
    let horizon_cap = max_period.saturating_mul(64);
    let horizon = la_bound.max(max_period).min(horizon_cap);

    // Check dbf(t) ≤ t at every absolute deadline in (0, horizon].
    let mut deadlines: Vec<Time> = Vec::new();
    for task in tasks {
        let mut d = task.deadline();
        while d <= horizon {
            deadlines.push(d);
            match d.checked_add(task.period()) {
                Some(next) => d = next,
                None => break,
            }
        }
    }
    deadlines.sort_unstable();
    deadlines.dedup();
    for t in deadlines {
        let demand: Time = tasks
            .iter()
            .map(|task| demand_bound_function(task, t))
            .sum();
        if demand > t {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::TaskError;

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    fn constrained(id: u32, wcet_us: u64, deadline_us: u64, period_us: u64) -> Task {
        Task::builder(id)
            .wcet(Time::from_micros(wcet_us))
            .deadline(Time::from_micros(deadline_us))
            .period(Time::from_micros(period_us))
            .build()
            .unwrap()
    }

    #[test]
    fn dbf_steps_at_deadlines() {
        let t = task(0, 3, 10);
        assert_eq!(demand_bound_function(&t, Time::from_micros(0)), Time::ZERO);
        assert_eq!(
            demand_bound_function(&t, Time::from_micros(10)),
            Time::from_micros(3)
        );
        assert_eq!(
            demand_bound_function(&t, Time::from_micros(19)),
            Time::from_micros(3)
        );
        assert_eq!(
            demand_bound_function(&t, Time::from_micros(20)),
            Time::from_micros(6)
        );
    }

    #[test]
    fn full_utilization_implicit_deadlines_is_schedulable() {
        // EDF schedules any implicit-deadline set with U ≤ 1, even where RM
        // fails (this is the classic EDF advantage).
        let tasks = vec![task(0, 5, 10), task(1, 5, 10)];
        assert!(fits_edf_utilization(&tasks));
        assert!(is_edf_schedulable(&tasks));
    }

    #[test]
    fn overloaded_set_is_rejected() {
        let tasks = vec![task(0, 6, 10), task(1, 5, 10)];
        assert!(!fits_edf_utilization(&tasks));
        assert!(!is_edf_schedulable(&tasks));
    }

    #[test]
    fn constrained_deadlines_use_the_demand_criterion() {
        // Two tasks whose utilization is fine but whose constrained deadlines
        // collide: C=4 with D=5 plus C=2 with D=5 demands 6 units by t=5.
        let tasks = vec![constrained(0, 4, 5, 20), constrained(1, 2, 5, 20)];
        assert!(fits_edf_utilization(&tasks));
        assert!(!is_edf_schedulable(&tasks));
        // Relaxing one deadline makes the demand fit again.
        let relaxed = vec![constrained(0, 4, 5, 20), constrained(1, 2, 10, 20)];
        assert!(is_edf_schedulable(&relaxed));
    }

    #[test]
    fn empty_set_is_schedulable() {
        assert!(is_edf_schedulable(&[]));
        assert!(fits_edf_utilization(&[]));
    }

    #[test]
    fn edf_dominates_fixed_priority_on_the_rm_counterexample() -> Result<(), TaskError> {
        // U ≈ 0.97 non-harmonic: RM misses (R2 = 8 > 7), EDF does not.
        let tasks = vec![task(0, 2, 5), task(1, 4, 7)];
        assert!(is_edf_schedulable(&tasks));
        let mut prioritised = tasks.clone();
        prioritised[0].set_priority(spms_task::Priority::new(0));
        prioritised[1].set_priority(spms_task::Priority::new(1));
        assert!(!crate::rta::is_core_schedulable(&prioritised));
        Ok(())
    }

    #[test]
    fn high_utilization_constrained_set_terminates() {
        // A constrained-deadline set close to full utilization exercises the
        // horizon cap without hanging.
        let tasks = vec![
            constrained(0, 3, 8, 10),
            constrained(1, 4, 9, 13),
            constrained(2, 2, 6, 7),
        ];
        // Just verify the test terminates and returns a boolean.
        let _ = is_edf_schedulable(&tasks);
    }
}
