//! The run-time overhead model of the paper (§3) and its integration into the
//! schedulability analysis.
//!
//! The paper decomposes the overhead around a preemption (Figure 1) into:
//!
//! * `rls` — the release path: acquiring the ready queue and inserting the
//!   released job (the pure execution time of `release()` is 3 µs),
//! * `sch` — the scheduling decision (`sch()`, 5 µs), taken on release and on
//!   completion,
//! * `cnt1`/`cnt2` — the two context-switch halves (`cnt_swth()`, 1.5 µs each)
//!   plus the queue operation they perform (sleep-queue insert for a finished
//!   normal task, *remote* ready-queue insert for a migrating body subtask,
//!   remote sleep-queue insert for a finishing tail subtask),
//! * `cache` — the cache-related delay of reloading the preempted task's
//!   working set.
//!
//! Table 1 gives the measured worst-case queue-operation durations for
//! N = 4 and N = 64 tasks per core, locally and remotely. [`OverheadModel`]
//! stores all of these numbers and [`OverheadModel::inflate_task`] folds them
//! into task WCETs, which is exactly how the paper's evaluation integrates
//! measured overhead into the state-of-the-art analyses.

use serde::{Deserialize, Serialize};
use spms_task::{Task, TaskError, TaskSet, Time};

/// How a job interacts with the scheduler, which determines which overheads
/// it pays (see the four `cnt2` cases in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OverheadScenario {
    /// A normal (non-split) task executing entirely on its own core.
    #[default]
    Normal,
    /// A body subtask of a split task: when its budget expires, the next
    /// subtask is inserted into the *remote* ready queue of the destination
    /// core and the destination core's scheduler is triggered.
    SplitBody,
    /// The tail subtask of a split task: when it finishes, the task is put
    /// back into the sleep queue of the core hosting the *first* subtask
    /// (a remote sleep-queue insertion).
    SplitTail,
}

/// Measured run-time overheads of the semi-partitioned scheduler.
///
/// All values are worst-case durations. The defaults mirror the paper's
/// measurements on a 4-core Intel Core-i7 (see [`OverheadModel::paper_n4`]
/// and [`OverheadModel::paper_n64`]).
///
/// # Example
///
/// ```
/// use spms_analysis::OverheadModel;
/// use spms_task::Time;
///
/// let m = OverheadModel::paper_n4();
/// assert_eq!(m.release, Time::from_micros(3));
/// assert!(m.job_overhead_normal() > Time::from_micros(10));
/// assert!(m.migration_overhead() > Time::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Pure execution time of the `release()` function.
    pub release: Time,
    /// Pure execution time of the `sch()` scheduling function.
    pub schedule: Time,
    /// Pure execution time of the `cnt_swth()` context-switch function.
    pub context_switch: Time,
    /// Ready-queue insertion from the local core.
    pub ready_queue_add_local: Time,
    /// Ready-queue insertion into another core's queue (migration path).
    pub ready_queue_add_remote: Time,
    /// Ready-queue extraction (always local).
    pub ready_queue_delete: Time,
    /// Sleep-queue insertion on the local core.
    pub sleep_queue_add_local: Time,
    /// Sleep-queue insertion into another core's queue (tail subtask finish).
    pub sleep_queue_add_remote: Time,
    /// Sleep-queue extraction (always local).
    pub sleep_queue_delete: Time,
    /// Cache-related delay after a local preemption.
    pub cache_reload_local: Time,
    /// Cache-related delay after a cross-core migration.
    pub cache_reload_migration: Time,
}

impl OverheadModel {
    /// An overhead-free model (the paper's "theoretical" configuration).
    pub fn zero() -> Self {
        OverheadModel {
            release: Time::ZERO,
            schedule: Time::ZERO,
            context_switch: Time::ZERO,
            ready_queue_add_local: Time::ZERO,
            ready_queue_add_remote: Time::ZERO,
            ready_queue_delete: Time::ZERO,
            sleep_queue_add_local: Time::ZERO,
            sleep_queue_add_remote: Time::ZERO,
            sleep_queue_delete: Time::ZERO,
            cache_reload_local: Time::ZERO,
            cache_reload_migration: Time::ZERO,
        }
    }

    /// The paper's measured overheads for N = 4 tasks per core (Table 1 plus
    /// the function costs of §3). The cache-related delays default to 20 µs
    /// locally and 25 µs after a migration — "the same order of magnitude",
    /// as the paper reports for realistic working sets; override them via the
    /// public fields or calibrate them with `spms-cache`.
    pub fn paper_n4() -> Self {
        OverheadModel {
            release: Time::from_micros(3),
            schedule: Time::from_micros(5),
            context_switch: Time::from_micros_f64(1.5),
            ready_queue_add_local: Time::from_micros_f64(1.5),
            ready_queue_add_remote: Time::from_micros_f64(3.3),
            ready_queue_delete: Time::from_micros_f64(2.7),
            sleep_queue_add_local: Time::from_micros_f64(2.5),
            sleep_queue_add_remote: Time::from_micros_f64(2.9),
            sleep_queue_delete: Time::from_micros_f64(3.3),
            cache_reload_local: Time::from_micros(20),
            cache_reload_migration: Time::from_micros(25),
        }
    }

    /// The paper's measured overheads for N = 64 tasks per core.
    pub fn paper_n64() -> Self {
        OverheadModel {
            release: Time::from_micros(3),
            schedule: Time::from_micros(5),
            context_switch: Time::from_micros_f64(1.5),
            ready_queue_add_local: Time::from_micros_f64(4.4),
            ready_queue_add_remote: Time::from_micros_f64(4.6),
            ready_queue_delete: Time::from_micros_f64(4.6),
            sleep_queue_add_local: Time::from_micros_f64(4.3),
            sleep_queue_add_remote: Time::from_micros_f64(4.4),
            sleep_queue_delete: Time::from_micros_f64(5.8),
            cache_reload_local: Time::from_micros(20),
            cache_reload_migration: Time::from_micros(25),
        }
    }

    /// The paper's worst-case queue-operation abstraction: `δ` is the largest
    /// ready-queue operation duration, `θ` the largest sleep-queue operation
    /// duration (§3: δ = θ = 3.3 µs for N = 4; δ = 4.6 µs, θ = 5.8 µs for
    /// N = 64).
    pub fn delta_theta(&self) -> (Time, Time) {
        let delta = self
            .ready_queue_add_local
            .max(self.ready_queue_add_remote)
            .max(self.ready_queue_delete);
        let theta = self
            .sleep_queue_add_local
            .max(self.sleep_queue_add_remote)
            .max(self.sleep_queue_delete);
        (delta, theta)
    }

    /// Sets both cache-related delays (builder style).
    pub fn with_cache_reload(mut self, local: Time, migration: Time) -> Self {
        self.cache_reload_local = local;
        self.cache_reload_migration = migration;
        self
    }

    /// Returns a copy with every component scaled by `factor` (used by the
    /// overhead-sensitivity experiment, E6).
    pub fn scaled(&self, factor: f64) -> Self {
        OverheadModel {
            release: self.release.scale(factor),
            schedule: self.schedule.scale(factor),
            context_switch: self.context_switch.scale(factor),
            ready_queue_add_local: self.ready_queue_add_local.scale(factor),
            ready_queue_add_remote: self.ready_queue_add_remote.scale(factor),
            ready_queue_delete: self.ready_queue_delete.scale(factor),
            sleep_queue_add_local: self.sleep_queue_add_local.scale(factor),
            sleep_queue_add_remote: self.sleep_queue_add_remote.scale(factor),
            sleep_queue_delete: self.sleep_queue_delete.scale(factor),
            cache_reload_local: self.cache_reload_local.scale(factor),
            cache_reload_migration: self.cache_reload_migration.scale(factor),
        }
    }

    /// The cost of the release path of one job: the `release()` function, the
    /// sleep-queue delete that removes the task from the sleep queue and the
    /// local ready-queue insertion (Figure 1, the `rls` segment).
    pub fn release_path_cost(&self) -> Time {
        self.release + self.sleep_queue_delete + self.ready_queue_add_local
    }

    /// The cost of dispatching a job once it is at the head of the ready
    /// queue: the scheduling decision, one context-switch half and the
    /// ready-queue extraction (Figure 1, `sch` + `cnt1`).
    pub fn dispatch_cost(&self) -> Time {
        self.schedule + self.context_switch + self.ready_queue_delete
    }

    /// The cost one job *arrival* (a release, or a migrating subtask landing
    /// on its destination core) inflicts on the job it preempts: the victim
    /// is re-inserted into the ready queue, later re-dispatched (scheduling
    /// decision, context switch, ready-queue delete) and resumes with a local
    /// cache reload (Figure 1, `cnt2` + `cache`).
    ///
    /// Each arrival preempts at most one running job, so charging this once
    /// per job of the arriving task upper-bounds the preemption-related
    /// overhead it can cause.
    pub fn preemption_inflicted_cost(&self) -> Time {
        self.ready_queue_add_local
            + self.schedule
            + self.context_switch
            + self.ready_queue_delete
            + self.cache_reload_local
    }

    /// The cost of the migration path a body subtask triggers when its budget
    /// expires, charged on the destination core: the scheduling decision and
    /// context switch on budget expiry, the *remote* ready-queue insertion,
    /// the dispatch on the destination core and the migration cache reload.
    ///
    /// This is the quantity the paper's §3 discussion compares against a
    /// local preemption; it does not include the preemption the arriving
    /// subtask may itself cause (see [`body_piece_inflation`]).
    ///
    /// [`body_piece_inflation`]: OverheadModel::body_piece_inflation
    pub fn migration_overhead(&self) -> Time {
        self.schedule
            + self.context_switch
            + self.ready_queue_add_remote
            + self.ready_queue_delete
            + self.cache_reload_migration
    }

    /// The additional overhead of a tail subtask finishing: its task state is
    /// returned to the sleep queue of the core hosting the first subtask (a
    /// *remote* sleep-queue insertion).
    pub fn tail_completion_overhead(&self) -> Time {
        self.sleep_queue_add_remote
    }

    /// Total per-job inflation for a task assigned whole to one core: its own
    /// release path, its first dispatch, the sleep-queue insertion when it
    /// finishes, and the preemption cost its release can inflict on the job
    /// it preempts.
    pub fn whole_job_inflation(&self) -> Time {
        self.release_path_cost()
            + self.dispatch_cost()
            + self.sleep_queue_add_local
            + self.preemption_inflicted_cost()
    }

    /// Per-job inflation of the *first* piece of a split task (the body
    /// subtask on the core where the task is released): release path, first
    /// dispatch and the preemption its release can inflict. The migration it
    /// triggers at the end of its budget is charged to the next piece.
    pub fn first_piece_inflation(&self) -> Time {
        self.release_path_cost() + self.dispatch_cost() + self.preemption_inflicted_cost()
    }

    /// Per-job inflation of a middle body piece (index ≥ 1) of a split task:
    /// the migration-in path (scheduling decision, context switch, remote
    /// ready-queue add), its dispatch on the destination core including the
    /// migration cache reload, and the preemption its arrival can inflict.
    pub fn body_piece_inflation(&self) -> Time {
        self.schedule
            + self.context_switch
            + self.ready_queue_add_remote
            + self.dispatch_cost()
            + self.cache_reload_migration
            + self.preemption_inflicted_cost()
    }

    /// Per-job inflation of the tail piece of a split task: a middle piece's
    /// costs plus the remote sleep-queue insertion when the task finishes and
    /// goes back to sleep on the core hosting its first piece.
    pub fn tail_piece_inflation(&self) -> Time {
        self.body_piece_inflation() + self.sleep_queue_add_remote
    }

    /// The per-job overhead of a normal (non-split) task — an alias for
    /// [`whole_job_inflation`](OverheadModel::whole_job_inflation), kept as
    /// the name the paper's discussion uses.
    pub fn job_overhead_normal(&self) -> Time {
        self.whole_job_inflation()
    }

    /// Per-job overhead for the given scenario.
    pub fn job_overhead(&self, scenario: OverheadScenario) -> Time {
        match scenario {
            OverheadScenario::Normal => self.whole_job_inflation(),
            OverheadScenario::SplitBody => {
                self.first_piece_inflation() + self.body_piece_inflation()
            }
            OverheadScenario::SplitTail => {
                self.first_piece_inflation() + self.tail_piece_inflation()
            }
        }
    }

    /// Inflates a task's WCET by its per-job overhead
    /// (`C'_i = C_i + overhead`), the paper's way of folding measured
    /// overhead into the schedulability analysis.
    ///
    /// # Errors
    ///
    /// Returns an error if the inflated WCET no longer fits within the task's
    /// deadline — such a task can immediately be declared unschedulable.
    pub fn inflate_task(&self, task: &Task) -> Result<Task, TaskError> {
        self.inflate_task_for(task, OverheadScenario::Normal)
    }

    /// Inflates a task's WCET for a specific scheduling scenario.
    ///
    /// # Errors
    ///
    /// Returns an error if the inflated WCET exceeds the deadline.
    pub fn inflate_task_for(
        &self,
        task: &Task,
        scenario: OverheadScenario,
    ) -> Result<Task, TaskError> {
        task.with_wcet(task.wcet() + self.job_overhead(scenario))
    }

    /// Inflates every task of a set (normal-task scenario).
    ///
    /// # Errors
    ///
    /// Returns the first inflation failure; the caller usually maps this to
    /// "task set unschedulable under this overhead model".
    pub fn inflate_task_set(&self, tasks: &TaskSet) -> Result<TaskSet, TaskError> {
        tasks.iter().map(|t| self.inflate_task(t)).collect()
    }
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel::paper_n4()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_1() {
        let n4 = OverheadModel::paper_n4();
        assert_eq!(n4.ready_queue_add_local, Time::from_nanos(1_500));
        assert_eq!(n4.ready_queue_add_remote, Time::from_nanos(3_300));
        assert_eq!(n4.sleep_queue_delete, Time::from_nanos(3_300));
        let (delta, theta) = n4.delta_theta();
        assert_eq!(delta, Time::from_nanos(3_300));
        assert_eq!(theta, Time::from_nanos(3_300));

        let n64 = OverheadModel::paper_n64();
        let (delta, theta) = n64.delta_theta();
        assert_eq!(delta, Time::from_nanos(4_600));
        assert_eq!(theta, Time::from_nanos(5_800));
    }

    #[test]
    fn zero_model_adds_nothing() {
        let m = OverheadModel::zero();
        assert_eq!(m.job_overhead_normal(), Time::ZERO);
        assert_eq!(m.migration_overhead(), Time::ZERO);
        let t = Task::new(0, Time::from_millis(1), Time::from_millis(10)).unwrap();
        assert_eq!(m.inflate_task(&t).unwrap().wcet(), t.wcet());
    }

    #[test]
    fn split_scenarios_cost_more_than_normal() {
        let m = OverheadModel::paper_n4();
        assert!(
            m.job_overhead(OverheadScenario::SplitBody) > m.job_overhead(OverheadScenario::Normal)
        );
        assert!(
            m.job_overhead(OverheadScenario::SplitTail) >= m.job_overhead(OverheadScenario::Normal)
        );
    }

    #[test]
    fn n64_costs_more_than_n4() {
        assert!(
            OverheadModel::paper_n64().job_overhead_normal()
                > OverheadModel::paper_n4().job_overhead_normal()
        );
    }

    #[test]
    fn inflation_increases_wcet_by_job_overhead() {
        let m = OverheadModel::paper_n4();
        let t = Task::new(0, Time::from_millis(2), Time::from_millis(20)).unwrap();
        let inflated = m.inflate_task(&t).unwrap();
        assert_eq!(inflated.wcet(), t.wcet() + m.job_overhead_normal());
        assert_eq!(inflated.period(), t.period());
    }

    #[test]
    fn inflation_fails_when_deadline_is_exceeded() {
        let m = OverheadModel::paper_n4();
        // 95 µs WCET with a 100 µs deadline cannot absorb ~40 µs of overhead.
        let t = Task::new(0, Time::from_micros(95), Time::from_micros(100)).unwrap();
        assert!(m.inflate_task(&t).is_err());
    }

    #[test]
    fn inflate_task_set_applies_to_all() {
        let m = OverheadModel::paper_n4();
        let ts: TaskSet = (0..4)
            .map(|i| Task::new(i, Time::from_millis(1), Time::from_millis(50)).unwrap())
            .collect();
        let inflated = m.inflate_task_set(&ts).unwrap();
        assert_eq!(inflated.len(), 4);
        for (orig, infl) in ts.iter().zip(inflated.iter()) {
            assert!(infl.wcet() > orig.wcet());
        }
    }

    #[test]
    fn scaled_model_scales_every_component() {
        let m = OverheadModel::paper_n4();
        let double = m.scaled(2.0);
        assert_eq!(double.release, Time::from_micros(6));
        assert_eq!(double.job_overhead_normal(), m.job_overhead_normal() * 2);
        let none = m.scaled(0.0);
        assert_eq!(none.job_overhead_normal(), Time::ZERO);
    }

    #[test]
    fn with_cache_reload_overrides_defaults() {
        let m =
            OverheadModel::paper_n4().with_cache_reload(Time::from_micros(7), Time::from_micros(9));
        assert_eq!(m.cache_reload_local, Time::from_micros(7));
        assert_eq!(m.cache_reload_migration, Time::from_micros(9));
    }

    #[test]
    fn migration_overhead_uses_remote_queue_costs() {
        let m = OverheadModel::paper_n4();
        assert!(m.migration_overhead() >= m.ready_queue_add_remote);
        // Tail completion pays the remote sleep-queue insertion.
        assert_eq!(m.tail_completion_overhead(), Time::from_nanos(2_900));
        // The analysis inflation of a split piece covers the preemption it
        // can inflict on the job it displaces on the destination core.
        assert!(m.body_piece_inflation() >= m.migration_overhead() + m.preemption_inflicted_cost());
    }
}
