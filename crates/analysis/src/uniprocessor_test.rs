//! The pluggable per-core acceptance test used by the partitioning
//! algorithms.

use serde::{Deserialize, Serialize};
use spms_task::Task;

use crate::{bounds, rta};

/// Which sufficient (or exact) schedulability test a partitioning algorithm
/// uses to decide whether a task fits on a processor.
///
/// DESIGN.md calls this out as ablation choice 2: the FP-TS construction of
/// Guan et al. is driven by the Liu & Layland bound (which is what its
/// utilization-bound guarantee relies on), while acceptance-ratio experiments
/// typically get a few extra percentage points from exact response-time
/// analysis.
///
/// # Example
///
/// ```
/// use spms_analysis::UniprocessorTest;
/// use spms_task::{Task, Time, Priority};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let mut a = Task::new(0, Time::from_millis(5), Time::from_millis(10))?;
/// let mut b = Task::new(1, Time::from_millis(10), Time::from_millis(20))?;
/// a.set_priority(Priority::new(0));
/// b.set_priority(Priority::new(1));
/// // A harmonic set at 100% utilization: rejected by the bounds, accepted by RTA.
/// assert!(!UniprocessorTest::LiuLayland.accepts(&[a.clone(), b.clone()]));
/// assert!(UniprocessorTest::ResponseTime.accepts(&[a, b]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum UniprocessorTest {
    /// Liu & Layland utilization bound `ΣU ≤ n(2^{1/n} − 1)`.
    LiuLayland,
    /// Hyperbolic bound `Π(U_i + 1) ≤ 2`.
    Hyperbolic,
    /// Exact response-time analysis (requires priorities to be assigned).
    #[default]
    ResponseTime,
}

impl UniprocessorTest {
    /// Whether the given per-core task assignment is accepted by this test.
    pub fn accepts(&self, tasks: &[Task]) -> bool {
        match self {
            UniprocessorTest::LiuLayland => bounds::fits_liu_layland(tasks),
            UniprocessorTest::Hyperbolic => bounds::fits_hyperbolic(tasks),
            UniprocessorTest::ResponseTime => rta::is_core_schedulable(tasks),
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            UniprocessorTest::LiuLayland => "liu-layland",
            UniprocessorTest::Hyperbolic => "hyperbolic",
            UniprocessorTest::ResponseTime => "rta",
        }
    }
}

impl std::fmt::Display for UniprocessorTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{Priority, Time};

    fn prioritised(specs: &[(u64, u64)]) -> Vec<Task> {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(c, t))| {
                let mut task =
                    Task::new(i as u32, Time::from_micros(c), Time::from_micros(t)).unwrap();
                task.set_priority(Priority::new(i as u32));
                task
            })
            .collect()
    }

    #[test]
    fn all_tests_accept_a_light_set() {
        let tasks = prioritised(&[(1, 10), (2, 20), (3, 50)]);
        for test in [
            UniprocessorTest::LiuLayland,
            UniprocessorTest::Hyperbolic,
            UniprocessorTest::ResponseTime,
        ] {
            assert!(test.accepts(&tasks), "{test}");
        }
    }

    #[test]
    fn all_tests_reject_an_overloaded_set() {
        let tasks = prioritised(&[(6, 10), (6, 10)]);
        for test in [
            UniprocessorTest::LiuLayland,
            UniprocessorTest::Hyperbolic,
            UniprocessorTest::ResponseTime,
        ] {
            assert!(!test.accepts(&tasks), "{test}");
        }
    }

    #[test]
    fn rta_dominates_hyperbolic_dominates_liu_layland() {
        // Harmonic set at full utilization: only RTA accepts.
        let harmonic = prioritised(&[(5, 10), (10, 20)]);
        assert!(!UniprocessorTest::LiuLayland.accepts(&harmonic));
        assert!(!UniprocessorTest::Hyperbolic.accepts(&harmonic));
        assert!(UniprocessorTest::ResponseTime.accepts(&harmonic));

        // 0.5 + 0.33: hyperbolic and RTA accept, Liu & Layland rejects.
        let medium = prioritised(&[(50, 100), (33, 100)]);
        assert!(!UniprocessorTest::LiuLayland.accepts(&medium));
        assert!(UniprocessorTest::Hyperbolic.accepts(&medium));
        assert!(UniprocessorTest::ResponseTime.accepts(&medium));
    }

    #[test]
    fn names_and_default() {
        assert_eq!(UniprocessorTest::default(), UniprocessorTest::ResponseTime);
        assert_eq!(UniprocessorTest::LiuLayland.to_string(), "liu-layland");
        assert_eq!(UniprocessorTest::Hyperbolic.name(), "hyperbolic");
    }

    #[test]
    fn empty_core_is_always_accepted() {
        for test in [
            UniprocessorTest::LiuLayland,
            UniprocessorTest::Hyperbolic,
            UniprocessorTest::ResponseTime,
        ] {
            assert!(test.accepts(&[]));
        }
    }
}
