//! # spms-analysis
//!
//! Fixed-priority schedulability analysis for the SPMS workspace:
//!
//! * [`bounds`] — Liu & Layland and hyperbolic utilization bounds,
//! * [`rta`] — exact response-time analysis for constrained-deadline
//!   fixed-priority tasks on one processor,
//! * [`CachedCoreAnalysis`] — incremental per-core RTA: memoized response
//!   times with insert/remove invalidating only the priority levels at or
//!   below the mutation point, and allocation-free what-if probes for the
//!   online admission fast path,
//! * [`OverheadModel`] — the paper's measured run-time overheads (§3,
//!   Table 1) and their integration into the analysis via WCET inflation,
//! * [`UniprocessorTest`] — the pluggable per-core acceptance test used by
//!   the partitioning algorithms in `spms-core`.
//!
//! # Example
//!
//! ```
//! use spms_analysis::{rta, OverheadModel, UniprocessorTest};
//! use spms_task::{Task, Time, Priority};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut high = Task::new(0, Time::from_millis(1), Time::from_millis(4))?;
//! let mut low = Task::new(1, Time::from_millis(2), Time::from_millis(10))?;
//! high.set_priority(Priority::new(0));
//! low.set_priority(Priority::new(1));
//!
//! // Exact response time of the low-priority task under interference.
//! let r = rta::response_time(&low, &[high.clone()]).expect("converges");
//! assert_eq!(r, Time::from_millis(3)); // 2ms own + one 1ms preemption
//!
//! // The same test with the paper's measured overheads folded in.
//! let overheads = OverheadModel::paper_n4();
//! let test = UniprocessorTest::ResponseTime;
//! assert!(test.accepts(&[high, low.clone()]));
//! let inflated = overheads.inflate_task(&low).expect("still fits");
//! assert!(inflated.wcet() > low.wcet());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
mod cached;
pub mod edf;
mod overhead;
pub mod rta;
mod uniprocessor_test;

pub use cached::{CachedCoreAnalysis, ProbeWarmth, RefreshMode, RefreshUndo};
pub use overhead::{OverheadModel, OverheadScenario};
pub use uniprocessor_test::UniprocessorTest;
