//! Utilization-based schedulability bounds for rate-monotonic scheduling.
//!
//! The FP-TS algorithm of Guan et al. (RTAS 2010) — the semi-partitioned
//! algorithm the paper implements — is built around Liu & Layland's
//! utilization bound `Θ(n) = n(2^{1/n} − 1)`: a processor hosting `n`
//! rate-monotonic tasks is schedulable if its total utilization does not
//! exceed `Θ(n)`. This module provides that bound, its limit `ln 2`, the
//! hyperbolic bound of Bini & Buttazzo (a strictly better sufficient test),
//! and the "light task" threshold used by SPA2 to decide which tasks must be
//! pre-assigned.

use spms_task::Task;

/// Liu & Layland's rate-monotonic utilization bound for `n` tasks:
/// `Θ(n) = n(2^{1/n} − 1)`, with `Θ(0) = 1` by convention.
///
/// ```
/// use spms_analysis::bounds::liu_layland_bound;
///
/// assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
/// assert!((liu_layland_bound(2) - 0.8284271).abs() < 1e-6);
/// assert!(liu_layland_bound(1000) > std::f64::consts::LN_2);
/// ```
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        1.0
    } else {
        n as f64 * (2f64.powf(1.0 / n as f64) - 1.0)
    }
}

/// The limit of the Liu & Layland bound for large `n`: `ln 2 ≈ 0.693`.
pub const LIU_LAYLAND_LIMIT: f64 = std::f64::consts::LN_2;

/// The "light task" threshold of SPA2 (Guan et al., RTAS 2010):
/// `Θ(n) / (1 + Θ(n))`. Tasks with a larger utilization are *heavy* and are
/// pre-assigned their own processor slot so that the Liu & Layland bound can
/// be met for the whole system.
pub fn heavy_task_threshold(n: usize) -> f64 {
    let theta = liu_layland_bound(n);
    theta / (1.0 + theta)
}

/// Sufficient rate-monotonic test by total utilization: the `tasks` fit on
/// one processor if `ΣU_i ≤ Θ(n)`.
pub fn fits_liu_layland(tasks: &[Task]) -> bool {
    let total: f64 = tasks.iter().map(Task::utilization).sum();
    total <= liu_layland_bound(tasks.len()) + 1e-12
}

/// The hyperbolic bound (Bini & Buttazzo 2003): the `tasks` are
/// rate-monotonic schedulable on one processor if `Π (U_i + 1) ≤ 2`.
/// Strictly dominates the Liu & Layland test.
pub fn fits_hyperbolic(tasks: &[Task]) -> bool {
    let product: f64 = tasks.iter().map(|t| t.utilization() + 1.0).product();
    product <= 2.0 + 1e-12
}

/// Remaining capacity of a processor under the Liu & Layland bound, assuming
/// it already hosts `tasks`: how much additional utilization the bound allows
/// for one more task. Returns 0.0 when the bound is already exceeded.
pub fn remaining_liu_layland_capacity(tasks: &[Task]) -> f64 {
    let total: f64 = tasks.iter().map(Task::utilization).sum();
    (liu_layland_bound(tasks.len() + 1) - total).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{Task, Time};

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    #[test]
    fn bound_values_match_the_literature() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        assert!((liu_layland_bound(2) - 0.828_427).abs() < 1e-5);
        assert!((liu_layland_bound(3) - 0.779_763).abs() < 1e-5);
        assert!((liu_layland_bound(10) - 0.717_734).abs() < 1e-5);
        assert!(liu_layland_bound(10_000) - LIU_LAYLAND_LIMIT < 1e-3);
        assert_eq!(liu_layland_bound(0), 1.0);
    }

    #[test]
    fn bound_is_monotonically_decreasing() {
        for n in 1..50 {
            assert!(liu_layland_bound(n) > liu_layland_bound(n + 1));
        }
    }

    #[test]
    fn heavy_threshold_is_about_0_41_for_large_n() {
        let th = heavy_task_threshold(100);
        assert!(th > 0.40 && th < 0.42, "threshold {th}");
        assert!((heavy_task_threshold(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn liu_layland_accepts_and_rejects() {
        // Two tasks at 0.4 each: total 0.8 < 0.828 — accepted.
        let ok = vec![task(0, 4, 10), task(1, 4, 10)];
        assert!(fits_liu_layland(&ok));
        // Two tasks at 0.45 each: total 0.9 > 0.828 — rejected by the bound
        // (although an exact test may still accept them).
        let reject = vec![task(0, 45, 100), task(1, 45, 100)];
        assert!(!fits_liu_layland(&reject));
    }

    #[test]
    fn hyperbolic_dominates_liu_layland() {
        // 0.5 and 0.33: LL total 0.83 > 0.828 rejects, hyperbolic
        // (1.5)(1.33) = 1.995 ≤ 2 accepts.
        let tasks = vec![task(0, 50, 100), task(1, 33, 100)];
        assert!(!fits_liu_layland(&tasks));
        assert!(fits_hyperbolic(&tasks));
    }

    #[test]
    fn hyperbolic_rejects_overload() {
        let tasks = vec![task(0, 60, 100), task(1, 60, 100)];
        assert!(!fits_hyperbolic(&tasks));
    }

    #[test]
    fn empty_processor_accepts_anything_light() {
        assert!(fits_liu_layland(&[]));
        assert!(fits_hyperbolic(&[]));
        assert!((remaining_liu_layland_capacity(&[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn remaining_capacity_shrinks_with_load() {
        let one = vec![task(0, 30, 100)];
        let two = vec![task(0, 30, 100), task(1, 30, 100)];
        assert!(remaining_liu_layland_capacity(&one) > remaining_liu_layland_capacity(&two));
        let full = vec![task(0, 90, 100)];
        assert_eq!(remaining_liu_layland_capacity(&full), 0.0);
    }
}
