//! Property-based equivalence of [`CachedCoreAnalysis`] and from-scratch
//! [`rta::analyse_core`].
//!
//! The cache's contract is *bit-identical results*: after any sequence of
//! `insert` / `remove` / renormalization-style `refresh` operations, every
//! memoized response time (and the schedulability verdict) must equal what a
//! cold `analyse_core` computes over the same tasks — warm starts and
//! level-scoped invalidation are pure optimizations. These tests drive
//! random operation sequences (with deliberately colliding priority levels,
//! the case the priority-tie fix makes interfere) and check the equivalence
//! after every step; a companion property pins the non-mutating placement
//! probes against scratch analysis of the combined assignment.
//!
//! The vendored proptest runner is deterministically seeded, so failures
//! reproduce identically.

use proptest::collection::vec;
use proptest::prelude::*;
use spms_analysis::{rta, CachedCoreAnalysis, ProbeWarmth};
use spms_task::{Priority, Task, TaskId, Time};

/// A compact task spec the strategies generate: `(wcet_us, extra_period_us,
/// priority_level)`. Periods are `wcet + extra + 1` so tasks are always
/// constructible; levels are drawn from a tiny range to force ties.
type Spec = (u64, u64, u32);

fn build_task(id: u32, spec: Spec) -> Task {
    let (wcet, extra, level) = spec;
    let wcet = wcet.max(1);
    let mut task = Task::new(
        id,
        Time::from_micros(wcet),
        Time::from_micros(wcet + extra + 1),
    )
    .expect("constructible by construction");
    task.set_priority(Priority::new(level));
    task
}

fn spec() -> impl Strategy<Value = Spec> {
    (1u64..40, 0u64..120, 0u32..5)
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Spec),
    /// Remove the task at `index % len` of the current assignment.
    Remove(usize),
    /// Re-rank every task densely by (deadline, period, id) — the shape of
    /// a whole-task renormalization — and resync via `refresh`.
    Renormalize,
    /// Replace the parameters of the task at `index % len` (same id) and
    /// resync via `refresh`: exercises the cold path of the diff.
    Mutate(usize, Spec),
}

/// The shim proptest has no `prop_oneof`; a discriminant range plus
/// `prop_map` gives the same weighted choice.
fn op() -> impl Strategy<Value = Op> {
    (0u8..8, spec(), 0usize..64).prop_map(|(kind, spec, index)| match kind {
        0..=3 => Op::Insert(spec),
        4 | 5 => Op::Remove(index),
        6 => Op::Renormalize,
        _ => Op::Mutate(index, spec),
    })
}

/// Asserts the cache equals a cold `analyse_core` over its own tasks.
fn assert_matches_scratch(cache: &CachedCoreAnalysis) {
    let tasks: Vec<Task> = cache.tasks().cloned().collect();
    let scratch = rta::analyse_core(&tasks);
    prop_assert_eq!(cache.analysis(), scratch, "cache diverged from scratch");
}

/// Dense re-ranking by (deadline, period, id) — mirrors the partition's
/// whole-task renormalization without depending on `spms-core`.
fn renormalized(tasks: &[Task]) -> Vec<Task> {
    let mut ranked: Vec<Task> = tasks.to_vec();
    ranked.sort_by_key(|t| (t.deadline(), t.period(), t.id()));
    for (level, task) in ranked.iter_mut().enumerate() {
        task.set_priority(Priority::new(level as u32));
    }
    ranked
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Random insert/remove/renormalize/mutate sequences keep the cache
    /// bit-identical to from-scratch analysis at every step.
    #[test]
    fn cache_equals_scratch_under_random_mutation(ops in vec(op(), 1..24)) {
        let mut cache = CachedCoreAnalysis::new();
        let mut next_id = 0u32;
        for op in ops {
            match op {
                Op::Insert(spec) => {
                    cache.insert(build_task(next_id, spec));
                    next_id += 1;
                }
                Op::Remove(index) => {
                    if !cache.is_empty() {
                        let ids: Vec<TaskId> = cache.tasks().map(Task::id).collect();
                        let id = ids[index % ids.len()];
                        prop_assert!(cache.remove(id).is_some());
                    }
                }
                Op::Renormalize => {
                    let tasks: Vec<Task> = cache.tasks().cloned().collect();
                    cache.refresh(&renormalized(&tasks));
                }
                Op::Mutate(index, spec) => {
                    if !cache.is_empty() {
                        let mut tasks: Vec<Task> = cache.tasks().cloned().collect();
                        let slot = index % tasks.len();
                        let id = tasks[slot].id().0;
                        tasks[slot] = build_task(id, spec);
                        cache.refresh(&tasks);
                    }
                }
            }
            assert_matches_scratch(&cache);
        }
    }

    /// The non-mutating what-if probe answers exactly what a scratch
    /// analysis of the combined assignment answers, and leaves the cache
    /// untouched.
    #[test]
    fn prioritised_probe_equals_scratch(
        existing in vec(spec(), 0..8),
        candidate in spec(),
    ) {
        let tasks: Vec<Task> = existing
            .iter()
            .enumerate()
            .map(|(i, s)| build_task(i as u32, *s))
            .collect();
        let cache = CachedCoreAnalysis::from_tasks(&tasks);
        let candidate = build_task(1000, candidate);

        let snapshot = cache.clone();
        let probed = cache.accepts_prioritised(&candidate);
        prop_assert_eq!(&cache, &snapshot, "probe mutated the cache");

        let mut combined = tasks.clone();
        combined.push(candidate);
        prop_assert_eq!(probed, rta::is_core_schedulable(&combined));
    }

    /// The eviction what-if probe (`accepts_candidate_without`) answers
    /// exactly what a scratch analysis of the core minus the victim plus
    /// the candidate answers, for every victim.
    #[test]
    fn eviction_probe_equals_scratch(
        existing in vec(spec(), 1..8),
        candidate in spec(),
    ) {
        let tasks: Vec<Task> = existing
            .iter()
            .enumerate()
            .map(|(i, s)| build_task(i as u32, *s))
            .collect();
        let cache = CachedCoreAnalysis::from_tasks(&tasks);
        let candidate = build_task(1000, candidate);
        let level = rta::effective_priority(&candidate).level();
        for victim in &tasks {
            let probed = cache.accepts_candidate_without(
                &candidate,
                victim.id(),
                |t| rta::effective_priority(t).level() > level,
                |t| rta::effective_priority(t).level() == level,
            );
            let mut modified: Vec<Task> = tasks
                .iter()
                .filter(|t| t.id() != victim.id())
                .cloned()
                .collect();
            modified.push(candidate.clone());
            prop_assert_eq!(
                probed,
                rta::is_core_schedulable(&modified),
                "eviction probe diverged for victim {}",
                victim.id()
            );
        }
    }

    /// Warm-started probes of a growing-then-shrinking budget sequence
    /// agree with cold probes on every step (the warm start is a pure
    /// iteration-count optimization).
    #[test]
    fn warm_probe_equals_cold_probe(
        existing in vec(spec(), 0..8),
        budgets in vec(1u64..60, 1..12),
        period_extra in 0u64..200,
    ) {
        let tasks: Vec<Task> = existing
            .iter()
            .enumerate()
            .map(|(i, s)| build_task(i as u32, *s))
            .collect();
        let cache = CachedCoreAnalysis::from_tasks(&tasks);
        let period = budgets.iter().max().unwrap() + period_extra + 1;
        let mut warmth = ProbeWarmth::new();
        for &budget in &budgets {
            // A C = D body piece at the promoted level, like the split
            // search carves.
            let piece = Task::builder(1000)
                .wcet(Time::from_micros(budget))
                .period(Time::from_micros(period))
                .deadline(Time::from_micros(budget))
                .priority(Priority::new(0))
                .build()
                .expect("constructible by construction");
            prop_assert_eq!(
                cache.accepts_prioritised_warm(&piece, &mut warmth),
                cache.accepts_prioritised(&piece),
                "warm probe diverged at budget {}",
                budget
            );
        }
    }

    /// Insert followed by remove of the same task restores the cache to its
    /// previous state exactly (responses included).
    #[test]
    fn insert_remove_round_trips(
        existing in vec(spec(), 0..8),
        extra in spec(),
    ) {
        let tasks: Vec<Task> = existing
            .iter()
            .enumerate()
            .map(|(i, s)| build_task(i as u32, *s))
            .collect();
        let mut cache = CachedCoreAnalysis::from_tasks(&tasks);
        let before = cache.clone();
        cache.insert(build_task(1000, extra));
        assert_matches_scratch(&cache);
        prop_assert!(cache.remove(TaskId(1000)).is_some());
        prop_assert_eq!(cache, before);
    }
}
