//! Regression guard: task-set generation is a pure function of the seed.
//!
//! `TaskSetGenerator` documents that equal configuration + seed produce
//! identical task sets. The experiments, benches, and the paper-claims
//! integration suite all lean on that for reproducibility, so a refactor of
//! the generator (or of the vendored ChaCha8/UUniFast plumbing underneath
//! it) that silently changes the stream must fail loudly. The golden JSON
//! below pins the exact bytes the current pipeline produces; regenerate it
//! deliberately (see the test body) if the generation algorithm is ever
//! *intentionally* changed.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spms_task::{TaskSetGenerator, Time};

fn generator() -> TaskSetGenerator {
    TaskSetGenerator::new()
        .task_count(4)
        .total_utilization(1.5)
        .seed(0xDEAD_BEEF)
}

/// Two generators with the same seed yield byte-identical serializations.
#[test]
fn same_seed_is_byte_identical() {
    let a = serde_json::to_string(&generator().generate().unwrap()).unwrap();
    let b = serde_json::to_string(&generator().generate().unwrap()).unwrap();
    assert_eq!(a, b);
}

/// `generate_with` on an explicitly seeded ChaCha8 stream matches
/// `generate`, which seeds the same stream internally.
#[test]
fn explicit_rng_matches_internal_seeding() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEAD_BEEF);
    let explicit = generator().generate_with(&mut rng).unwrap();
    let internal = generator().generate().unwrap();
    assert_eq!(explicit, internal);
}

/// Different seeds actually change the output (guards against a refactor
/// accidentally ignoring the seed).
#[test]
fn different_seeds_differ() {
    let a = generator().generate().unwrap();
    let b = generator().seed(1).generate().unwrap();
    assert_ne!(a, b);
}

/// The exact bytes produced for a fixed configuration, across processes and
/// runs. To regenerate after an intentional generator change:
/// `cargo test -p spms-task --test determinism -- --nocapture` prints the
/// actual JSON on mismatch.
#[test]
fn golden_snapshot_is_stable() {
    let actual = serde_json::to_string(&generator().generate().unwrap()).unwrap();
    let golden = include_str!("determinism_golden.json").trim();
    assert_eq!(
        actual, golden,
        "task-set generation drifted from the pinned golden output;\n\
         if this change is intentional, update determinism_golden.json.\n\
         actual: {actual}"
    );
}

/// Derived-seed batch generation is deterministic too, and each set in the
/// batch uses a distinct stream.
#[test]
fn generate_many_is_deterministic_and_decorrelated() {
    let batch_a = generator().generate_many(3).unwrap();
    let batch_b = generator().generate_many(3).unwrap();
    assert_eq!(batch_a, batch_b);
    assert_ne!(batch_a[0], batch_a[1]);
    assert_ne!(batch_a[1], batch_a[2]);
}

/// Sanity: the pinned configuration really produces well-formed sets (so
/// the golden file is guarding something meaningful).
#[test]
fn pinned_configuration_is_well_formed() {
    let ts = generator().generate().unwrap();
    assert_eq!(ts.len(), 4);
    assert!(ts.validate().is_ok());
    assert!((ts.total_utilization() - 1.5).abs() < 0.1);
    for task in &ts {
        assert!(task.wcet() >= Time::from_nanos(1));
        assert!(task.wcet() <= task.period());
    }
}
