//! Fixed-point time values with nanosecond resolution.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in time or a duration, stored as an integer number of nanoseconds.
///
/// All scheduling arithmetic in the SPMS workspace is performed on `Time`
/// rather than floating-point seconds so that schedulability analysis and the
/// discrete-event simulator agree bit-for-bit on release times, deadlines and
/// budgets.
///
/// `Time` is a thin newtype over `u64`; it saturates on subtraction below zero
/// only through [`Time::saturating_sub`] — the `Sub` operator panics on
/// underflow in debug builds just like plain integer arithmetic, which is the
/// behaviour we want while developing analyses.
///
/// # Example
///
/// ```
/// use spms_task::Time;
///
/// let period = Time::from_millis(10);
/// let wcet = Time::from_micros(2_500);
/// assert_eq!(period.as_nanos(), 10_000_000);
/// assert!((wcet.as_secs_f64() - 0.0025).abs() < 1e-12);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Time(u64);

impl Time {
    /// The zero duration / time origin.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time value.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time value from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Time(nanos)
    }

    /// Creates a time value from microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros * 1_000)
    }

    /// Creates a time value from milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis * 1_000_000)
    }

    /// Creates a time value from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1_000_000_000)
    }

    /// Creates a time value from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs are clamped to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            Time::ZERO
        } else {
            Time((secs * 1e9).round() as u64)
        }
    }

    /// Creates a time value from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative inputs are clamped to zero.
    #[inline]
    pub fn from_micros_f64(micros: f64) -> Self {
        if micros <= 0.0 {
            Time::ZERO
        } else {
            Time((micros * 1e3).round() as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (integer division).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Value in milliseconds (integer division).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Value as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Whether the value is exactly zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    pub const fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    #[inline]
    pub const fn checked_sub(self, rhs: Time) -> Option<Time> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Checked addition.
    #[inline]
    pub const fn checked_add(self, rhs: Time) -> Option<Time> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Multiplies by an integer factor.
    #[inline]
    pub const fn saturating_mul(self, factor: u64) -> Time {
        Time(self.0.saturating_mul(factor))
    }

    /// Scales the value by a floating point factor, rounding to the nearest
    /// nanosecond. Negative factors are clamped to zero.
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        Time::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Number of whole times `rhs` fits into `self` (integer division).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div_floor(self, rhs: Time) -> u64 {
        self.0 / rhs.0
    }

    /// Ceiling division: the smallest `k` such that `k * rhs >= self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub fn div_ceil(self, rhs: Time) -> u64 {
        self.0.div_ceil(rhs.0)
    }

    /// Ratio of two time values as a floating-point number.
    ///
    /// # Panics
    ///
    /// Panics (returns `inf`) semantics follow IEEE 754 when `rhs` is zero.
    #[inline]
    pub fn ratio(self, rhs: Time) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }

    /// The smaller of the two values.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// The larger of the two values.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Pick the most natural unit for display.
        let ns = self.0;
        if ns == 0 {
            write!(f, "0")
        } else if ns.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", ns / 1_000_000_000)
        } else if ns.is_multiple_of(1_000_000) {
            write!(f, "{}ms", ns / 1_000_000)
        } else if ns.is_multiple_of(1_000) {
            write!(f, "{}us", ns / 1_000)
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0 * rhs)
    }
}

impl Mul<Time> for u64 {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Time) -> Time {
        Time(self * rhs.0)
    }
}

impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}

impl Rem for Time {
    type Output = Time;
    #[inline]
    fn rem(self, rhs: Time) -> Time {
        Time(self.0 % rhs.0)
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |acc, t| acc + t)
    }
}

impl From<u64> for Time {
    /// Interprets the raw integer as nanoseconds.
    fn from(nanos: u64) -> Self {
        Time(nanos)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
        assert_eq!(Time::from_micros(1), Time::from_nanos(1_000));
    }

    #[test]
    fn float_roundtrip() {
        let t = Time::from_secs_f64(0.125);
        assert_eq!(t.as_nanos(), 125_000_000);
        assert!((t.as_secs_f64() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn negative_float_clamps_to_zero() {
        assert_eq!(Time::from_secs_f64(-3.0), Time::ZERO);
        assert_eq!(Time::from_micros_f64(-1.0), Time::ZERO);
    }

    #[test]
    fn arithmetic_basics() {
        let a = Time::from_micros(3);
        let b = Time::from_micros(2);
        assert_eq!(a + b, Time::from_micros(5));
        assert_eq!(a - b, Time::from_micros(1));
        assert_eq!(a * 4, Time::from_micros(12));
        assert_eq!(a / 3, Time::from_micros(1));
        assert_eq!((a + b) % a, Time::from_micros(2));
    }

    #[test]
    fn saturating_and_checked() {
        let a = Time::from_nanos(5);
        let b = Time::from_nanos(9);
        assert_eq!(a.saturating_sub(b), Time::ZERO);
        assert_eq!(b.saturating_sub(a), Time::from_nanos(4));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(Time::MAX.checked_add(a), None);
        assert_eq!(Time::MAX.saturating_add(a), Time::MAX);
    }

    #[test]
    fn division_helpers() {
        let d = Time::from_millis(10);
        let p = Time::from_millis(3);
        assert_eq!(d.div_floor(p), 3);
        assert_eq!(d.div_ceil(p), 4);
        assert!((d.ratio(p) - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Time::from_secs(2).to_string(), "2s");
        assert_eq!(Time::from_millis(5).to_string(), "5ms");
        assert_eq!(Time::from_micros(7).to_string(), "7us");
        assert_eq!(Time::from_nanos(13).to_string(), "13ns");
        assert_eq!(Time::ZERO.to_string(), "0");
    }

    #[test]
    fn sum_of_times() {
        let total: Time = [
            Time::from_micros(1),
            Time::from_micros(2),
            Time::from_micros(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, Time::from_micros(6));
    }

    #[test]
    fn min_max() {
        let a = Time::from_micros(3);
        let b = Time::from_micros(5);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn scale_rounds_to_nanosecond() {
        let t = Time::from_micros(10);
        assert_eq!(t.scale(1.5), Time::from_micros(15));
        assert_eq!(t.scale(0.0), Time::ZERO);
        assert_eq!(t.scale(-2.0), Time::ZERO);
    }
}
