//! Error type for task-model construction and validation.

use std::error::Error;
use std::fmt;

use crate::{TaskId, Time};

/// Errors produced while constructing or validating tasks and task sets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TaskError {
    /// The worst-case execution time is zero.
    ZeroWcet {
        /// Offending task.
        task: TaskId,
    },
    /// The period (minimum inter-arrival time) is zero.
    ZeroPeriod {
        /// Offending task.
        task: TaskId,
    },
    /// The worst-case execution time exceeds the relative deadline.
    WcetExceedsDeadline {
        /// Offending task.
        task: TaskId,
        /// Worst-case execution time.
        wcet: Time,
        /// Relative deadline.
        deadline: Time,
    },
    /// The relative deadline exceeds the period (arbitrary deadlines are not
    /// supported by the analyses in this workspace).
    DeadlineExceedsPeriod {
        /// Offending task.
        task: TaskId,
        /// Relative deadline.
        deadline: Time,
        /// Period.
        period: Time,
    },
    /// Two tasks in the same set share an identifier.
    DuplicateTaskId {
        /// The duplicated identifier.
        task: TaskId,
    },
    /// A generator was asked for an impossible configuration.
    InvalidGeneratorConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A numeric parameter that must be finite was NaN or infinite. Raised
    /// instead of letting the value poison downstream arithmetic (a NaN
    /// utilization target slips past ordinary range checks because every
    /// comparison with NaN is false).
    NonFiniteParameter {
        /// Which parameter was non-finite (e.g. `"total utilization"`).
        parameter: &'static str,
        /// The offending value, formatted (`"NaN"`, `"inf"`, ...); kept as a
        /// string so the error type stays `Eq`.
        value: String,
    },
    /// The working-set byte range is empty (`min > max`). Raised instead of
    /// silently sampling from the lower bound only.
    InvalidWorkingSetRange {
        /// Configured lower bound in bytes.
        min_bytes: u64,
        /// Configured upper bound in bytes.
        max_bytes: u64,
    },
}

impl TaskError {
    /// Builds a [`TaskError::NonFiniteParameter`] for `value`, formatting it
    /// for display.
    pub fn non_finite(parameter: &'static str, value: f64) -> Self {
        TaskError::NonFiniteParameter {
            parameter,
            value: format!("{value}"),
        }
    }
}

impl fmt::Display for TaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskError::ZeroWcet { task } => {
                write!(f, "task {task} has a zero worst-case execution time")
            }
            TaskError::ZeroPeriod { task } => write!(f, "task {task} has a zero period"),
            TaskError::WcetExceedsDeadline {
                task,
                wcet,
                deadline,
            } => write!(
                f,
                "task {task} has wcet {wcet} larger than its relative deadline {deadline}"
            ),
            TaskError::DeadlineExceedsPeriod {
                task,
                deadline,
                period,
            } => write!(
                f,
                "task {task} has relative deadline {deadline} larger than its period {period}"
            ),
            TaskError::DuplicateTaskId { task } => {
                write!(
                    f,
                    "task identifier {task} appears more than once in the task set"
                )
            }
            TaskError::InvalidGeneratorConfig { reason } => {
                write!(f, "invalid task-set generator configuration: {reason}")
            }
            TaskError::NonFiniteParameter { parameter, value } => {
                write!(f, "{parameter} must be finite, got {value}")
            }
            TaskError::InvalidWorkingSetRange {
                min_bytes,
                max_bytes,
            } => write!(
                f,
                "working-set range is empty: min {min_bytes} B exceeds max {max_bytes} B"
            ),
        }
    }
}

impl Error for TaskError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            TaskError::ZeroWcet { task: TaskId(1) },
            TaskError::ZeroPeriod { task: TaskId(2) },
            TaskError::WcetExceedsDeadline {
                task: TaskId(3),
                wcet: Time::from_micros(10),
                deadline: Time::from_micros(5),
            },
            TaskError::DeadlineExceedsPeriod {
                task: TaskId(4),
                deadline: Time::from_micros(10),
                period: Time::from_micros(5),
            },
            TaskError::DuplicateTaskId { task: TaskId(5) },
            TaskError::InvalidGeneratorConfig {
                reason: "n must be positive".to_owned(),
            },
            TaskError::non_finite("total utilization", f64::NAN),
            TaskError::InvalidWorkingSetRange {
                min_bytes: 4096,
                max_bytes: 1024,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TaskError>();
    }
}
