//! Random task-set generation for the acceptance-ratio experiments.
//!
//! The paper evaluates FP-TS against FFD and WFD "with randomly generated task
//! sets" (§4). The companion RTAS 2010 paper uses the standard recipe from the
//! multiprocessor schedulability literature:
//!
//! * draw `n` per-task utilizations summing to a target `U_total` with
//!   UUniFast / UUniFast-discard,
//! * draw periods log-uniformly from a range (10 ms – 1 s here),
//! * derive `C_i = u_i · T_i`.
//!
//! This module implements that recipe behind a seedable, reproducible
//! [`TaskSetGenerator`] builder.

use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::{PriorityAssignment, Task, TaskError, TaskSet, Time};

/// How individual task utilizations are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UtilizationDistribution {
    /// UUniFast (Bini & Buttazzo 2005): unbiased uniform distribution of `n`
    /// utilizations summing to the target. Only valid for targets ≤ n.
    /// Individual utilizations may exceed 1.0 when the target exceeds 1.0;
    /// combine with [`UtilizationDistribution::UUniFastDiscard`] to avoid that.
    UUniFast,
    /// UUniFast with rejection of any vector containing a task utilization
    /// above `max_task_utilization` (Davis & Burns): the standard recipe for
    /// multiprocessor experiments where the total utilization exceeds 1.
    UUniFastDiscard {
        /// Upper bound on any individual task utilization (usually 1.0).
        max_task_utilization: f64,
    },
    /// Independent uniform utilizations in `[min, max]`, not normalised to a
    /// target total. Useful for per-task-utilization sweeps.
    Uniform {
        /// Lower bound of each task's utilization.
        min: f64,
        /// Upper bound of each task's utilization.
        max: f64,
    },
}

/// How task periods are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PeriodDistribution {
    /// Log-uniform in `[min, max]` — the usual choice because it exercises a
    /// wide range of period magnitudes (and therefore preemption patterns).
    LogUniform {
        /// Shortest period.
        min: Time,
        /// Longest period.
        max: Time,
    },
    /// Uniform in `[min, max]`.
    Uniform {
        /// Shortest period.
        min: Time,
        /// Longest period.
        max: Time,
    },
    /// Drawn uniformly from an explicit list of candidate periods (harmonic
    /// sets, for instance).
    Choice {
        /// Candidate periods; must be non-empty.
        periods: Vec<Time>,
    },
}

impl PeriodDistribution {
    fn validate(&self) -> Result<(), TaskError> {
        match self {
            PeriodDistribution::LogUniform { min, max }
            | PeriodDistribution::Uniform { min, max } => {
                if min.is_zero() || max < min {
                    Err(TaskError::InvalidGeneratorConfig {
                        reason: format!("invalid period range [{min}, {max}]"),
                    })
                } else {
                    Ok(())
                }
            }
            PeriodDistribution::Choice { periods } => {
                if periods.is_empty() || periods.iter().any(|p| p.is_zero()) {
                    Err(TaskError::InvalidGeneratorConfig {
                        reason: "period choice list must be non-empty and non-zero".to_owned(),
                    })
                } else {
                    Ok(())
                }
            }
        }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> Time {
        match self {
            PeriodDistribution::LogUniform { min, max } => {
                let lo = (min.as_nanos() as f64).ln();
                let hi = (max.as_nanos() as f64).ln();
                let v = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                Time::from_nanos(v.exp().round() as u64)
            }
            PeriodDistribution::Uniform { min, max } => {
                let v = rng.gen_range(min.as_nanos()..=max.as_nanos());
                Time::from_nanos(v)
            }
            PeriodDistribution::Choice { periods } => {
                let idx = rng.gen_range(0..periods.len());
                periods[idx]
            }
        }
    }
}

/// Seedable random task-set generator.
///
/// # Example
///
/// ```
/// use spms_task::{TaskSetGenerator, PeriodDistribution, UtilizationDistribution, Time};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let gen = TaskSetGenerator::new()
///     .task_count(16)
///     .total_utilization(3.2)
///     .utilization_distribution(UtilizationDistribution::UUniFastDiscard {
///         max_task_utilization: 1.0,
///     })
///     .period_distribution(PeriodDistribution::LogUniform {
///         min: Time::from_millis(10),
///         max: Time::from_secs(1),
///     })
///     .seed(42);
/// let ts = gen.generate()?;
/// assert_eq!(ts.len(), 16);
/// assert!((ts.total_utilization() - 3.2).abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskSetGenerator {
    task_count: usize,
    total_utilization: f64,
    utilization_distribution: UtilizationDistribution,
    period_distribution: PeriodDistribution,
    period_granularity: Time,
    priority_assignment: PriorityAssignment,
    working_set_range: Option<(u64, u64)>,
    seed: u64,
}

impl Default for TaskSetGenerator {
    fn default() -> Self {
        TaskSetGenerator {
            task_count: 8,
            total_utilization: 2.0,
            utilization_distribution: UtilizationDistribution::UUniFastDiscard {
                max_task_utilization: 1.0,
            },
            period_distribution: PeriodDistribution::LogUniform {
                min: Time::from_millis(10),
                max: Time::from_secs(1),
            },
            period_granularity: Time::from_micros(100),
            priority_assignment: PriorityAssignment::RateMonotonic,
            working_set_range: None,
            seed: 0,
        }
    }
}

impl TaskSetGenerator {
    /// Creates a generator with the default experiment configuration
    /// (8 tasks, total utilization 2.0, UUniFast-discard, log-uniform periods
    /// between 10 ms and 1 s, rate-monotonic priorities, seed 0).
    pub fn new() -> Self {
        TaskSetGenerator::default()
    }

    /// Sets the number of tasks per generated set.
    pub fn task_count(mut self, n: usize) -> Self {
        self.task_count = n;
        self
    }

    /// Sets the target total utilization of each generated set.
    pub fn total_utilization(mut self, u: f64) -> Self {
        self.total_utilization = u;
        self
    }

    /// Sets how per-task utilizations are drawn.
    pub fn utilization_distribution(mut self, d: UtilizationDistribution) -> Self {
        self.utilization_distribution = d;
        self
    }

    /// Sets how periods are drawn.
    pub fn period_distribution(mut self, d: PeriodDistribution) -> Self {
        self.period_distribution = d;
        self
    }

    /// Rounds generated periods down to a multiple of this granularity
    /// (default 100 µs) so hyperperiods stay manageable for simulation.
    pub fn period_granularity(mut self, g: Time) -> Self {
        self.period_granularity = g;
        self
    }

    /// Sets the priority-assignment policy applied to each generated set.
    pub fn priority_assignment(mut self, p: PriorityAssignment) -> Self {
        self.priority_assignment = p;
        self
    }

    /// When set, each task receives a working-set size drawn log-uniformly
    /// from `[min_bytes, max_bytes]`, for use by the cache-overhead model.
    pub fn working_set_range(mut self, min_bytes: u64, max_bytes: u64) -> Self {
        self.working_set_range = Some((min_bytes, max_bytes));
        self
    }

    /// Sets the RNG seed; two generators with equal configuration and seed
    /// produce identical task sets.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates a single task set.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when the configuration is
    /// inconsistent (zero tasks, non-positive utilization, utilization target
    /// unreachable under the per-task cap, empty period list, ...).
    pub fn generate(&self) -> Result<TaskSet, TaskError> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.generate_with(&mut rng)
    }

    /// Generates `count` task sets, each with a distinct derived seed.
    ///
    /// # Errors
    ///
    /// Propagates the first generation error encountered.
    pub fn generate_many(&self, count: usize) -> Result<Vec<TaskSet>, TaskError> {
        (0..count)
            .map(|i| {
                let cfg = self.clone().seed(
                    self.seed
                        .wrapping_add(i as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i as u64),
                );
                cfg.generate()
            })
            .collect()
    }

    /// Generates a task set using a caller-provided random-number generator.
    ///
    /// # Errors
    ///
    /// Same as [`TaskSetGenerator::generate`].
    pub fn generate_with<R: Rng>(&self, rng: &mut R) -> Result<TaskSet, TaskError> {
        self.validate()?;
        let utilizations = self.draw_utilizations(rng)?;
        let mut ts = TaskSet::with_capacity(self.task_count);
        let ws_sampler = self.working_set_range.map(|(lo, hi)| {
            let lo = (lo.max(1)) as f64;
            let hi = (hi.max(1)) as f64;
            (lo.ln(), hi.ln())
        });
        for (i, u) in utilizations.into_iter().enumerate() {
            let period = self.quantize_period(self.period_distribution.sample(rng));
            // C_i = u_i * T_i, at least one nanosecond so the task is well formed.
            let wcet = period.scale(u).max(Time::from_nanos(1));
            let wcet = wcet.min(period);
            let mut builder = Task::builder(i as u32).wcet(wcet).period(period);
            if let Some((lo_ln, hi_ln)) = ws_sampler {
                let v = if hi_ln > lo_ln {
                    rng.gen_range(lo_ln..=hi_ln)
                } else {
                    lo_ln
                };
                builder = builder.working_set_bytes(v.exp().round() as u64);
            }
            ts.push(builder.build()?);
        }
        ts.assign_priorities(self.priority_assignment);
        Ok(ts)
    }

    fn quantize_period(&self, p: Time) -> Time {
        if self.period_granularity.is_zero() {
            return p;
        }
        let g = self.period_granularity;
        let quantized = Time::from_nanos((p.as_nanos() / g.as_nanos()) * g.as_nanos());
        quantized.max(g)
    }

    fn validate(&self) -> Result<(), TaskError> {
        if self.task_count == 0 {
            return Err(TaskError::InvalidGeneratorConfig {
                reason: "task count must be positive".to_owned(),
            });
        }
        self.period_distribution.validate()?;
        if let Some((min_bytes, max_bytes)) = self.working_set_range {
            if min_bytes > max_bytes {
                return Err(TaskError::InvalidWorkingSetRange {
                    min_bytes,
                    max_bytes,
                });
            }
        }
        match self.utilization_distribution {
            UtilizationDistribution::UUniFast => {
                if !self.total_utilization.is_finite() {
                    return Err(TaskError::non_finite(
                        "total utilization",
                        self.total_utilization,
                    ));
                }
                if self.total_utilization <= 0.0 {
                    return Err(TaskError::InvalidGeneratorConfig {
                        reason: "total utilization must be positive".to_owned(),
                    });
                }
            }
            UtilizationDistribution::UUniFastDiscard {
                max_task_utilization,
            } => {
                if !self.total_utilization.is_finite() {
                    return Err(TaskError::non_finite(
                        "total utilization",
                        self.total_utilization,
                    ));
                }
                if !max_task_utilization.is_finite() {
                    return Err(TaskError::non_finite(
                        "per-task utilization cap",
                        max_task_utilization,
                    ));
                }
                if self.total_utilization <= 0.0 {
                    return Err(TaskError::InvalidGeneratorConfig {
                        reason: "total utilization must be positive".to_owned(),
                    });
                }
                if max_task_utilization <= 0.0 || max_task_utilization > 1.0 {
                    return Err(TaskError::InvalidGeneratorConfig {
                        reason: "per-task utilization cap must be in (0, 1]".to_owned(),
                    });
                }
                if self.total_utilization > self.task_count as f64 * max_task_utilization {
                    return Err(TaskError::InvalidGeneratorConfig {
                        reason: format!(
                            "total utilization {} unreachable with {} tasks capped at {}",
                            self.total_utilization, self.task_count, max_task_utilization
                        ),
                    });
                }
            }
            UtilizationDistribution::Uniform { min, max } => {
                if !min.is_finite() || !max.is_finite() {
                    return Err(TaskError::non_finite(
                        "per-task utilization range bound",
                        if min.is_finite() { max } else { min },
                    ));
                }
                if !(0.0..=1.0).contains(&min) || !(0.0..=1.0).contains(&max) || max < min {
                    return Err(TaskError::InvalidGeneratorConfig {
                        reason: format!("invalid per-task utilization range [{min}, {max}]"),
                    });
                }
            }
        }
        Ok(())
    }

    fn draw_utilizations<R: Rng>(&self, rng: &mut R) -> Result<Vec<f64>, TaskError> {
        match self.utilization_distribution {
            UtilizationDistribution::UUniFast => {
                Ok(uunifast(self.task_count, self.total_utilization, rng))
            }
            UtilizationDistribution::UUniFastDiscard {
                max_task_utilization,
            } => {
                // Rejection sampling; the validity check above guarantees the
                // target is reachable, but extremely tight targets may need
                // many attempts — cap them to stay responsive.
                const MAX_ATTEMPTS: usize = 10_000;
                for _ in 0..MAX_ATTEMPTS {
                    let us = uunifast(self.task_count, self.total_utilization, rng);
                    if us.iter().all(|&u| u <= max_task_utilization) {
                        return Ok(us);
                    }
                }
                Err(TaskError::InvalidGeneratorConfig {
                    reason: format!(
                        "could not draw {} utilizations summing to {} under cap {} after {} attempts",
                        self.task_count, self.total_utilization, max_task_utilization, MAX_ATTEMPTS
                    ),
                })
            }
            UtilizationDistribution::Uniform { min, max } => {
                let dist = Uniform::new_inclusive(min.max(1e-6), max.max(min.max(1e-6)));
                Ok((0..self.task_count).map(|_| dist.sample(rng)).collect())
            }
        }
    }
}

/// The UUniFast algorithm (Bini & Buttazzo, 2005): draws `n` non-negative
/// utilizations that sum exactly to `total`, uniformly over the simplex.
pub fn uunifast<R: Rng>(n: usize, total: f64, rng: &mut R) -> Vec<f64> {
    let mut utilizations = Vec::with_capacity(n);
    let mut sum = total;
    for i in 1..n {
        let exp = 1.0 / (n - i) as f64;
        let next: f64 = sum * rng.gen::<f64>().powf(exp);
        utilizations.push(sum - next);
        sum = next;
    }
    utilizations.push(sum);
    utilizations
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uunifast_sums_to_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &target in &[0.5, 1.0, 2.7, 3.9] {
            let us = uunifast(10, target, &mut rng);
            assert_eq!(us.len(), 10);
            let sum: f64 = us.iter().sum();
            assert!((sum - target).abs() < 1e-9, "sum {sum} target {target}");
            assert!(us.iter().all(|&u| u >= 0.0));
        }
    }

    #[test]
    fn generator_is_deterministic_for_a_seed() {
        let gen = TaskSetGenerator::new()
            .task_count(12)
            .total_utilization(3.0)
            .seed(7);
        let a = gen.generate().unwrap();
        let b = gen.generate().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TaskSetGenerator::new().seed(1).generate().unwrap();
        let b = TaskSetGenerator::new().seed(2).generate().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn generated_set_matches_target_utilization() {
        let gen = TaskSetGenerator::new()
            .task_count(20)
            .total_utilization(3.5)
            .seed(99);
        let ts = gen.generate().unwrap();
        assert_eq!(ts.len(), 20);
        // Quantisation of periods and the 1 ns WCET floor introduce tiny error.
        assert!((ts.total_utilization() - 3.5).abs() < 0.05);
        assert!(ts.max_utilization() <= 1.0 + 1e-9);
        ts.validate().unwrap();
    }

    #[test]
    fn priorities_are_assigned() {
        let ts = TaskSetGenerator::new().seed(3).generate().unwrap();
        assert!(ts.iter().all(|t| t.priority().is_some()));
    }

    #[test]
    fn periods_respect_bounds_and_granularity() {
        let min = Time::from_millis(10);
        let max = Time::from_secs(1);
        let gen = TaskSetGenerator::new()
            .task_count(50)
            .total_utilization(2.0)
            .period_distribution(PeriodDistribution::LogUniform { min, max })
            .period_granularity(Time::from_millis(1))
            .seed(5);
        let ts = gen.generate().unwrap();
        for t in &ts {
            assert!(t.period() >= Time::from_millis(1));
            assert!(t.period() <= max);
            assert_eq!(t.period().as_nanos() % Time::from_millis(1).as_nanos(), 0);
        }
    }

    #[test]
    fn choice_periods_only_use_candidates() {
        let periods = vec![
            Time::from_millis(10),
            Time::from_millis(20),
            Time::from_millis(40),
        ];
        let gen = TaskSetGenerator::new()
            .task_count(30)
            .total_utilization(2.0)
            .period_distribution(PeriodDistribution::Choice {
                periods: periods.clone(),
            })
            .period_granularity(Time::ZERO)
            .seed(11);
        let ts = gen.generate().unwrap();
        for t in &ts {
            assert!(periods.contains(&t.period()));
        }
    }

    #[test]
    fn uniform_utilization_draws_within_range() {
        let gen = TaskSetGenerator::new()
            .task_count(40)
            .utilization_distribution(UtilizationDistribution::Uniform { min: 0.1, max: 0.3 })
            .seed(13);
        let ts = gen.generate().unwrap();
        for t in &ts {
            assert!(t.utilization() <= 0.3 + 0.05);
        }
    }

    #[test]
    fn working_set_range_is_respected() {
        let gen = TaskSetGenerator::new()
            .task_count(25)
            .working_set_range(4 * 1024, 512 * 1024)
            .seed(17);
        let ts = gen.generate().unwrap();
        for t in &ts {
            let ws = t.working_set_bytes().expect("working set generated");
            assert!(ws >= 4 * 1024);
            assert!(ws <= 512 * 1024 + 1);
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(TaskSetGenerator::new().task_count(0).generate().is_err());
        assert!(TaskSetGenerator::new()
            .total_utilization(-1.0)
            .generate()
            .is_err());
        assert!(TaskSetGenerator::new()
            .task_count(2)
            .total_utilization(3.0)
            .generate()
            .is_err());
        assert!(TaskSetGenerator::new()
            .utilization_distribution(UtilizationDistribution::UUniFastDiscard {
                max_task_utilization: 1.5,
            })
            .generate()
            .is_err());
        assert!(TaskSetGenerator::new()
            .period_distribution(PeriodDistribution::Choice { periods: vec![] })
            .generate()
            .is_err());
        assert!(TaskSetGenerator::new()
            .period_distribution(PeriodDistribution::Uniform {
                min: Time::from_millis(10),
                max: Time::from_millis(1),
            })
            .generate()
            .is_err());
    }

    #[test]
    fn non_finite_parameters_get_typed_errors() {
        for bad in [f64::NAN, f64::INFINITY] {
            assert!(matches!(
                TaskSetGenerator::new().total_utilization(bad).generate(),
                Err(TaskError::NonFiniteParameter { .. })
            ));
            assert!(matches!(
                TaskSetGenerator::new()
                    .utilization_distribution(UtilizationDistribution::UUniFast)
                    .total_utilization(bad)
                    .generate(),
                Err(TaskError::NonFiniteParameter { .. })
            ));
            assert!(matches!(
                TaskSetGenerator::new()
                    .utilization_distribution(UtilizationDistribution::UUniFastDiscard {
                        max_task_utilization: bad,
                    })
                    .generate(),
                Err(TaskError::NonFiniteParameter { .. })
            ));
            assert!(matches!(
                TaskSetGenerator::new()
                    .utilization_distribution(UtilizationDistribution::Uniform {
                        min: 0.1,
                        max: bad,
                    })
                    .generate(),
                Err(TaskError::NonFiniteParameter { .. })
            ));
        }
    }

    #[test]
    fn empty_working_set_range_is_a_typed_error() {
        assert_eq!(
            TaskSetGenerator::new()
                .working_set_range(4096, 1024)
                .generate()
                .unwrap_err(),
            TaskError::InvalidWorkingSetRange {
                min_bytes: 4096,
                max_bytes: 1024,
            }
        );
    }

    #[test]
    fn generate_many_produces_distinct_sets() {
        let sets = TaskSetGenerator::new().seed(23).generate_many(5).unwrap();
        assert_eq!(sets.len(), 5);
        for w in sets.windows(2) {
            assert_ne!(w[0], w[1]);
        }
    }

    #[test]
    fn generate_with_external_rng() {
        let gen = TaskSetGenerator::new().task_count(4);
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let ts = gen.generate_with(&mut rng).unwrap();
        assert_eq!(ts.len(), 4);
    }
}
