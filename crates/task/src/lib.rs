//! # spms-task
//!
//! Sporadic/periodic real-time task model, task-set generation and priority
//! assignment for the semi-partitioned multi-core scheduling (SPMS) workspace.
//!
//! This crate is the foundation of the reproduction of *"Towards the
//! Implementation and Evaluation of Semi-Partitioned Multi-Core Scheduling"*
//! (Zhang, Guan, Yi — PPES 2011). It provides:
//!
//! * [`Time`] — a nanosecond-resolution fixed-point time type used throughout
//!   the workspace (the paper reports overheads in microseconds; nanoseconds
//!   give enough headroom to express both overheads and hyperperiods),
//! * [`Task`], [`TaskSet`] — the sporadic task model `τ_i = (C_i, T_i, D_i)`,
//! * [`Priority`] and rate-/deadline-monotonic priority assignment,
//! * [`generator`] — random task-set generation (UUniFast, UUniFast-discard,
//!   log-uniform periods) used by the acceptance-ratio experiments.
//!
//! # Example
//!
//! ```
//! use spms_task::{Task, TaskSet, Time, PriorityAssignment};
//!
//! # fn main() -> Result<(), spms_task::TaskError> {
//! let mut ts = TaskSet::new();
//! ts.push(Task::new(0, Time::from_millis(2), Time::from_millis(10))?);
//! ts.push(Task::new(1, Time::from_millis(5), Time::from_millis(20))?);
//! ts.assign_priorities(PriorityAssignment::RateMonotonic);
//! assert!(ts.total_utilization() < 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod generator;
mod priority;
mod task;
mod task_set;
mod time;

pub use error::TaskError;
pub use generator::{PeriodDistribution, TaskSetGenerator, UtilizationDistribution};
pub use priority::{Priority, PriorityAssignment};
pub use task::{Task, TaskBuilder, TaskId};
pub use task_set::TaskSet;
pub use time::Time;
