//! Fixed-priority levels and priority-assignment policies.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A fixed priority level.
///
/// Lower numeric values denote *higher* priority, matching the index-based
/// convention used in the rate-monotonic literature (τ1 is the highest-priority
/// task) and by the FP-TS splitting algorithm of Guan et al. (RTAS 2010) which
/// the paper adopts.
///
/// # Example
///
/// ```
/// use spms_task::Priority;
///
/// let high = Priority::new(0);
/// let low = Priority::new(7);
/// assert!(high.is_higher_than(low));
/// assert!(high < low); // Ord follows the numeric value
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct Priority(u32);

impl Priority {
    /// The highest expressible priority.
    pub const HIGHEST: Priority = Priority(0);
    /// The lowest expressible priority.
    pub const LOWEST: Priority = Priority(u32::MAX);

    /// Creates a priority from its numeric level (0 = highest).
    #[inline]
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// The numeric level (0 = highest).
    #[inline]
    pub const fn level(self) -> u32 {
        self.0
    }

    /// Whether `self` denotes a strictly higher priority than `other`.
    #[inline]
    pub const fn is_higher_than(self, other: Priority) -> bool {
        self.0 < other.0
    }

    /// Whether `self` denotes a strictly lower priority than `other`.
    #[inline]
    pub const fn is_lower_than(self, other: Priority) -> bool {
        self.0 > other.0
    }

    /// The next lower priority level (saturating).
    #[inline]
    pub const fn lower(self) -> Priority {
        Priority(self.0.saturating_add(1))
    }

    /// The next higher priority level (saturating at the highest level).
    #[inline]
    pub const fn higher(self) -> Priority {
        Priority(self.0.saturating_sub(1))
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for Priority {
    fn from(level: u32) -> Self {
        Priority(level)
    }
}

impl From<Priority> for u32 {
    fn from(p: Priority) -> Self {
        p.0
    }
}

/// A policy for assigning fixed priorities to a task set.
///
/// The paper's FP-TS scheduler is based on rate-monotonic scheduling, so
/// [`PriorityAssignment::RateMonotonic`] is the default everywhere in the
/// workspace; deadline-monotonic assignment is provided for constrained
/// deadline experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum PriorityAssignment {
    /// Shorter period ⇒ higher priority (ties broken by task id).
    #[default]
    RateMonotonic,
    /// Shorter relative deadline ⇒ higher priority (ties broken by task id).
    DeadlineMonotonic,
    /// Keep the priorities already stored on the tasks; tasks without a
    /// priority keep their relative order after all prioritised tasks.
    Explicit,
}

impl fmt::Display for PriorityAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PriorityAssignment::RateMonotonic => write!(f, "rate-monotonic"),
            PriorityAssignment::DeadlineMonotonic => write!(f, "deadline-monotonic"),
            PriorityAssignment::Explicit => write!(f, "explicit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_numeric_level() {
        assert!(Priority::new(0) < Priority::new(1));
        assert!(Priority::new(0).is_higher_than(Priority::new(1)));
        assert!(Priority::new(5).is_lower_than(Priority::new(2)));
    }

    #[test]
    fn higher_and_lower_saturate() {
        assert_eq!(Priority::HIGHEST.higher(), Priority::HIGHEST);
        assert_eq!(Priority::LOWEST.lower(), Priority::LOWEST);
        assert_eq!(Priority::new(3).lower(), Priority::new(4));
        assert_eq!(Priority::new(3).higher(), Priority::new(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Priority::new(3).to_string(), "P3");
        assert_eq!(
            PriorityAssignment::RateMonotonic.to_string(),
            "rate-monotonic"
        );
    }

    #[test]
    fn conversions_roundtrip() {
        let p: Priority = 9u32.into();
        let level: u32 = p.into();
        assert_eq!(level, 9);
    }
}
