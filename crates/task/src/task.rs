//! The sporadic task abstraction.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Priority, TaskError, Time};

/// Identifier of a task within a [`TaskSet`](crate::TaskSet).
///
/// Identifiers are plain integers chosen by the caller (the generators use the
/// task's index). They must be unique within a task set; uniqueness is checked
/// by [`TaskSet::validate`](crate::TaskSet::validate).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "τ{}", self.0)
    }
}

impl From<u32> for TaskId {
    fn from(id: u32) -> Self {
        TaskId(id)
    }
}

impl From<TaskId> for u32 {
    fn from(id: TaskId) -> Self {
        id.0
    }
}

impl From<TaskId> for usize {
    fn from(id: TaskId) -> Self {
        id.0 as usize
    }
}

/// A sporadic real-time task `τ_i = (C_i, T_i, D_i)`.
///
/// * `wcet` — worst-case execution time `C_i`,
/// * `period` — minimum inter-arrival time `T_i`,
/// * `deadline` — relative deadline `D_i` (implicit deadlines, `D_i = T_i`,
///   unless set explicitly; constrained deadlines `D_i ≤ T_i` are supported),
/// * `priority` — fixed priority, assigned by a
///   [`PriorityAssignment`](crate::PriorityAssignment) policy,
/// * `working_set_bytes` — the size of the task's cache working set, used by
///   the cache-related overhead model (paper §3, "cache" overhead).
///
/// # Example
///
/// ```
/// use spms_task::{Task, Time};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let t = Task::builder(3)
///     .wcet(Time::from_millis(2))
///     .period(Time::from_millis(10))
///     .working_set_bytes(64 * 1024)
///     .build()?;
/// assert!((t.utilization() - 0.2).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Task {
    id: TaskId,
    wcet: Time,
    period: Time,
    deadline: Time,
    priority: Option<Priority>,
    working_set_bytes: Option<u64>,
}

impl Task {
    /// Creates an implicit-deadline task (`D_i = T_i`).
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::ZeroWcet`], [`TaskError::ZeroPeriod`] or
    /// [`TaskError::WcetExceedsDeadline`] when the parameters are inconsistent.
    pub fn new(id: impl Into<TaskId>, wcet: Time, period: Time) -> Result<Self, TaskError> {
        Task::builder(id).wcet(wcet).period(period).build()
    }

    /// Starts building a task with the given identifier.
    pub fn builder(id: impl Into<TaskId>) -> TaskBuilder {
        TaskBuilder::new(id)
    }

    /// The task identifier.
    #[inline]
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Worst-case execution time `C_i`.
    #[inline]
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Minimum inter-arrival time (period) `T_i`.
    #[inline]
    pub fn period(&self) -> Time {
        self.period
    }

    /// Relative deadline `D_i`.
    #[inline]
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// The task's fixed priority, if one has been assigned.
    #[inline]
    pub fn priority(&self) -> Option<Priority> {
        self.priority
    }

    /// The task's cache working-set size in bytes, if modelled.
    #[inline]
    pub fn working_set_bytes(&self) -> Option<u64> {
        self.working_set_bytes
    }

    /// Utilization `U_i = C_i / T_i`.
    #[inline]
    pub fn utilization(&self) -> f64 {
        self.wcet.ratio(self.period)
    }

    /// Density `C_i / D_i` (equals utilization for implicit deadlines).
    #[inline]
    pub fn density(&self) -> f64 {
        self.wcet.ratio(self.deadline)
    }

    /// Whether the deadline equals the period.
    #[inline]
    pub fn has_implicit_deadline(&self) -> bool {
        self.deadline == self.period
    }

    /// Sets the task priority. Used by priority-assignment policies and by
    /// the splitting algorithms when promoting body subtasks.
    #[inline]
    pub fn set_priority(&mut self, priority: Priority) {
        self.priority = Some(priority);
    }

    /// Removes any assigned priority.
    #[inline]
    pub fn clear_priority(&mut self) {
        self.priority = None;
    }

    /// Sets the modelled cache working-set size.
    #[inline]
    pub fn set_working_set_bytes(&mut self, bytes: u64) {
        self.working_set_bytes = Some(bytes);
    }

    /// Returns a copy of this task with a different worst-case execution time.
    ///
    /// This is the primitive used both by task splitting (a subtask is the
    /// parent task with a smaller budget) and by overhead-aware WCET inflation.
    ///
    /// # Errors
    ///
    /// Returns an error if the new WCET violates the task's deadline or is zero.
    pub fn with_wcet(&self, wcet: Time) -> Result<Task, TaskError> {
        let mut b = TaskBuilder::from_task(self);
        b = b.wcet(wcet);
        b.build()
    }

    /// Returns a copy of this task with a different relative deadline.
    ///
    /// # Errors
    ///
    /// Returns an error if the new deadline is smaller than the WCET or larger
    /// than the period.
    pub fn with_deadline(&self, deadline: Time) -> Result<Task, TaskError> {
        let mut b = TaskBuilder::from_task(self);
        b = b.deadline(deadline);
        b.build()
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(C={}, T={}, D={})",
            self.id, self.wcet, self.period, self.deadline
        )
    }
}

/// Builder for [`Task`] values.
///
/// Obtained from [`Task::builder`]. The builder validates the parameters when
/// [`TaskBuilder::build`] is called.
#[derive(Debug, Clone)]
pub struct TaskBuilder {
    id: TaskId,
    wcet: Time,
    period: Time,
    deadline: Option<Time>,
    priority: Option<Priority>,
    working_set_bytes: Option<u64>,
}

impl TaskBuilder {
    fn new(id: impl Into<TaskId>) -> Self {
        TaskBuilder {
            id: id.into(),
            wcet: Time::ZERO,
            period: Time::ZERO,
            deadline: None,
            priority: None,
            working_set_bytes: None,
        }
    }

    fn from_task(task: &Task) -> Self {
        TaskBuilder {
            id: task.id,
            wcet: task.wcet,
            period: task.period,
            deadline: Some(task.deadline),
            priority: task.priority,
            working_set_bytes: task.working_set_bytes,
        }
    }

    /// Sets the worst-case execution time.
    pub fn wcet(mut self, wcet: Time) -> Self {
        self.wcet = wcet;
        self
    }

    /// Sets the period (minimum inter-arrival time).
    pub fn period(mut self, period: Time) -> Self {
        self.period = period;
        self
    }

    /// Sets a constrained relative deadline (defaults to the period).
    pub fn deadline(mut self, deadline: Time) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the fixed priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Sets the modelled cache working-set size in bytes.
    pub fn working_set_bytes(mut self, bytes: u64) -> Self {
        self.working_set_bytes = Some(bytes);
        self
    }

    /// Validates the parameters and builds the task.
    ///
    /// # Errors
    ///
    /// * [`TaskError::ZeroWcet`] if the WCET is zero,
    /// * [`TaskError::ZeroPeriod`] if the period is zero,
    /// * [`TaskError::WcetExceedsDeadline`] if `C > D`,
    /// * [`TaskError::DeadlineExceedsPeriod`] if `D > T`.
    pub fn build(self) -> Result<Task, TaskError> {
        if self.wcet.is_zero() {
            return Err(TaskError::ZeroWcet { task: self.id });
        }
        if self.period.is_zero() {
            return Err(TaskError::ZeroPeriod { task: self.id });
        }
        let deadline = self.deadline.unwrap_or(self.period);
        if self.wcet > deadline {
            return Err(TaskError::WcetExceedsDeadline {
                task: self.id,
                wcet: self.wcet,
                deadline,
            });
        }
        if deadline > self.period {
            return Err(TaskError::DeadlineExceedsPeriod {
                task: self.id,
                deadline,
                period: self.period,
            });
        }
        Ok(Task {
            id: self.id,
            wcet: self.wcet,
            period: self.period,
            deadline,
            priority: self.priority,
            working_set_bytes: self.working_set_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(wcet_us: u64, period_us: u64) -> Task {
        Task::new(0, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    #[test]
    fn implicit_deadline_defaults_to_period() {
        let t = task(2, 10);
        assert_eq!(t.deadline(), t.period());
        assert!(t.has_implicit_deadline());
    }

    #[test]
    fn utilization_and_density() {
        let t = Task::builder(1)
            .wcet(Time::from_micros(2))
            .period(Time::from_micros(10))
            .deadline(Time::from_micros(5))
            .build()
            .unwrap();
        assert!((t.utilization() - 0.2).abs() < 1e-12);
        assert!((t.density() - 0.4).abs() < 1e-12);
        assert!(!t.has_implicit_deadline());
    }

    #[test]
    fn zero_wcet_rejected() {
        let err = Task::new(7, Time::ZERO, Time::from_micros(10)).unwrap_err();
        assert_eq!(err, TaskError::ZeroWcet { task: TaskId(7) });
    }

    #[test]
    fn zero_period_rejected() {
        let err = Task::new(7, Time::from_micros(1), Time::ZERO).unwrap_err();
        assert_eq!(err, TaskError::ZeroPeriod { task: TaskId(7) });
    }

    #[test]
    fn wcet_larger_than_deadline_rejected() {
        let err = Task::builder(7)
            .wcet(Time::from_micros(6))
            .period(Time::from_micros(10))
            .deadline(Time::from_micros(5))
            .build()
            .unwrap_err();
        assert!(matches!(err, TaskError::WcetExceedsDeadline { .. }));
    }

    #[test]
    fn deadline_larger_than_period_rejected() {
        let err = Task::builder(7)
            .wcet(Time::from_micros(1))
            .period(Time::from_micros(10))
            .deadline(Time::from_micros(20))
            .build()
            .unwrap_err();
        assert!(matches!(err, TaskError::DeadlineExceedsPeriod { .. }));
    }

    #[test]
    fn with_wcet_preserves_other_fields() {
        let t = Task::builder(3)
            .wcet(Time::from_micros(2))
            .period(Time::from_micros(10))
            .priority(Priority::new(4))
            .working_set_bytes(1024)
            .build()
            .unwrap();
        let t2 = t.with_wcet(Time::from_micros(3)).unwrap();
        assert_eq!(t2.wcet(), Time::from_micros(3));
        assert_eq!(t2.period(), t.period());
        assert_eq!(t2.priority(), t.priority());
        assert_eq!(t2.working_set_bytes(), Some(1024));
    }

    #[test]
    fn with_deadline_validates() {
        let t = task(2, 10);
        assert!(t.with_deadline(Time::from_micros(1)).is_err());
        assert!(t.with_deadline(Time::from_micros(11)).is_err());
        let ok = t.with_deadline(Time::from_micros(6)).unwrap();
        assert_eq!(ok.deadline(), Time::from_micros(6));
    }

    #[test]
    fn priority_can_be_set_and_cleared() {
        let mut t = task(1, 10);
        assert_eq!(t.priority(), None);
        t.set_priority(Priority::new(2));
        assert_eq!(t.priority(), Some(Priority::new(2)));
        t.clear_priority();
        assert_eq!(t.priority(), None);
    }

    #[test]
    fn display_contains_parameters() {
        let s = task(2, 10).to_string();
        assert!(s.contains("τ0"));
        assert!(s.contains("C=2us"));
        assert!(s.contains("T=10us"));
    }

    #[test]
    fn serde_roundtrip() {
        let t = Task::builder(5)
            .wcet(Time::from_micros(3))
            .period(Time::from_micros(9))
            .priority(Priority::new(1))
            .build()
            .unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: Task = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
