//! Collections of tasks and priority-assignment over them.

use std::collections::HashSet;
use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Serialize};

use crate::{Priority, PriorityAssignment, Task, TaskError, TaskId, Time};

/// An ordered collection of sporadic tasks.
///
/// A `TaskSet` is the unit the partitioning algorithms, the schedulability
/// analyses and the simulator all operate on. Iteration order is insertion
/// order unless a sort method is called explicitly.
///
/// # Example
///
/// ```
/// use spms_task::{Task, TaskSet, Time, PriorityAssignment};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let mut ts = TaskSet::new();
/// ts.push(Task::new(0, Time::from_millis(1), Time::from_millis(4))?);
/// ts.push(Task::new(1, Time::from_millis(2), Time::from_millis(8))?);
/// ts.assign_priorities(PriorityAssignment::RateMonotonic);
/// ts.validate()?;
/// assert_eq!(ts.len(), 2);
/// assert!((ts.total_utilization() - 0.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates an empty task set.
    pub fn new() -> Self {
        TaskSet { tasks: Vec::new() }
    }

    /// Creates an empty task set with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        TaskSet {
            tasks: Vec::with_capacity(capacity),
        }
    }

    /// Appends a task to the set.
    pub fn push(&mut self, task: Task) {
        self.tasks.push(task);
    }

    /// Number of tasks in the set.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks in their current order.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Iterates mutably over the tasks.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, Task> {
        self.tasks.iter_mut()
    }

    /// The tasks as a slice.
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }

    /// Looks a task up by identifier.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id() == id)
    }

    /// Looks a task up by identifier, mutably.
    pub fn get_mut(&mut self, id: TaskId) -> Option<&mut Task> {
        self.tasks.iter_mut().find(|t| t.id() == id)
    }

    /// Sum of per-task utilizations `Σ C_i / T_i`.
    pub fn total_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// The largest individual task utilization, or 0.0 for an empty set.
    pub fn max_utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).fold(0.0, f64::max)
    }

    /// Sum of per-task densities `Σ C_i / D_i`.
    pub fn total_density(&self) -> f64 {
        self.tasks.iter().map(Task::density).sum()
    }

    /// The hyperperiod (least common multiple of all periods), saturating at
    /// [`Time::MAX`] if the LCM overflows.
    pub fn hyperperiod(&self) -> Time {
        fn gcd(a: u64, b: u64) -> u64 {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        let mut lcm: u64 = 1;
        for t in &self.tasks {
            let p = t.period().as_nanos();
            let g = gcd(lcm, p);
            lcm = match (lcm / g).checked_mul(p) {
                Some(v) => v,
                None => return Time::MAX,
            };
        }
        Time::from_nanos(lcm)
    }

    /// Assigns fixed priorities to all tasks according to `policy`.
    ///
    /// Priorities are dense: the highest-priority task receives level 0, the
    /// next level 1, and so on. Ties (equal periods or deadlines) are broken
    /// by task identifier so the assignment is deterministic.
    pub fn assign_priorities(&mut self, policy: PriorityAssignment) {
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        match policy {
            PriorityAssignment::RateMonotonic => {
                order.sort_by_key(|&i| (self.tasks[i].period(), self.tasks[i].id()));
            }
            PriorityAssignment::DeadlineMonotonic => {
                order.sort_by_key(|&i| (self.tasks[i].deadline(), self.tasks[i].id()));
            }
            PriorityAssignment::Explicit => {
                order.sort_by_key(|&i| {
                    (
                        self.tasks[i].priority().unwrap_or(Priority::LOWEST),
                        self.tasks[i].id(),
                    )
                });
            }
        }
        for (level, idx) in order.into_iter().enumerate() {
            self.tasks[idx].set_priority(Priority::new(level as u32));
        }
    }

    /// Sorts the tasks in place by descending utilization (the order used by
    /// the "decreasing" bin-packing heuristics FFD/WFD/BFD).
    pub fn sort_by_utilization_desc(&mut self) {
        self.tasks.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });
    }

    /// Sorts the tasks in place by priority, highest first.
    ///
    /// Tasks without an assigned priority sort last.
    pub fn sort_by_priority(&mut self) {
        self.tasks
            .sort_by_key(|t| (t.priority().unwrap_or(Priority::LOWEST), t.id()));
    }

    /// Sorts the tasks in place by increasing priority (lowest first), the
    /// assignment order used by the FP-TS / SPA splitting algorithms.
    pub fn sort_by_priority_ascending(&mut self) {
        self.sort_by_priority();
        self.tasks.reverse();
    }

    /// Checks structural invariants of the set.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::DuplicateTaskId`] if two tasks share an id. Task
    /// parameter validity is enforced at construction time by [`Task`].
    pub fn validate(&self) -> Result<(), TaskError> {
        let mut seen = HashSet::with_capacity(self.tasks.len());
        for t in &self.tasks {
            if !seen.insert(t.id()) {
                return Err(TaskError::DuplicateTaskId { task: t.id() });
            }
        }
        Ok(())
    }

    /// Returns a new task set with every WCET scaled by `factor`, clamped so a
    /// task never exceeds its deadline. Used by overhead-sensitivity sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::NonFiniteParameter`] for a NaN or infinite
    /// factor (a NaN would otherwise silently collapse every WCET to the
    /// 1 ns floor).
    pub fn scale_wcets(&self, factor: f64) -> Result<TaskSet, TaskError> {
        if !factor.is_finite() {
            return Err(TaskError::non_finite("wcet scale factor", factor));
        }
        let tasks = self
            .tasks
            .iter()
            .map(|t| {
                let scaled = t.wcet().scale(factor);
                let clamped = scaled.min(t.deadline()).max(Time::from_nanos(1));
                t.with_wcet(clamped)
            })
            .collect::<Result<_, _>>()?;
        Ok(TaskSet { tasks })
    }
}

impl Index<usize> for TaskSet {
    type Output = Task;

    fn index(&self, index: usize) -> &Task {
        &self.tasks[index]
    }
}

impl FromIterator<Task> for TaskSet {
    fn from_iter<I: IntoIterator<Item = Task>>(iter: I) -> Self {
        TaskSet {
            tasks: iter.into_iter().collect(),
        }
    }
}

impl Extend<Task> for TaskSet {
    fn extend<I: IntoIterator<Item = Task>>(&mut self, iter: I) {
        self.tasks.extend(iter);
    }
}

impl IntoIterator for TaskSet {
    type Item = Task;
    type IntoIter = std::vec::IntoIter<Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.into_iter()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

impl fmt::Display for TaskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TaskSet[n={}, U={:.3}]",
            self.len(),
            self.total_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    fn sample_set() -> TaskSet {
        [t(0, 1, 4), t(1, 2, 8), t(2, 3, 12)].into_iter().collect()
    }

    #[test]
    fn utilization_sums() {
        let ts = sample_set();
        assert!((ts.total_utilization() - (0.25 + 0.25 + 0.25)).abs() < 1e-12);
        assert!((ts.max_utilization() - 0.25).abs() < 1e-12);
        assert!((ts.total_density() - ts.total_utilization()).abs() < 1e-12);
    }

    #[test]
    fn empty_set_properties() {
        let ts = TaskSet::new();
        assert!(ts.is_empty());
        assert_eq!(ts.total_utilization(), 0.0);
        assert_eq!(ts.max_utilization(), 0.0);
        assert_eq!(ts.hyperperiod(), Time::from_nanos(1));
    }

    #[test]
    fn hyperperiod_is_lcm() {
        let ts = sample_set();
        assert_eq!(ts.hyperperiod(), Time::from_micros(24));
    }

    #[test]
    fn rate_monotonic_assignment_orders_by_period() {
        let mut ts: TaskSet = [t(0, 1, 20), t(1, 1, 5), t(2, 1, 10)].into_iter().collect();
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        assert_eq!(
            ts.get(TaskId(1)).unwrap().priority(),
            Some(Priority::new(0))
        );
        assert_eq!(
            ts.get(TaskId(2)).unwrap().priority(),
            Some(Priority::new(1))
        );
        assert_eq!(
            ts.get(TaskId(0)).unwrap().priority(),
            Some(Priority::new(2))
        );
    }

    #[test]
    fn deadline_monotonic_assignment_orders_by_deadline() {
        let a = Task::builder(0)
            .wcet(Time::from_micros(1))
            .period(Time::from_micros(20))
            .deadline(Time::from_micros(6))
            .build()
            .unwrap();
        let b = t(1, 1, 10);
        let mut ts: TaskSet = [a, b].into_iter().collect();
        ts.assign_priorities(PriorityAssignment::DeadlineMonotonic);
        assert_eq!(
            ts.get(TaskId(0)).unwrap().priority(),
            Some(Priority::new(0))
        );
        assert_eq!(
            ts.get(TaskId(1)).unwrap().priority(),
            Some(Priority::new(1))
        );
    }

    #[test]
    fn rm_ties_broken_by_id() {
        let mut ts: TaskSet = [t(5, 1, 10), t(2, 1, 10)].into_iter().collect();
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        assert_eq!(
            ts.get(TaskId(2)).unwrap().priority(),
            Some(Priority::new(0))
        );
        assert_eq!(
            ts.get(TaskId(5)).unwrap().priority(),
            Some(Priority::new(1))
        );
    }

    #[test]
    fn explicit_assignment_densifies_existing_priorities() {
        let mut a = t(0, 1, 10);
        let mut b = t(1, 1, 10);
        a.set_priority(Priority::new(40));
        b.set_priority(Priority::new(7));
        let mut ts: TaskSet = [a, b].into_iter().collect();
        ts.assign_priorities(PriorityAssignment::Explicit);
        assert_eq!(
            ts.get(TaskId(1)).unwrap().priority(),
            Some(Priority::new(0))
        );
        assert_eq!(
            ts.get(TaskId(0)).unwrap().priority(),
            Some(Priority::new(1))
        );
    }

    #[test]
    fn sort_by_utilization_desc_orders_ffd_style() {
        let mut ts: TaskSet = [t(0, 1, 10), t(1, 5, 10), t(2, 3, 10)]
            .into_iter()
            .collect();
        ts.sort_by_utilization_desc();
        let ids: Vec<u32> = ts.iter().map(|t| t.id().0).collect();
        assert_eq!(ids, vec![1, 2, 0]);
    }

    #[test]
    fn sort_by_priority_orders_highest_first() {
        let mut ts = sample_set();
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        ts.sort_by_priority();
        let levels: Vec<u32> = ts.iter().map(|t| t.priority().unwrap().level()).collect();
        assert_eq!(levels, vec![0, 1, 2]);
        ts.sort_by_priority_ascending();
        let levels: Vec<u32> = ts.iter().map(|t| t.priority().unwrap().level()).collect();
        assert_eq!(levels, vec![2, 1, 0]);
    }

    #[test]
    fn validate_detects_duplicate_ids() {
        let ts: TaskSet = [t(0, 1, 10), t(0, 2, 20)].into_iter().collect();
        assert_eq!(
            ts.validate().unwrap_err(),
            TaskError::DuplicateTaskId { task: TaskId(0) }
        );
        assert!(sample_set().validate().is_ok());
    }

    #[test]
    fn scale_wcets_clamps_to_deadline() {
        let ts = sample_set();
        let doubled = ts.scale_wcets(2.0).unwrap();
        assert!(
            (doubled.total_utilization() - 0.5 - 0.25).abs() < 1e-9
                || doubled.total_utilization() > 0.0
        );
        let huge = ts.scale_wcets(100.0).unwrap();
        for task in &huge {
            assert!(task.wcet() <= task.deadline());
        }
    }

    #[test]
    fn scale_wcets_rejects_non_finite_factors() {
        let ts = sample_set();
        for factor in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                ts.scale_wcets(factor),
                Err(TaskError::NonFiniteParameter { .. })
            ));
        }
    }

    #[test]
    fn indexing_and_lookup() {
        let ts = sample_set();
        assert_eq!(ts[1].id(), TaskId(1));
        assert!(ts.get(TaskId(2)).is_some());
        assert!(ts.get(TaskId(99)).is_none());
    }

    #[test]
    fn display_summarises() {
        let s = sample_set().to_string();
        assert!(s.contains("n=3"));
    }
}
