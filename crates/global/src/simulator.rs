//! A discrete-event simulator of global fixed-priority / global EDF
//! scheduling.
//!
//! The simulator keeps a single system-wide ready queue. At every scheduling
//! event (job release or job completion) the `m` highest-priority ready jobs
//! are placed on the `m` processors, preferring to keep a job on the
//! processor it last executed on so that the reported migration count
//! reflects only the migrations the policy actually forces. This is the
//! classic work-conserving global scheduler that the paper's introduction
//! contrasts with partitioned approaches: it never idles a processor while a
//! job is ready, but pays for that with job-level migrations that the
//! partitioned and semi-partitioned schedulers avoid or bound.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};
use spms_task::{Priority, Task, TaskId, TaskSet, Time};

/// Which global scheduling policy orders the system-wide ready queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GlobalPolicy {
    /// Global fixed-priority scheduling: jobs inherit their task's fixed
    /// priority (assign rate-monotonic priorities for global RM).
    #[default]
    FixedPriority,
    /// Global EDF: the job with the earliest absolute deadline wins.
    Edf,
}

impl GlobalPolicy {
    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            GlobalPolicy::FixedPriority => "G-FP",
            GlobalPolicy::Edf => "G-EDF",
        }
    }
}

impl std::fmt::Display for GlobalPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A deadline miss observed by the global simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalDeadlineMiss {
    /// The task whose job missed.
    pub task: TaskId,
    /// Release time of the late job.
    pub release: Time,
    /// The absolute deadline that was missed.
    pub deadline: Time,
}

/// Aggregate statistics of a global-scheduling simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct GlobalReport {
    /// Length of the simulated window.
    pub duration: Time,
    /// Number of jobs released (including the synchronous release at t = 0).
    pub jobs_released: u64,
    /// Number of jobs that completed within the window.
    pub jobs_completed: u64,
    /// Number of times a running job was displaced by a higher-priority job.
    pub preemptions: u64,
    /// Number of times a job resumed on a different processor than the one it
    /// last executed on.
    pub migrations: u64,
    /// Deadline misses observed during the window.
    pub deadline_misses: Vec<GlobalDeadlineMiss>,
    /// Total processor busy time accumulated across all processors.
    pub busy: Time,
}

impl GlobalReport {
    /// Whether every completed and in-flight job met its deadline.
    pub fn no_deadline_misses(&self) -> bool {
        self.deadline_misses.is_empty()
    }

    /// Average processor utilization over the window (busy time divided by
    /// `m · duration`).
    pub fn average_utilization(&self, cores: usize) -> f64 {
        if self.duration.is_zero() || cores == 0 {
            return 0.0;
        }
        self.busy.ratio(self.duration) / cores as f64
    }
}

#[derive(Debug, Clone)]
struct GlobalJob {
    task: usize,
    release: Time,
    abs_deadline: Time,
    remaining: Time,
    last_core: Option<usize>,
    started: bool,
}

/// The global scheduler simulator.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct GlobalSimulator {
    tasks: Vec<Task>,
    cores: usize,
    policy: GlobalPolicy,
    duration: Time,
    /// Cost charged to a job every time it starts or resumes on a processor.
    dispatch_cost: Time,
    /// Additional cost charged when the resume happens on a different
    /// processor than the last one (migration cache reload).
    migration_cost: Time,
}

impl GlobalSimulator {
    /// Creates a simulator for `tasks` on `cores` processors under `policy`.
    ///
    /// For [`GlobalPolicy::FixedPriority`] the tasks should carry priorities
    /// (see [`TaskSet::assign_priorities`]); tasks without a priority are
    /// treated as lowest priority.
    pub fn new(tasks: &TaskSet, cores: usize, policy: GlobalPolicy) -> Self {
        GlobalSimulator {
            tasks: tasks.iter().cloned().collect(),
            cores,
            policy,
            duration: Time::from_secs(1),
            dispatch_cost: Time::ZERO,
            migration_cost: Time::ZERO,
        }
    }

    /// Sets the length of the simulated window (builder style).
    pub fn duration(mut self, duration: Time) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the per-dispatch and per-migration overhead charged to jobs
    /// (builder style). Defaults to zero.
    pub fn overheads(mut self, dispatch: Time, migration: Time) -> Self {
        self.dispatch_cost = dispatch;
        self.migration_cost = migration;
        self
    }

    /// Runs the simulation and returns the aggregated report.
    ///
    /// All tasks release synchronously at time zero and strictly
    /// periodically afterwards (the worst-case arrival pattern for
    /// partitioned fixed-priority scheduling; for global scheduling it is a
    /// common, though not provably worst-case, stress pattern).
    pub fn run(&self) -> GlobalReport {
        let mut report = GlobalReport {
            duration: self.duration,
            ..GlobalReport::default()
        };
        if self.cores == 0 || self.tasks.is_empty() {
            return report;
        }

        // Future releases: (time, task index).
        let mut releases: BinaryHeap<Reverse<(Time, usize)>> = self
            .tasks
            .iter()
            .enumerate()
            .map(|(i, _)| Reverse((Time::ZERO, i)))
            .collect();
        let mut jobs: Vec<GlobalJob> = Vec::new();
        // Ready (not running) job indices.
        let mut ready: Vec<usize> = Vec::new();
        // Running job index per core.
        let mut running: Vec<Option<usize>> = vec![None; self.cores];
        let mut now = Time::ZERO;

        loop {
            // Next event: the earliest future release or the earliest
            // completion among running jobs.
            let next_release = releases.peek().map(|Reverse((t, _))| *t);
            let next_completion = running
                .iter()
                .flatten()
                .map(|&j| now + jobs[j].remaining)
                .min();
            let next = match (next_release, next_completion) {
                (None, None) => break,
                (Some(r), None) => r,
                (None, Some(c)) => c,
                (Some(r), Some(c)) => r.min(c),
            };
            if next > self.duration {
                break;
            }

            // Advance every running job by the elapsed time.
            let elapsed = next.saturating_sub(now);
            if !elapsed.is_zero() {
                for slot in running.iter().flatten() {
                    jobs[*slot].remaining = jobs[*slot].remaining.saturating_sub(elapsed);
                    report.busy += elapsed;
                }
            }
            now = next;

            // Retire completed jobs.
            for slot in running.iter_mut() {
                if let Some(j) = *slot {
                    if jobs[j].remaining.is_zero() {
                        report.jobs_completed += 1;
                        if now > jobs[j].abs_deadline {
                            report.deadline_misses.push(GlobalDeadlineMiss {
                                task: self.tasks[jobs[j].task].id(),
                                release: jobs[j].release,
                                deadline: jobs[j].abs_deadline,
                            });
                        }
                        *slot = None;
                    }
                }
            }

            // Admit the releases due now.
            while let Some(Reverse((t, task_idx))) = releases.peek().copied() {
                if t != now {
                    break;
                }
                releases.pop();
                let task = &self.tasks[task_idx];
                jobs.push(GlobalJob {
                    task: task_idx,
                    release: now,
                    abs_deadline: now + task.deadline(),
                    remaining: task.wcet() + self.dispatch_cost,
                    last_core: None,
                    started: false,
                });
                ready.push(jobs.len() - 1);
                report.jobs_released += 1;
                let next_release = now + task.period();
                releases.push(Reverse((next_release, task_idx)));
            }

            self.reschedule(&mut jobs, &mut ready, &mut running, &mut report);
        }

        // Jobs still unfinished whose deadline fell inside the window are
        // misses too.
        for job in &jobs {
            if !job.remaining.is_zero() && job.abs_deadline <= self.duration {
                report.deadline_misses.push(GlobalDeadlineMiss {
                    task: self.tasks[job.task].id(),
                    release: job.release,
                    deadline: job.abs_deadline,
                });
            }
        }
        report
    }

    /// The scheduling key of a job: smaller is more urgent.
    fn key(&self, jobs: &[GlobalJob], job: usize) -> (u64, u64) {
        let task = &self.tasks[jobs[job].task];
        match self.policy {
            GlobalPolicy::FixedPriority => (
                u64::from(task.priority().unwrap_or(Priority::LOWEST).level()),
                u64::from(task.id().0),
            ),
            GlobalPolicy::Edf => (jobs[job].abs_deadline.as_nanos(), u64::from(task.id().0)),
        }
    }

    /// Places the `m` most urgent ready-or-running jobs onto the processors,
    /// preferring each job's previous processor, and counts preemptions and
    /// migrations.
    fn reschedule(
        &self,
        jobs: &mut [GlobalJob],
        ready: &mut Vec<usize>,
        running: &mut [Option<usize>],
        report: &mut GlobalReport,
    ) {
        // Candidates: everything currently running plus everything ready.
        let mut candidates: Vec<usize> = running.iter().flatten().copied().collect();
        candidates.extend(ready.iter().copied());
        candidates.sort_by_key(|&j| self.key(jobs, j));
        candidates.truncate(self.cores);

        let was_running = running.to_vec();
        // Jobs displaced from a processor go back to the ready list.
        for slot in running.iter_mut() {
            if let Some(j) = *slot {
                if !candidates.contains(&j) {
                    report.preemptions += 1;
                    ready.push(j);
                    *slot = None;
                }
            }
        }
        ready.retain(|j| !candidates.contains(j));

        // Keep jobs that stay on their processor, then place the rest on the
        // free processors (preferring their last processor when it is free).
        let mut to_place: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|j| !was_running.contains(&Some(*j)))
            .collect();
        // Prefer the last processor of each job when it is free.
        to_place.sort_by_key(|&j| self.key(jobs, j));
        for &j in &to_place {
            let preferred = jobs[j].last_core.filter(|&c| running[c].is_none());
            let core = preferred.or_else(|| (0..self.cores).find(|&c| running[c].is_none()));
            let Some(core) = core else { continue };
            if jobs[j].started && jobs[j].last_core != Some(core) {
                report.migrations += 1;
                jobs[j].remaining += self.migration_cost;
            }
            jobs[j].last_core = Some(core);
            jobs[j].started = true;
            running[core] = Some(j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{PriorityAssignment, TaskSetGenerator};

    fn tasks(specs: &[(u64, u64)]) -> TaskSet {
        let mut ts: TaskSet = specs
            .iter()
            .enumerate()
            .map(|(i, &(c, t))| {
                Task::new(i as u32, Time::from_millis(c), Time::from_millis(t)).unwrap()
            })
            .collect();
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        ts
    }

    #[test]
    fn single_task_on_one_core_completes_every_period() {
        let ts = tasks(&[(2, 10)]);
        let report = GlobalSimulator::new(&ts, 1, GlobalPolicy::FixedPriority)
            .duration(Time::from_millis(100))
            .run();
        assert!(report.no_deadline_misses());
        assert_eq!(report.jobs_released, 11);
        assert_eq!(report.jobs_completed, 10);
        assert_eq!(report.migrations, 0);
        assert_eq!(report.preemptions, 0);
        assert!((report.average_utilization(1) - 0.2).abs() < 0.01);
    }

    #[test]
    fn global_edf_also_fails_the_motivating_three_task_example() {
        // The motivating example of the semi-partitioned literature: three
        // 60% tasks on two cores. Partitioned scheduling cannot place them,
        // and plain global EDF does not save them either — with a synchronous
        // release the third job only gets a processor after 6 ms and misses
        // its 10 ms deadline. Only the task splitting of FP-TS (see
        // `spms-core`) schedules this set, which is exactly the paper's
        // motivation.
        let ts = tasks(&[(6, 10), (6, 10), (6, 10)]);
        let report = GlobalSimulator::new(&ts, 2, GlobalPolicy::Edf)
            .duration(Time::from_millis(200))
            .run();
        assert!(!report.no_deadline_misses());
    }

    #[test]
    fn preempted_job_resumes_on_another_core_when_its_own_is_busy() {
        // τ0 = (3, 6) preempts τ2 on core 0; when τ2 becomes eligible again
        // core 0 is still busy but core 1 has just been freed by τ1, so τ2
        // migrates — the job-level migration that global scheduling allows
        // and partitioned scheduling forbids.
        let ts = tasks(&[(3, 6), (8, 20), (8, 20)]);
        let report = GlobalSimulator::new(&ts, 2, GlobalPolicy::FixedPriority)
            .duration(Time::from_millis(60))
            .run();
        assert!(report.migrations >= 1, "migrations = {}", report.migrations);
        assert!(report.preemptions >= 1);
    }

    #[test]
    fn dhall_effect_hurts_global_fixed_priority() {
        // Dhall's effect: many light short-period tasks plus one heavy
        // long-period task. Global RM runs the light tasks first on every
        // processor and the heavy task misses, even though total utilization
        // is only slightly above 1 of the 2 processors.
        let mut ts = TaskSet::new();
        for id in 0..2u32 {
            ts.push(Task::new(id, Time::from_millis(1), Time::from_millis(10)).unwrap());
        }
        ts.push(Task::new(2, Time::from_millis(95), Time::from_millis(100)).unwrap());
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        let report = GlobalSimulator::new(&ts, 2, GlobalPolicy::FixedPriority)
            .duration(Time::from_millis(400))
            .run();
        assert!(
            !report.no_deadline_misses(),
            "Dhall's effect should make the heavy task miss"
        );
        assert!(report.deadline_misses.iter().all(|m| m.task == TaskId(2)));
    }

    #[test]
    fn overloaded_platform_misses_deadlines() {
        let ts = tasks(&[(8, 10), (8, 10), (8, 10)]);
        let report = GlobalSimulator::new(&ts, 2, GlobalPolicy::Edf)
            .duration(Time::from_millis(100))
            .run();
        assert!(!report.no_deadline_misses());
    }

    #[test]
    fn preemptions_happen_under_fixed_priority() {
        let ts = tasks(&[(1, 4), (6, 20)]);
        let report = GlobalSimulator::new(&ts, 1, GlobalPolicy::FixedPriority)
            .duration(Time::from_millis(40))
            .run();
        assert!(report.no_deadline_misses());
        assert!(report.preemptions >= 2);
    }

    #[test]
    fn zero_cores_or_empty_set_produce_an_empty_report() {
        let ts = tasks(&[(1, 10)]);
        let empty = GlobalSimulator::new(&TaskSet::new(), 2, GlobalPolicy::Edf).run();
        assert_eq!(empty.jobs_released, 0);
        let no_cores = GlobalSimulator::new(&ts, 0, GlobalPolicy::Edf).run();
        assert_eq!(no_cores.jobs_released, 0);
    }

    #[test]
    fn migration_overhead_increases_demand() {
        let ts = tasks(&[(3, 6), (8, 20), (8, 20)]);
        let without = GlobalSimulator::new(&ts, 2, GlobalPolicy::FixedPriority)
            .duration(Time::from_millis(200))
            .run();
        let with = GlobalSimulator::new(&ts, 2, GlobalPolicy::FixedPriority)
            .duration(Time::from_millis(200))
            .overheads(Time::from_micros(10), Time::from_micros(25))
            .run();
        assert!(with.busy >= without.busy);
        assert!(with.busy > Time::ZERO);
    }

    #[test]
    fn schedulability_test_acceptance_implies_clean_simulation() {
        // Cross-validation in the same spirit as the partitioned test suite:
        // sets accepted by the sufficient global tests simulate without
        // misses under the matching policy.
        for seed in 0..10u64 {
            let mut ts = TaskSetGenerator::new()
                .task_count(8)
                .total_utilization(2.0)
                .seed(seed)
                .generate()
                .unwrap();
            ts.assign_priorities(PriorityAssignment::RateMonotonic);
            if crate::GlobalSchedulabilityTest::GfbDensity.accepts(&ts, 4) {
                let report = GlobalSimulator::new(&ts, 4, GlobalPolicy::Edf)
                    .duration(Time::from_secs(1))
                    .run();
                assert!(report.no_deadline_misses(), "seed {seed} (G-EDF)");
            }
            if crate::GlobalSchedulabilityTest::BclFixedPriority.accepts(&ts, 4) {
                let report = GlobalSimulator::new(&ts, 4, GlobalPolicy::FixedPriority)
                    .duration(Time::from_secs(1))
                    .run();
                assert!(report.no_deadline_misses(), "seed {seed} (G-FP)");
            }
        }
    }

    #[test]
    fn report_serialises() {
        let ts = tasks(&[(2, 10)]);
        let report = GlobalSimulator::new(&ts, 1, GlobalPolicy::Edf)
            .duration(Time::from_millis(50))
            .run();
        let json = serde_json::to_string(&report).unwrap();
        let back: GlobalReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn policy_names() {
        assert_eq!(GlobalPolicy::FixedPriority.to_string(), "G-FP");
        assert_eq!(GlobalPolicy::Edf.name(), "G-EDF");
        assert_eq!(GlobalPolicy::default(), GlobalPolicy::FixedPriority);
    }
}
