//! # spms-global
//!
//! Global multiprocessor scheduling baselines for the SPMS workspace.
//!
//! The paper's introduction positions semi-partitioned scheduling against the
//! two classic paradigms: *global* scheduling (any task may execute on any
//! processor at any time) and *partitioned* scheduling (each task is pinned
//! to one processor). The partitioned and semi-partitioned algorithms live in
//! `spms-core`; this crate supplies the global side of the comparison:
//!
//! * [`GlobalSchedulabilityTest`] — sufficient schedulability tests for
//!   global fixed-priority (rate-monotonic) and global EDF scheduling:
//!   the GFB density bound, the RM-US\[m/(3m−2)\] utilization bound and the
//!   Bertogna–Cirinei–Lipari (BCL) interference-based test,
//! * [`GlobalSimulator`] — a discrete-event simulator of a global
//!   fixed-priority / global EDF scheduler with a single system-wide ready
//!   queue, used to count the preemptions and migrations global scheduling
//!   incurs compared to the semi-partitioned scheduler in `spms-sim`.
//!
//! # Example
//!
//! ```
//! use spms_global::{GlobalPolicy, GlobalSchedulabilityTest, GlobalSimulator};
//! use spms_task::{PriorityAssignment, Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut tasks: TaskSet = (0..3)
//!     .map(|i| Task::new(i, Time::from_millis(2), Time::from_millis(10)))
//!     .collect::<Result<_, _>>()?;
//! tasks.assign_priorities(PriorityAssignment::RateMonotonic);
//!
//! // A light set passes every global test on two processors.
//! assert!(GlobalSchedulabilityTest::GfbDensity.accepts(&tasks, 2));
//!
//! // ... and simulates without misses under global EDF.
//! let report = GlobalSimulator::new(&tasks, 2, GlobalPolicy::Edf)
//!     .duration(Time::from_millis(100))
//!     .run();
//! assert!(report.no_deadline_misses());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod schedulability;
mod simulator;

pub use schedulability::GlobalSchedulabilityTest;
pub use simulator::{GlobalPolicy, GlobalReport, GlobalSimulator};
