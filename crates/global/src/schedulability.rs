//! Sufficient schedulability tests for global multiprocessor scheduling.
//!
//! Three well-established polynomial tests are provided:
//!
//! * **GFB** (Goossens, Funk, Baruah, 2003) for global EDF with implicit
//!   deadlines: the set is schedulable on `m` processors if
//!   `U_total ≤ m·(1 − u_max) + u_max`. For constrained deadlines the same
//!   bound is applied to densities, which remains sufficient.
//! * **RM-US\[m/(3m−2)\]** (Andersson, Baruah, Jonsson, 2001) for global
//!   fixed-priority scheduling: tasks with utilization above `m/(3m−2)` are
//!   given the highest priority, the remaining tasks are ordered
//!   rate-monotonically, and the whole set is schedulable if
//!   `U_total ≤ m²/(3m−2)`.
//! * **BCL** (Bertogna, Cirinei, Lipari, 2005) for global fixed-priority
//!   scheduling with constrained deadlines: an interference-based test that
//!   bounds the workload of every interfering task within a task's deadline
//!   window.
//!
//! All three are *sufficient* tests: acceptance guarantees schedulability
//! under the respective global scheduler, rejection does not prove the
//! opposite. This mirrors the role the per-core tests of `spms-analysis` play
//! for the partitioned algorithms.

use serde::{Deserialize, Serialize};
use spms_task::{Priority, Task, TaskSet, Time};

/// A sufficient schedulability test for global multiprocessor scheduling.
///
/// # Example
///
/// ```
/// use spms_global::GlobalSchedulabilityTest;
/// use spms_task::{PriorityAssignment, Task, TaskSet, Time};
///
/// # fn main() -> Result<(), spms_task::TaskError> {
/// let mut heavy: TaskSet = (0..3)
///     .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)))
///     .collect::<Result<_, _>>()?;
/// heavy.assign_priorities(PriorityAssignment::RateMonotonic);
/// // Three 60% tasks exceed the GFB bound on two processors...
/// assert!(!GlobalSchedulabilityTest::GfbDensity.accepts(&heavy, 2));
/// // ...but fit comfortably on four.
/// assert!(GlobalSchedulabilityTest::GfbDensity.accepts(&heavy, 4));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GlobalSchedulabilityTest {
    /// The GFB density bound for global EDF.
    #[default]
    GfbDensity,
    /// The RM-US\[m/(3m−2)\] utilization bound for global fixed-priority
    /// scheduling.
    RmUs,
    /// The Bertogna–Cirinei–Lipari interference test for global
    /// fixed-priority scheduling with constrained deadlines.
    BclFixedPriority,
}

impl GlobalSchedulabilityTest {
    /// Whether the task set is accepted on `cores` processors.
    ///
    /// Tasks are expected to carry priorities when a fixed-priority test is
    /// used (see [`TaskSet::assign_priorities`]); tasks without a priority
    /// are treated as lowest priority.
    pub fn accepts(&self, tasks: &TaskSet, cores: usize) -> bool {
        if cores == 0 {
            return tasks.is_empty();
        }
        let all: Vec<Task> = tasks.iter().cloned().collect();
        if !necessary_conditions(&all, cores) {
            return false;
        }
        match self {
            GlobalSchedulabilityTest::GfbDensity => gfb_density(&all, cores),
            GlobalSchedulabilityTest::RmUs => rm_us(&all, cores),
            GlobalSchedulabilityTest::BclFixedPriority => bcl_fixed_priority(&all, cores),
        }
    }

    /// Short name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            GlobalSchedulabilityTest::GfbDensity => "G-EDF(GFB)",
            GlobalSchedulabilityTest::RmUs => "G-RM-US",
            GlobalSchedulabilityTest::BclFixedPriority => "G-FP(BCL)",
        }
    }
}

impl std::fmt::Display for GlobalSchedulabilityTest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Conditions every global scheduler needs: no task may exceed one processor
/// by itself and the total demand may not exceed the platform.
fn necessary_conditions(tasks: &[Task], cores: usize) -> bool {
    let total: f64 = tasks.iter().map(Task::density).sum();
    tasks.iter().all(|t| t.density() <= 1.0) && total <= cores as f64 + 1e-12
}

/// GFB bound applied to densities: `Σδ_i ≤ m·(1 − δ_max) + δ_max`.
fn gfb_density(tasks: &[Task], cores: usize) -> bool {
    if tasks.is_empty() {
        return true;
    }
    let total: f64 = tasks.iter().map(Task::density).sum();
    let max = tasks.iter().map(Task::density).fold(0.0_f64, f64::max);
    total <= cores as f64 * (1.0 - max) + max + 1e-12
}

/// RM-US\[m/(3m−2)\]: schedulable if the total utilization does not exceed
/// `m²/(3m−2)` (the priority rule itself — heavy tasks first, the rest
/// rate-monotonic — is what the bound is proven for; the acceptance decision
/// only needs the utilization check).
fn rm_us(tasks: &[Task], cores: usize) -> bool {
    let m = cores as f64;
    let total: f64 = tasks.iter().map(Task::utilization).sum();
    total <= m * m / (3.0 * m - 2.0) + 1e-12
}

/// Upper bound on the workload task `i` can create inside a window of length
/// `window` under global fixed-priority scheduling (the "densest packing"
/// bound of Bertogna & Cirinei: one carry-in job plus the periodic jobs that
/// fit).
fn workload_bound(task: &Task, window: Time) -> Time {
    let period = task.period();
    let wcet = task.wcet();
    // Number of complete jobs whose full WCET fits in the window when the
    // first job finishes exactly at the window start + C.
    let slack = task.deadline().saturating_sub(wcet);
    let extended = window + slack;
    let jobs = extended.div_floor(period);
    let carry = extended.saturating_sub(Time::from_nanos(jobs.saturating_mul(period.as_nanos())));
    wcet.saturating_mul(jobs) + wcet.min(carry)
}

/// The BCL sufficient test for global fixed-priority scheduling: task `k`
/// meets its deadline if the total interference of higher-priority tasks,
/// with each contribution capped at `D_k − C_k + 1`, is less than
/// `m · (D_k − C_k + 1)`.
fn bcl_fixed_priority(tasks: &[Task], cores: usize) -> bool {
    let m = cores as u64;
    tasks.iter().all(|k| {
        let prio_k = k.priority().unwrap_or(Priority::LOWEST);
        let slack_plus_one = k.deadline().saturating_sub(k.wcet()) + Time::from_nanos(1);
        let budget = slack_plus_one.saturating_mul(m);
        let interference: Time = tasks
            .iter()
            .filter(|i| {
                i.id() != k.id()
                    && i.priority()
                        .unwrap_or(Priority::LOWEST)
                        .is_higher_than(prio_k)
            })
            .map(|i| workload_bound(i, k.deadline()).min(slack_plus_one))
            .sum();
        interference < budget
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{PriorityAssignment, TaskSetGenerator};

    fn prioritised(specs: &[(u64, u64)]) -> TaskSet {
        let mut ts: TaskSet = specs
            .iter()
            .enumerate()
            .map(|(i, &(c, t))| {
                Task::new(i as u32, Time::from_millis(c), Time::from_millis(t)).unwrap()
            })
            .collect();
        ts.assign_priorities(PriorityAssignment::RateMonotonic);
        ts
    }

    #[test]
    fn light_sets_pass_every_test() {
        let ts = prioritised(&[(1, 10), (1, 20), (2, 40)]);
        for test in [
            GlobalSchedulabilityTest::GfbDensity,
            GlobalSchedulabilityTest::RmUs,
            GlobalSchedulabilityTest::BclFixedPriority,
        ] {
            assert!(test.accepts(&ts, 2), "{test}");
            assert!(test.accepts(&ts, 4), "{test}");
        }
    }

    #[test]
    fn overloaded_sets_fail_every_test() {
        // Total utilization 2.4 on 2 processors violates the necessary
        // condition.
        let ts = prioritised(&[(8, 10), (8, 10), (8, 10)]);
        for test in [
            GlobalSchedulabilityTest::GfbDensity,
            GlobalSchedulabilityTest::RmUs,
            GlobalSchedulabilityTest::BclFixedPriority,
        ] {
            assert!(!test.accepts(&ts, 2), "{test}");
        }
    }

    #[test]
    fn full_utilization_tasks_saturate_the_gfb_bound() {
        let ts = prioritised(&[(10, 10), (10, 10), (10, 10)]);
        // Three 100% tasks on 2 processors exceed the platform outright.
        assert!(!GlobalSchedulabilityTest::GfbDensity.accepts(&ts, 2));
        // On 3 processors the necessary condition holds and GFB collapses to
        // `m·0 + 1 = 1 < 3`, so the bound still rejects the set — global EDF
        // cannot promise anything for tasks this heavy.
        assert!(!GlobalSchedulabilityTest::GfbDensity.accepts(&ts, 3));
    }

    #[test]
    fn gfb_is_sensitive_to_the_heaviest_task() {
        // Same total utilization (1.2), different max utilization.
        let balanced = prioritised(&[(3, 10), (3, 10), (3, 10), (3, 10)]);
        let skewed = prioritised(&[(9, 10), (1, 10), (1, 10), (1, 10)]);
        assert!(GlobalSchedulabilityTest::GfbDensity.accepts(&balanced, 2));
        assert!(!GlobalSchedulabilityTest::GfbDensity.accepts(&skewed, 2));
    }

    #[test]
    fn rm_us_bound_matches_the_formula() {
        // m = 2 → bound = 4/4 = 1.0 total utilization.
        let at_bound = prioritised(&[(5, 10), (5, 10)]);
        assert!(GlobalSchedulabilityTest::RmUs.accepts(&at_bound, 2));
        let above = prioritised(&[(5, 10), (5, 10), (2, 10)]);
        assert!(!GlobalSchedulabilityTest::RmUs.accepts(&above, 2));
    }

    #[test]
    fn bcl_handles_constrained_deadlines_better_than_the_density_bound() {
        // Two short-deadline tasks plus a background task: the density-based
        // GFB bound rejects the set, the interference-based BCL test accepts
        // it under deadline-monotonic priorities.
        let mut ts = TaskSet::new();
        for id in 0..2u32 {
            ts.push(
                Task::builder(id)
                    .wcet(Time::from_millis(2))
                    .period(Time::from_millis(10))
                    .deadline(Time::from_millis(3))
                    .build()
                    .unwrap(),
            );
        }
        ts.push(Task::new(2, Time::from_millis(2), Time::from_millis(20)).unwrap());
        ts.assign_priorities(PriorityAssignment::DeadlineMonotonic);
        assert!(!GlobalSchedulabilityTest::GfbDensity.accepts(&ts, 2));
        assert!(GlobalSchedulabilityTest::BclFixedPriority.accepts(&ts, 2));
    }

    #[test]
    fn workload_bound_is_at_least_one_job_and_scales_with_the_window() {
        let t = Task::new(0, Time::from_millis(2), Time::from_millis(10)).unwrap();
        let one_period = workload_bound(&t, Time::from_millis(10));
        let three_periods = workload_bound(&t, Time::from_millis(30));
        assert!(one_period >= Time::from_millis(2));
        assert!(three_periods >= one_period + Time::from_millis(4));
        assert!(three_periods <= Time::from_millis(8));
    }

    #[test]
    fn zero_cores_accepts_only_the_empty_set() {
        let empty = TaskSet::new();
        let ts = prioritised(&[(1, 10)]);
        for test in [
            GlobalSchedulabilityTest::GfbDensity,
            GlobalSchedulabilityTest::RmUs,
            GlobalSchedulabilityTest::BclFixedPriority,
        ] {
            assert!(test.accepts(&empty, 0), "{test}");
            assert!(!test.accepts(&ts, 0), "{test}");
        }
    }

    #[test]
    fn acceptance_is_monotone_in_the_number_of_processors() {
        for seed in 0..20 {
            let mut ts = TaskSetGenerator::new()
                .task_count(10)
                .total_utilization(2.5)
                .seed(seed)
                .generate()
                .unwrap();
            ts.assign_priorities(PriorityAssignment::RateMonotonic);
            for test in [
                GlobalSchedulabilityTest::GfbDensity,
                GlobalSchedulabilityTest::RmUs,
                GlobalSchedulabilityTest::BclFixedPriority,
            ] {
                for m in 2..8 {
                    if test.accepts(&ts, m) {
                        assert!(
                            test.accepts(&ts, m + 1),
                            "{test} accepted on {m} but not {} cores (seed {seed})",
                            m + 1
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(
            GlobalSchedulabilityTest::GfbDensity.to_string(),
            "G-EDF(GFB)"
        );
        assert_eq!(GlobalSchedulabilityTest::RmUs.name(), "G-RM-US");
        assert_eq!(
            GlobalSchedulabilityTest::BclFixedPriority.name(),
            "G-FP(BCL)"
        );
        assert_eq!(
            GlobalSchedulabilityTest::default(),
            GlobalSchedulabilityTest::GfbDensity
        );
    }
}
