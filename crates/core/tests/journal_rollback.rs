//! Property-based contract of the [`Partition`] mutation journal.
//!
//! The journal's promise is that `rewind(mark)` restores the partition —
//! placements, priorities *and* the attached [`CachedCoreAnalysis`] state —
//! bit-identically to a snapshot clone taken at the mark, after any
//! sequence of `place` / `remove_parent` / `renormalize_core_priorities`
//! mutations, including nested marks. These tests drive random mutation
//! sequences against a journaled, cache-carrying partition and compare the
//! rewound state against a clone field by field (the cache comparison goes
//! through `cached_core`, which only answers on converged state, so
//! staleness markers are covered too).
//!
//! The vendored proptest runner is deterministically seeded, so failures
//! reproduce identically.

use proptest::collection::vec;
use proptest::prelude::*;
use spms_core::{CoreId, Partition, PlacedTask, PlanTxn};
use spms_task::{Task, Time};

/// A compact task spec: `(wcet_us, extra_period_us)`; periods are
/// `wcet + extra + 1` so tasks are always constructible.
type Spec = (u64, u64);

fn build_task(id: u32, spec: Spec) -> Task {
    let (wcet, extra) = spec;
    let wcet = wcet.max(1);
    Task::new(
        id,
        Time::from_micros(wcet),
        Time::from_micros(wcet + extra + 1),
    )
    .expect("constructible by construction")
}

#[derive(Debug, Clone)]
enum Op {
    /// Place a fresh whole task on core `core % cores` and renormalize
    /// (the shape of every fast-path commit).
    Place(usize, Spec),
    /// Remove the parent at `index % placed-parents` (departure shape:
    /// removal renormalizes internally).
    Remove(usize),
    /// Renormalize core `core % cores` on its own.
    Renormalize(usize),
}

fn op() -> impl Strategy<Value = Op> {
    (0u8..8, 0usize..64, (1u64..40, 0u64..120)).prop_map(|(kind, index, spec)| match kind {
        0..=4 => Op::Place(index, spec),
        5 | 6 => Op::Remove(index),
        _ => Op::Renormalize(index),
    })
}

fn apply(partition: &mut Partition, op: &Op, next_id: &mut u32) {
    let cores = partition.core_count();
    match op {
        Op::Place(core, spec) => {
            let core = CoreId(core % cores);
            partition.place(core, PlacedTask::whole(build_task(*next_id, *spec)));
            partition.renormalize_core_priorities(core);
            *next_id += 1;
        }
        Op::Remove(index) => {
            let parents = partition.parent_ids();
            if !parents.is_empty() {
                partition.remove_parent(parents[index % parents.len()]);
            }
        }
        Op::Renormalize(core) => {
            partition.renormalize_core_priorities(CoreId(core % cores));
        }
    }
}

/// Placement + cache equality: `PartialEq` covers the mapping, and
/// `cached_core` (which answers only on converged, non-stale slots) covers
/// the attached analysis state.
fn assert_fully_equal(a: &Partition, b: &Partition) {
    assert_eq!(a, b, "placements diverged after rewind");
    for core in 0..a.core_count() {
        assert_eq!(
            a.cached_core(CoreId(core)),
            b.cached_core(CoreId(core)),
            "cache state diverged on core {core}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Build a random partition, open a scope, mutate arbitrarily, rewind:
    /// the result is bit-identical to a pre-mutation snapshot clone —
    /// placements, priorities and attached cache.
    #[test]
    fn rewind_restores_the_pre_mutation_snapshot(
        cores in 1usize..5,
        prefix in vec(op(), 0..10),
        speculative in vec(op(), 1..16),
    ) {
        let mut partition = Partition::new(cores);
        partition.enable_analysis_cache();
        partition.enable_journal();
        let mut next_id = 0u32;
        for op in &prefix {
            apply(&mut partition, op, &mut next_id);
        }
        let snapshot = partition.clone();
        let mark = partition.journal_begin();
        for op in &speculative {
            apply(&mut partition, op, &mut next_id);
        }
        partition.rewind(mark);
        partition.journal_end();
        assert_fully_equal(&partition, &snapshot);
        prop_assert_eq!(partition.validate(), Ok(()));
    }

    /// Nested marks rewind LIFO: an inner rewind restores the inner
    /// snapshot without disturbing the outer scope, and the outer rewind
    /// still restores the outer snapshot afterwards.
    #[test]
    fn nested_marks_rewind_independently(
        cores in 1usize..4,
        prefix in vec(op(), 1..8),
        outer_ops in vec(op(), 1..8),
        inner_ops in vec(op(), 1..8),
    ) {
        let mut partition = Partition::new(cores);
        partition.enable_analysis_cache();
        partition.enable_journal();
        let mut next_id = 0u32;
        for op in &prefix {
            apply(&mut partition, op, &mut next_id);
        }
        let outer_snapshot = partition.clone();
        let outer = partition.journal_begin();
        for op in &outer_ops {
            apply(&mut partition, op, &mut next_id);
        }
        let inner_snapshot = partition.clone();
        let inner = partition.journal_mark();
        for op in &inner_ops {
            apply(&mut partition, op, &mut next_id);
        }
        partition.rewind(inner);
        assert_fully_equal(&partition, &inner_snapshot);
        partition.rewind(outer);
        partition.journal_end();
        assert_fully_equal(&partition, &outer_snapshot);
    }

    /// A rewound scope leaves no trace: committing different work after an
    /// abort produces the same partition as never having speculated.
    #[test]
    fn aborted_speculation_does_not_leak_into_later_commits(
        cores in 1usize..4,
        speculative in vec(op(), 1..10),
        committed in vec(op(), 1..10),
    ) {
        let build = |speculate: bool| {
            let mut partition = Partition::new(cores);
            partition.enable_analysis_cache();
            partition.enable_journal();
            let mut next_id = 0u32;
            if speculate {
                let mark = partition.journal_begin();
                let mut spec_id = next_id;
                for op in &speculative {
                    apply(&mut partition, op, &mut spec_id);
                }
                partition.rewind(mark);
                partition.journal_end();
            }
            for op in &committed {
                apply(&mut partition, op, &mut next_id);
            }
            partition
        };
        assert_fully_equal(&build(true), &build(false));
    }

    /// A multi-partition [`PlanTxn`] abort restores *every* participant —
    /// placements, priorities and RTA caches — bit-identically, whether a
    /// participant rolls back via its journal or via a snapshot clone
    /// (the journal-free fallback). This is the two-phase contract the
    /// cross-shard split planner leans on.
    #[test]
    fn plan_txn_abort_restores_both_partitions(
        cores_a in 1usize..4,
        cores_b in 1usize..4,
        journal_b in any::<bool>(),
        prefix_a in vec(op(), 0..8),
        prefix_b in vec(op(), 0..8),
        spec_a in vec(op(), 1..10),
        spec_b in vec(op(), 1..10),
    ) {
        let mut next_id = 0u32;
        let mut build = |cores: usize, journal: bool, prefix: &[Op]| {
            let mut partition = Partition::new(cores);
            partition.enable_analysis_cache();
            if journal {
                partition.enable_journal();
            }
            for op in prefix {
                apply(&mut partition, op, &mut next_id);
            }
            partition
        };
        let mut a = build(cores_a, true, &prefix_a);
        let mut b = build(cores_b, journal_b, &prefix_b);
        let snapshot_a = a.clone();
        let snapshot_b = b.clone();

        let mut txn = PlanTxn::new();
        txn.begin(&mut a);
        txn.begin(&mut b);
        for op in &spec_a {
            apply(&mut a, op, &mut next_id);
        }
        for op in &spec_b {
            apply(&mut b, op, &mut next_id);
        }
        txn.abort(&mut [&mut a, &mut b]);

        assert_fully_equal(&a, &snapshot_a);
        assert_fully_equal(&b, &snapshot_b);
        prop_assert_eq!(a.validate(), Ok(()));
        prop_assert_eq!(b.validate(), Ok(()));
    }

    /// Committing a multi-partition transaction keeps the speculated work
    /// on every participant and leaves journaled participants ready for
    /// the next scope (a later single-partition abort still rewinds only
    /// its own scope).
    #[test]
    fn plan_txn_commit_keeps_both_and_later_scopes_stay_isolated(
        cores_a in 1usize..4,
        cores_b in 1usize..4,
        spec_a in vec(op(), 1..8),
        spec_b in vec(op(), 1..8),
        later in vec(op(), 1..8),
    ) {
        let mut next_id = 0u32;
        let mut a = Partition::new(cores_a);
        let mut b = Partition::new(cores_b);
        a.enable_analysis_cache();
        b.enable_analysis_cache();
        a.enable_journal();
        b.enable_journal();

        let mut txn = PlanTxn::new();
        txn.begin(&mut a);
        txn.begin(&mut b);
        for op in &spec_a {
            apply(&mut a, op, &mut next_id);
        }
        for op in &spec_b {
            apply(&mut b, op, &mut next_id);
        }
        txn.commit(&mut [&mut a, &mut b]);
        let committed_a = a.clone();

        // A later aborted scope on `a` alone must not disturb the
        // committed cross-partition work.
        let mut solo = PlanTxn::new();
        solo.begin(&mut a);
        for op in &later {
            apply(&mut a, op, &mut next_id);
        }
        solo.abort(std::slice::from_mut(&mut &mut a));
        assert_fully_equal(&a, &committed_a);
        prop_assert_eq!(a.validate(), Ok(()));
        prop_assert_eq!(b.validate(), Ok(()));
    }
}
