//! DM-PM: Deadline-Monotonic with Priority Migration (Kato & Yamasaki,
//! RTAS 2009) — the second semi-partitioned fixed-priority algorithm of the
//! paper's related work.
//!
//! DM-PM differs from FP-TS (SPA1/SPA2) in how it decides *when* and *where*
//! to split:
//!
//! * non-split tasks receive deadline-monotonic priorities and are assigned
//!   whole with a first-fit pass (no processor is ever "closed");
//! * only a task that fits on **no** processor whole is split: it receives a
//!   share on every processor that still has spare capacity, in processor
//!   order, until its demand is covered;
//! * split pieces are promoted above all non-split tasks on their processor
//!   (the "priority migration" of the algorithm's name), so a piece occupies
//!   exactly its budget at the head of the schedule and the task's migration
//!   instants are deterministic.
//!
//! The priority promotion, synthetic deadlines and overhead accounting reuse
//! the same machinery as [`SemiPartitionedFpTs`](crate::SemiPartitionedFpTs),
//! so partitions produced by either algorithm are interchangeable for the
//! analysis, the simulator and the experiments.

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_task::{Priority, PriorityAssignment, Task, TaskSet, Time};

use crate::{
    CoreId, Partition, PartitionError, PartitionOutcome, Partitioner, PlacedTask, SplitInfo,
    SubtaskKind,
};

/// The DM-PM semi-partitioned partitioning algorithm.
///
/// # Example
///
/// ```
/// use spms_core::{SemiPartitionedDmPm, Partitioner, PartitionOutcome};
/// use spms_task::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Three tasks of 60% utilization cannot be partitioned onto two cores,
/// // but DM-PM splits the last task across both.
/// let tasks: TaskSet = (0..3)
///     .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)))
///     .collect::<Result<_, _>>()?;
/// let outcome = SemiPartitionedDmPm::default().partition(&tasks, 2)?;
/// let partition = match outcome {
///     PartitionOutcome::Schedulable(p) => p,
///     PartitionOutcome::Unschedulable { reason } => panic!("{reason}"),
/// };
/// assert_eq!(partition.split_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiPartitionedDmPm {
    /// Per-core acceptance test used both for whole tasks and for split
    /// pieces.
    pub test: UniprocessorTest,
    /// Run-time overheads; split pieces additionally pay the migration /
    /// remote-queue costs.
    pub overhead: OverheadModel,
    /// Smallest piece budget worth creating on a processor.
    pub min_split_budget: Time,
}

impl Default for SemiPartitionedDmPm {
    fn default() -> Self {
        SemiPartitionedDmPm {
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
            min_split_budget: Time::from_micros(100),
        }
    }
}

impl SemiPartitionedDmPm {
    /// DM-PM with the default exact per-core acceptance test and no overhead.
    pub fn new() -> Self {
        SemiPartitionedDmPm::default()
    }

    /// Replaces the per-core acceptance test (builder style).
    pub fn with_test(mut self, test: UniprocessorTest) -> Self {
        self.test = test;
        self
    }

    /// Replaces the overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the smallest admissible piece budget (builder style).
    pub fn with_min_split_budget(mut self, budget: Time) -> Self {
        self.min_split_budget = budget;
        self
    }

    /// Priority level reserved for promoted body subtasks.
    const BODY_PRIORITY: Priority = Priority::new(0);
    /// Priority level reserved for promoted tail subtasks.
    const TAIL_PRIORITY: Priority = Priority::new(1);

    fn shifted_priority(task: &Task) -> Priority {
        Priority::new(
            task.priority()
                .map_or(u32::MAX, |p| p.level())
                .saturating_add(2),
        )
    }

    fn body_piece_overhead(&self, piece_index: usize) -> Time {
        if piece_index == 0 {
            self.overhead.first_piece_inflation()
        } else {
            self.overhead.body_piece_inflation()
        }
    }

    /// Largest pure execution budget the acceptance test still admits as a
    /// promoted body piece on a core currently holding `core_tasks`.
    fn max_body_budget(
        &self,
        core_tasks: &[Task],
        template: &Task,
        max_budget: Time,
        piece_index: usize,
    ) -> Time {
        let overhead = self.body_piece_overhead(piece_index);
        let fits = |budget: Time| -> bool {
            if budget.is_zero() {
                return true;
            }
            let wcet = budget + overhead;
            let Ok(piece) = Task::builder(template.id())
                .wcet(wcet)
                .period(template.period())
                .deadline(wcet.min(template.period()))
                .priority(Self::BODY_PRIORITY)
                .build()
            else {
                return false;
            };
            let mut candidate = core_tasks.to_vec();
            candidate.push(piece);
            self.test.accepts(&candidate)
        };
        if !fits(self.min_split_budget.max(Time::from_nanos(1))) {
            return Time::ZERO;
        }
        if fits(max_budget) {
            return max_budget;
        }
        let mut lo = self.min_split_budget.max(Time::from_nanos(1));
        let mut hi = max_budget;
        while hi.saturating_sub(lo) > Time::from_nanos(100) {
            let mid = Time::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2);
            if fits(mid) {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Analysis task for the final (tail) piece of a split task.
    fn make_tail_piece(&self, task: &Task, budget: Time, offset: Time) -> Option<Task> {
        let wcet = budget + self.overhead.tail_piece_inflation();
        let deadline = task.deadline().checked_sub(offset)?;
        if deadline > task.period() || wcet > deadline {
            return None;
        }
        Task::builder(task.id())
            .wcet(wcet)
            .period(task.period())
            .deadline(deadline)
            .priority(Self::TAIL_PRIORITY)
            .build()
            .ok()
    }

    /// Splits `task` (original parameters) across the processors with spare
    /// capacity. Returns the pieces as `(core, analysis task, budget)` or an
    /// error message when the demand cannot be covered.
    fn split_task(
        &self,
        task: &Task,
        bins: &[Vec<PlacedTask>],
        cores: usize,
    ) -> Result<Vec<(usize, Task, Time)>, String> {
        let mut remaining = task.wcet();
        let mut offset = Time::ZERO;
        let mut pieces: Vec<(usize, Task, Time)> = Vec::new();

        for (core, bin) in bins.iter().enumerate().take(cores) {
            // Keep the promotion analysable: one body and one tail per core.
            let hosts_body = bin.iter().any(PlacedTask::is_body);
            let hosts_tail = bin.iter().any(PlacedTask::is_tail);
            let core_tasks: Vec<Task> = bin.iter().map(|p| p.task.clone()).collect();

            // Try to finish the task here with a tail piece.
            if !hosts_tail {
                if let Some(tail) = self.make_tail_piece(task, remaining, offset) {
                    let mut candidate = core_tasks.clone();
                    candidate.push(tail.clone());
                    if self.test.accepts(&candidate) {
                        pieces.push((core, tail, remaining));
                        return Ok(pieces);
                    }
                }
            }

            // Otherwise carve the largest body piece this processor accepts.
            if hosts_body {
                continue;
            }
            let piece_overhead = self.body_piece_overhead(pieces.len());
            let deadline_room = task
                .deadline()
                .saturating_sub(offset)
                .saturating_sub(piece_overhead);
            let max_budget = remaining
                .saturating_sub(Time::from_nanos(1))
                .min(deadline_room);
            if max_budget < self.min_split_budget {
                continue;
            }
            let budget = self.max_body_budget(&core_tasks, task, max_budget, pieces.len());
            if budget < self.min_split_budget || budget.is_zero() {
                continue;
            }
            let wcet = budget + piece_overhead;
            let piece = Task::builder(task.id())
                .wcet(wcet)
                .period(task.period())
                .deadline(wcet.min(task.period()))
                .priority(Self::BODY_PRIORITY)
                .build()
                .map_err(|e| format!("internal error building body subtask: {e}"))?;
            offset += wcet;
            remaining -= budget;
            pieces.push((core, piece, budget));
        }
        Err(format!(
            "task {} could not be split across {cores} processors ({} of {} still unplaced)",
            task.id(),
            remaining,
            task.wcet()
        ))
    }
}

impl Partitioner for SemiPartitionedDmPm {
    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionOutcome, PartitionError> {
        if cores == 0 {
            return Err(PartitionError::NoCores);
        }
        tasks.validate()?;

        let mut prioritised = TaskSet::with_capacity(tasks.len());
        for task in tasks {
            if self.overhead.inflate_task(task).is_err() {
                return Ok(PartitionOutcome::Unschedulable {
                    reason: format!(
                        "task {} cannot absorb the scheduling overhead within its deadline",
                        task.id()
                    ),
                });
            }
            prioritised.push(task.clone());
        }
        prioritised.assign_priorities(PriorityAssignment::DeadlineMonotonic);

        // Offer tasks in decreasing utilization order (the usual packing
        // order); split decisions are driven purely by the acceptance test.
        let mut ordered: Vec<Task> = prioritised.iter().cloned().collect();
        ordered.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });

        let mut bins: Vec<Vec<PlacedTask>> = vec![Vec::new(); cores];
        for task in &ordered {
            // First-fit whole placement with the whole-job overhead.
            let analysis = task
                .with_wcet(task.wcet() + self.overhead.whole_job_inflation())
                .ok()
                .map(|mut t| {
                    t.set_priority(Self::shifted_priority(task));
                    t
                });
            let whole_slot = analysis.as_ref().and_then(|analysis_task| {
                (0..cores).find(|&c| {
                    let mut candidate: Vec<Task> = bins[c].iter().map(|p| p.task.clone()).collect();
                    candidate.push(analysis_task.clone());
                    self.test.accepts(&candidate)
                })
            });
            if let (Some(core), Some(analysis_task)) = (whole_slot, analysis) {
                bins[core].push(PlacedTask {
                    task: analysis_task,
                    execution: task.wcet(),
                    parent: task.id(),
                    split: None,
                });
                continue;
            }

            // The task fits nowhere whole: split it across the processors.
            let pieces = match self.split_task(task, &bins, cores) {
                Ok(pieces) => pieces,
                Err(reason) => return Ok(PartitionOutcome::Unschedulable { reason }),
            };
            let count = pieces.len();
            let first_core = CoreId(pieces[0].0);
            let core_sequence: Vec<usize> = pieces.iter().map(|(c, _, _)| *c).collect();
            let mut running_offset = Time::ZERO;
            for (i, (core, piece, budget)) in pieces.into_iter().enumerate() {
                let is_tail = i == count - 1;
                let piece_wcet = piece.wcet();
                bins[core].push(PlacedTask {
                    task: piece,
                    execution: budget,
                    parent: task.id(),
                    split: Some(SplitInfo {
                        part_index: i,
                        part_count: count,
                        kind: if is_tail {
                            SubtaskKind::Tail
                        } else {
                            SubtaskKind::Body
                        },
                        release_offset: running_offset,
                        next_core: core_sequence.get(i + 1).copied().map(CoreId),
                        first_core,
                    }),
                });
                running_offset += piece_wcet;
            }
        }

        let mut partition = Partition::new(cores);
        for (core, bin) in bins.into_iter().enumerate() {
            for placed in bin {
                partition.place(CoreId(core), placed);
            }
        }
        debug_assert_eq!(partition.validate(), Ok(()));
        if !partition.is_schedulable(self.test) {
            return Ok(PartitionOutcome::Unschedulable {
                reason: "final per-core acceptance test failed".to_owned(),
            });
        }
        Ok(PartitionOutcome::Schedulable(partition))
    }

    fn name(&self) -> String {
        "DM-PM".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PartitionedFixedPriority;
    use spms_task::TaskSetGenerator;

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    fn set(tasks: Vec<Task>) -> TaskSet {
        tasks.into_iter().collect()
    }

    #[test]
    fn name_and_zero_cores() {
        assert_eq!(SemiPartitionedDmPm::new().name(), "DM-PM");
        let ts = set(vec![task(0, 1, 10)]);
        assert_eq!(
            SemiPartitionedDmPm::new().partition(&ts, 0).unwrap_err(),
            PartitionError::NoCores
        );
    }

    #[test]
    fn light_sets_are_not_split() {
        let ts = set(vec![task(0, 1_000, 10_000), task(1, 2_000, 20_000)]);
        let p = SemiPartitionedDmPm::new()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .expect("schedulable");
        assert_eq!(p.split_count(), 0);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn splits_the_motivating_three_task_example() {
        let ts = set(vec![
            task(0, 6_000, 10_000),
            task(1, 6_000, 10_000),
            task(2, 6_000, 10_000),
        ]);
        assert!(!PartitionedFixedPriority::ffd()
            .partition(&ts, 2)
            .unwrap()
            .is_schedulable());
        let p = SemiPartitionedDmPm::new()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .expect("schedulable by splitting");
        assert_eq!(p.split_count(), 1);
        assert_eq!(p.validate(), Ok(()));
        assert!(p.is_schedulable(UniprocessorTest::ResponseTime));
    }

    #[test]
    fn split_budgets_cover_the_whole_wcet_without_overhead() {
        let ts = set(vec![
            task(0, 6_000, 10_000),
            task(1, 6_000, 10_000),
            task(2, 6_000, 10_000),
        ]);
        let p = SemiPartitionedDmPm::new()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .unwrap();
        for parent in 0..3u32 {
            let total: Time = p
                .iter()
                .filter(|(_, placed)| {
                    placed.parent == spms_task::TaskId(parent) && placed.is_split()
                })
                .map(|(_, placed)| placed.execution)
                .sum();
            if !total.is_zero() {
                assert_eq!(total, Time::from_micros(6_000));
            }
        }
    }

    #[test]
    fn accepts_at_least_as_many_sets_as_ffd() {
        let mut ffd_accepted = 0usize;
        let mut dmpm_accepted = 0usize;
        for seed in 0..20 {
            let ts = TaskSetGenerator::new()
                .task_count(12)
                .total_utilization(3.6)
                .seed(seed)
                .generate()
                .unwrap();
            if PartitionedFixedPriority::ffd()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                ffd_accepted += 1;
            }
            if SemiPartitionedDmPm::new()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                dmpm_accepted += 1;
            }
        }
        assert!(
            dmpm_accepted >= ffd_accepted,
            "DM-PM accepted {dmpm_accepted}/20, FFD accepted {ffd_accepted}/20"
        );
    }

    #[test]
    fn partitions_are_valid_and_simulate_cleanly_via_partition_contract() {
        for seed in 50..60 {
            let ts = TaskSetGenerator::new()
                .task_count(14)
                .total_utilization(3.4)
                .seed(seed)
                .generate()
                .unwrap();
            if let PartitionOutcome::Schedulable(p) =
                SemiPartitionedDmPm::new().partition(&ts, 4).unwrap()
            {
                assert_eq!(p.validate(), Ok(()));
                assert!(p.is_schedulable(UniprocessorTest::ResponseTime));
            }
        }
    }

    #[test]
    fn overhead_awareness_reduces_acceptance_only_slightly() {
        let mut without = 0usize;
        let mut with = 0usize;
        for seed in 100..125 {
            let ts = TaskSetGenerator::new()
                .task_count(12)
                .total_utilization(3.5)
                .seed(seed)
                .generate()
                .unwrap();
            if SemiPartitionedDmPm::new()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                without += 1;
            }
            if SemiPartitionedDmPm::new()
                .with_overhead(OverheadModel::paper_n4())
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                with += 1;
            }
        }
        assert!(with <= without);
        assert!(
            without - with <= 8,
            "overhead cost too high: {without} -> {with}"
        );
    }

    #[test]
    fn unschedulable_when_total_demand_exceeds_platform() {
        let ts = set(vec![
            task(0, 9_000, 10_000),
            task(1, 9_000, 10_000),
            task(2, 9_000, 10_000),
        ]);
        assert!(!SemiPartitionedDmPm::new()
            .partition(&ts, 2)
            .unwrap()
            .is_schedulable());
    }

    #[test]
    fn deterministic_across_runs() {
        let ts = TaskSetGenerator::new()
            .task_count(16)
            .total_utilization(3.3)
            .seed(9)
            .generate()
            .unwrap();
        let a = SemiPartitionedDmPm::new().partition(&ts, 4).unwrap();
        let b = SemiPartitionedDmPm::new().partition(&ts, 4).unwrap();
        assert_eq!(a, b);
    }
}
