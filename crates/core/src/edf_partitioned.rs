//! Partitioned EDF scheduling — the dynamic-priority counterpart of the
//! partitioned baselines.
//!
//! The paper's related work (Kato & Yamasaki, EMSOFT 2008) studies
//! semi-partitioned *EDF*; the paper itself notes that its scheduler
//! framework extends to EDF-based algorithms. This module provides the
//! partitioned-EDF baseline on top of the same bin-packing machinery as the
//! fixed-priority heuristics, using the processor-demand test from
//! `spms-analysis::edf` as the per-core acceptance criterion. It lets the
//! experiments quantify how much of FP-TS's advantage comes from splitting
//! and how much an EDF runtime would claw back without any migration at all.

use serde::{Deserialize, Serialize};
use spms_analysis::{edf, OverheadModel};
use spms_task::{Task, TaskSet};

use crate::{
    BinPackingHeuristic, CoreId, Partition, PartitionError, PartitionOutcome, Partitioner,
    PlacedTask, TaskOrdering,
};

/// Partitioned EDF: every task is statically assigned to one core, each core
/// runs EDF locally.
///
/// # Example
///
/// ```
/// use spms_core::{PartitionedEdf, Partitioner, PartitionOutcome};
/// use spms_task::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two tasks at 50% each fully load one core — fine under EDF.
/// let tasks: TaskSet = (0..2)
///     .map(|i| Task::new(i, Time::from_millis(5), Time::from_millis(10)))
///     .collect::<Result<_, _>>()?;
/// let outcome = PartitionedEdf::ffd().partition(&tasks, 1)?;
/// assert!(matches!(outcome, PartitionOutcome::Schedulable(_)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionedEdf {
    /// Bin selection heuristic.
    pub heuristic: BinPackingHeuristic,
    /// Task ordering applied before packing.
    pub ordering: TaskOrdering,
    /// Run-time overheads folded into every task's WCET before packing.
    pub overhead: OverheadModel,
}

impl Default for PartitionedEdf {
    fn default() -> Self {
        PartitionedEdf::ffd()
    }
}

impl PartitionedEdf {
    /// First-fit decreasing with per-core EDF acceptance.
    pub fn ffd() -> Self {
        PartitionedEdf {
            heuristic: BinPackingHeuristic::FirstFit,
            ordering: TaskOrdering::DecreasingUtilization,
            overhead: OverheadModel::zero(),
        }
    }

    /// Worst-fit decreasing with per-core EDF acceptance.
    pub fn wfd() -> Self {
        PartitionedEdf {
            heuristic: BinPackingHeuristic::WorstFit,
            ..PartitionedEdf::ffd()
        }
    }

    /// Replaces the overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    fn order_tasks(&self, tasks: &TaskSet) -> Vec<Task> {
        let mut ordered: Vec<Task> = tasks.iter().cloned().collect();
        match self.ordering {
            TaskOrdering::DecreasingUtilization => ordered.sort_by(|a, b| {
                b.utilization()
                    .partial_cmp(&a.utilization())
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.id().cmp(&b.id()))
            }),
            TaskOrdering::AsGiven => {}
            TaskOrdering::IncreasingPriority => ordered.sort_by_key(|t| {
                (
                    std::cmp::Reverse(t.priority().unwrap_or(spms_task::Priority::LOWEST)),
                    t.id(),
                )
            }),
        }
        ordered
    }
}

impl Partitioner for PartitionedEdf {
    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionOutcome, PartitionError> {
        if cores == 0 {
            return Err(PartitionError::NoCores);
        }
        tasks.validate()?;

        let mut inflated = TaskSet::with_capacity(tasks.len());
        for task in tasks {
            match self.overhead.inflate_task(task) {
                Ok(t) => inflated.push(t),
                Err(_) => {
                    return Ok(PartitionOutcome::Unschedulable {
                        reason: format!(
                            "task {} cannot absorb the scheduling overhead within its deadline",
                            task.id()
                        ),
                    })
                }
            }
        }

        let ordered = self.order_tasks(&inflated);
        let mut bins: Vec<Vec<Task>> = vec![Vec::new(); cores];
        let mut next_fit_cursor = 0usize;
        for task in ordered {
            let accepts = |bin: &Vec<Task>| {
                let mut candidate = bin.clone();
                candidate.push(task.clone());
                edf::is_edf_schedulable(&candidate)
            };
            let utilization = |bin: &[Task]| bin.iter().map(Task::utilization).sum::<f64>();
            let chosen = match self.heuristic {
                BinPackingHeuristic::FirstFit => bins.iter().position(accepts),
                BinPackingHeuristic::BestFit => bins
                    .iter()
                    .enumerate()
                    .filter(|(_, bin)| accepts(bin))
                    .max_by(|(_, a), (_, b)| {
                        utilization(a)
                            .partial_cmp(&utilization(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i),
                BinPackingHeuristic::WorstFit => bins
                    .iter()
                    .enumerate()
                    .filter(|(_, bin)| accepts(bin))
                    .min_by(|(_, a), (_, b)| {
                        utilization(a)
                            .partial_cmp(&utilization(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i),
                BinPackingHeuristic::NextFit => {
                    while next_fit_cursor < cores && !accepts(&bins[next_fit_cursor]) {
                        next_fit_cursor += 1;
                    }
                    (next_fit_cursor < cores).then_some(next_fit_cursor)
                }
            };
            match chosen {
                Some(core) => bins[core].push(task),
                None => {
                    return Ok(PartitionOutcome::Unschedulable {
                        reason: format!(
                            "task {} (U={:.3}) does not fit on any of the {cores} cores under EDF",
                            task.id(),
                            task.utilization()
                        ),
                    })
                }
            }
        }

        let mut partition = Partition::new(cores);
        for (core, bin) in bins.into_iter().enumerate() {
            for task in bin {
                // The analysis task carries the inflated WCET; the runtime
                // execution budget is the original task's WCET.
                let execution = tasks
                    .iter()
                    .find(|t| t.id() == task.id())
                    .map_or(task.wcet(), Task::wcet);
                partition.place(
                    CoreId(core),
                    PlacedTask::whole(task).with_execution(execution),
                );
            }
        }
        Ok(PartitionOutcome::Schedulable(partition))
    }

    fn name(&self) -> String {
        let heuristic = match self.heuristic {
            BinPackingHeuristic::FirstFit => "FF",
            BinPackingHeuristic::BestFit => "BF",
            BinPackingHeuristic::WorstFit => "WF",
            BinPackingHeuristic::NextFit => "NF",
        };
        let order = match self.ordering {
            TaskOrdering::DecreasingUtilization => "D",
            TaskOrdering::AsGiven => "",
            TaskOrdering::IncreasingPriority => "P",
        };
        format!("EDF-{heuristic}{order}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{TaskSetGenerator, Time};

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    #[test]
    fn names() {
        assert_eq!(PartitionedEdf::ffd().name(), "EDF-FFD");
        assert_eq!(PartitionedEdf::wfd().name(), "EDF-WFD");
    }

    #[test]
    fn zero_cores_is_an_error() {
        let ts: TaskSet = [task(0, 1, 10)].into_iter().collect();
        assert_eq!(
            PartitionedEdf::ffd().partition(&ts, 0).unwrap_err(),
            PartitionError::NoCores
        );
    }

    #[test]
    fn edf_packs_each_core_to_full_utilization() {
        // Four 50% tasks with non-harmonic periods: EDF-FFD needs 2 cores,
        // fixed-priority FFD (RM, non-harmonic) needs 3.
        let ts: TaskSet = [
            task(0, 5, 10),
            task(1, 7, 14),
            task(2, 5, 10),
            task(3, 7, 14),
        ]
        .into_iter()
        .collect();
        let edf = PartitionedEdf::ffd()
            .partition(&ts, 4)
            .unwrap()
            .into_partition()
            .unwrap();
        let used = edf.core_utilizations().iter().filter(|&&u| u > 0.0).count();
        assert_eq!(used, 2);
        let fp = crate::PartitionedFixedPriority::ffd()
            .partition(&ts, 4)
            .unwrap()
            .into_partition()
            .unwrap();
        let fp_used = fp.core_utilizations().iter().filter(|&&u| u > 0.0).count();
        assert!(fp_used >= used, "EDF should never need more cores than RM");
    }

    #[test]
    fn overload_is_rejected_with_a_reason() {
        let ts: TaskSet = (0..5).map(|i| task(i, 9, 10)).collect();
        match PartitionedEdf::ffd().partition(&ts, 4).unwrap() {
            PartitionOutcome::Unschedulable { reason } => assert!(reason.contains("EDF")),
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn overhead_inflation_applies() {
        let ts: TaskSet = (0..10).map(|i| task(i, 95, 1_000)).collect();
        assert!(PartitionedEdf::ffd()
            .partition(&ts, 1)
            .unwrap()
            .is_schedulable());
        assert!(!PartitionedEdf::ffd()
            .with_overhead(OverheadModel::paper_n4())
            .partition(&ts, 1)
            .unwrap()
            .is_schedulable());
    }

    #[test]
    fn random_sets_produce_valid_partitions_without_splits() {
        for seed in 0..8 {
            let ts = TaskSetGenerator::new()
                .task_count(14)
                .total_utilization(3.2)
                .seed(seed)
                .generate()
                .unwrap();
            for algo in [PartitionedEdf::ffd(), PartitionedEdf::wfd()] {
                if let PartitionOutcome::Schedulable(p) = algo.partition(&ts, 4).unwrap() {
                    assert_eq!(p.validate(), Ok(()));
                    assert_eq!(p.split_count(), 0);
                    assert_eq!(p.placement_count(), ts.len());
                }
            }
        }
    }

    #[test]
    fn edf_accepts_at_least_as_many_sets_as_rm_partitioning() {
        let mut edf_accepted = 0;
        let mut rm_accepted = 0;
        for seed in 0..15 {
            let ts = TaskSetGenerator::new()
                .task_count(12)
                .total_utilization(3.6)
                .seed(400 + seed)
                .generate()
                .unwrap();
            if PartitionedEdf::ffd()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                edf_accepted += 1;
            }
            if crate::PartitionedFixedPriority::ffd()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                rm_accepted += 1;
            }
        }
        assert!(
            edf_accepted >= rm_accepted,
            "EDF {edf_accepted} vs RM {rm_accepted}"
        );
    }
}
