//! Error type for partitioning runs.

use std::error::Error;
use std::fmt;

use spms_task::TaskError;

/// Errors raised by the partitioning algorithms for *invalid inputs*.
///
/// Note that "the task set does not fit on the given number of cores" is not
/// an error — it is the [`PartitionOutcome::Unschedulable`](crate::PartitionOutcome::Unschedulable)
/// outcome, because measuring how often that happens is the whole point of
/// the acceptance-ratio experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionError {
    /// The number of processors is zero.
    NoCores,
    /// The input task set failed validation (duplicate ids, malformed tasks).
    InvalidTaskSet(TaskError),
}

impl fmt::Display for PartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionError::NoCores => write!(f, "cannot partition onto zero processors"),
            PartitionError::InvalidTaskSet(e) => write!(f, "invalid task set: {e}"),
        }
    }
}

impl Error for PartitionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PartitionError::InvalidTaskSet(e) => Some(e),
            PartitionError::NoCores => None,
        }
    }
}

impl From<TaskError> for PartitionError {
    fn from(e: TaskError) -> Self {
        PartitionError::InvalidTaskSet(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::TaskId;

    #[test]
    fn display_and_source() {
        let e = PartitionError::NoCores;
        assert!(e.to_string().contains("zero processors"));
        assert!(e.source().is_none());

        let inner = TaskError::DuplicateTaskId { task: TaskId(3) };
        let e = PartitionError::from(inner);
        assert!(e.to_string().contains("invalid task set"));
        assert!(e.source().is_some());
    }
}
