//! Shared body-piece construction and budget search for task splitting.
//!
//! Both the offline FP-TS pass ([`SemiPartitionedFpTs`]) and the online
//! [`IncrementalPlacer`] carve body subtasks the same way: a `C = D` piece
//! at the promoted body priority, sized to the largest budget the per-core
//! acceptance test still admits (found by binary search over the monotone
//! acceptance frontier). This module is the single implementation both call
//! — only the acceptance predicate differs (a plain task list offline, a
//! priority-normalized partition core online).
//!
//! [`SemiPartitionedFpTs`]: crate::SemiPartitionedFpTs
//! [`IncrementalPlacer`]: crate::IncrementalPlacer

use spms_task::{Task, Time};

/// Builds the analysis task of a body piece: `budget` pure execution plus
/// the charged `overhead`, a deadline equal to its own demand (the paper's
/// `C = D` splitting) and the promoted body priority. `None` when the
/// parameters cannot form a valid task.
pub(crate) fn body_piece(template: &Task, budget: Time, overhead: Time) -> Option<Task> {
    let wcet = budget + overhead;
    Task::builder(template.id())
        .wcet(wcet)
        .period(template.period())
        .deadline(wcet.min(template.period()))
        .priority(crate::BODY_PRIORITY)
        .build()
        .ok()
}

/// The largest pure-execution budget in `[min_split_budget, max_budget]`
/// that `accepts` still admits, or [`Time::ZERO`] when not even the minimum
/// fits. `accepts` must be monotone (a smaller budget never fails where a
/// larger one passes); the frontier is located by binary search to 100 ns.
///
/// The predicate is `FnMut` so callers can thread state *across* probes:
/// the online placer carries a [`ProbeWarmth`](spms_analysis::ProbeWarmth)
/// that warm-starts each probe's fixed points from the last accepted
/// (smaller-budget) probe, cutting the re-convergence work of the search
/// roughly in half without changing any verdict.
pub(crate) fn max_accepted_budget(
    min_split_budget: Time,
    max_budget: Time,
    mut accepts: impl FnMut(Time) -> bool,
) -> Time {
    let floor = min_split_budget.max(Time::from_nanos(1));
    if !accepts(floor) {
        return Time::ZERO;
    }
    if accepts(max_budget) {
        return max_budget;
    }
    let mut lo = floor;
    let mut hi = max_budget;
    while hi.saturating_sub(lo) > Time::from_nanos(100) {
        let mid = Time::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2);
        if accepts(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_search_finds_the_frontier() {
        let threshold = Time::from_micros(700);
        let budget = max_accepted_budget(Time::from_micros(100), Time::from_millis(5), |b| {
            b <= threshold
        });
        assert!(budget <= threshold);
        assert!(threshold.saturating_sub(budget) <= Time::from_nanos(100));
    }

    #[test]
    fn budget_search_short_circuits_at_the_bounds() {
        let all = max_accepted_budget(Time::from_micros(100), Time::from_millis(1), |_| true);
        assert_eq!(all, Time::from_millis(1));
        let none = max_accepted_budget(Time::from_micros(100), Time::from_millis(1), |_| false);
        assert_eq!(none, Time::ZERO);
    }

    #[test]
    fn body_pieces_are_c_equals_d_at_body_priority() {
        let template = Task::new(3, Time::from_millis(4), Time::from_millis(10)).unwrap();
        let piece = body_piece(&template, Time::from_millis(2), Time::from_micros(50)).unwrap();
        assert_eq!(piece.wcet(), piece.deadline());
        assert_eq!(piece.period(), template.period());
        assert_eq!(piece.priority(), Some(crate::BODY_PRIORITY));
    }
}
