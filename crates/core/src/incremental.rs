//! Incremental placement: admitting one task into an existing partition.
//!
//! The offline algorithms in this crate ([`SemiPartitionedFpTs`],
//! [`PartitionedFixedPriority`]) assume the whole task set is known up
//! front. Online admission control (the `spms-online` crate) instead grows
//! and shrinks a live [`Partition`] one task at a time, and needs two
//! primitives this module provides:
//!
//! * [`IncrementalPlacer::plan_whole`] — first-fit placement of a single
//!   task, validated by the same per-core acceptance test the offline
//!   algorithms use;
//! * [`IncrementalPlacer::plan_split`] — FP-TS-style splitting of a single
//!   task across the residual capacity of several cores (bodies are carved
//!   with the same promoted-priority, `C = D` scheme as
//!   [`SemiPartitionedFpTs`], so the resulting pieces are analysable with
//!   the standard constrained-deadline RTA).
//!
//! Planning is separated from committing so that callers can evaluate
//! tentative placements (the bounded-repair search of the online controller
//! moves tasks speculatively and rolls back). All plans are deterministic:
//! cores are scanned in index order for whole placements, and bodies are
//! carved on the core with the most residual utilization (ties broken by
//! index).
//!
//! Priority discipline: within each core, promoted body subtasks sit at
//! [`BODY_PRIORITY`](crate::BODY_PRIORITY), promoted tails at
//! [`TAIL_PRIORITY`](crate::TAIL_PRIORITY), and tasks assigned whole receive
//! dense deadline-monotonic levels from
//! [`WHOLE_PRIORITY_BASE`](crate::WHOLE_PRIORITY_BASE) upward, recomputed by
//! [`Partition::renormalize_core_priorities`] after every mutation. At most
//! one body and one tail may live on a core: the per-core RTA counts
//! same-level tasks as mutually interfering, so stacking promoted pieces on
//! one level would charge each the other's full budget and void the
//! guarantee that a body completes within its own budget.
//!
//! [`SemiPartitionedFpTs`]: crate::SemiPartitionedFpTs
//! [`PartitionedFixedPriority`]: crate::PartitionedFixedPriority

use serde::{Deserialize, Serialize};
use spms_analysis::{rta, OverheadModel, ProbeWarmth, UniprocessorTest};
use spms_task::{Task, TaskId, Time};
use spms_telemetry::{scoped, HotCounter};

use crate::{CoreId, Partition, PlacedTask, SplitInfo, SubtaskKind};

/// How an incrementally admitted task ended up in the partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlacementPlan {
    /// The task fits whole on one core.
    Whole {
        /// The accepting core.
        core: CoreId,
        /// The analysis task (WCET inflated by the overhead model; priority
        /// assigned on commit by the per-core renormalization).
        analysis_task: Task,
    },
    /// The task was split across two or more cores, FP-TS style.
    Split {
        /// The placements in chain order (bodies first, tail last), ready to
        /// insert into the partition.
        pieces: Vec<(CoreId, PlacedTask)>,
    },
}

impl PlacementPlan {
    /// The cores this plan touches, in chain order.
    pub fn cores(&self) -> Vec<CoreId> {
        match self {
            PlacementPlan::Whole { core, .. } => vec![*core],
            PlacementPlan::Split { pieces } => pieces.iter().map(|(c, _)| *c).collect(),
        }
    }

    /// Whether the plan splits the task.
    pub fn is_split(&self) -> bool {
        matches!(self, PlacementPlan::Split { .. })
    }
}

/// Outcome of probing one core for a whole-task placement with blocker
/// localization ([`IncrementalPlacer::probe_whole`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WholeProbe {
    /// The core accepts the task whole.
    Accepted,
    /// The core rejects the task.
    Blocked {
        /// Under the exact RTA: the first task whose slack goes negative
        /// with the candidate added — the candidate's own id when its
        /// recurrence exceeds its deadline, otherwise the first existing
        /// task (in per-core priority order) that would miss its deadline.
        /// `None` when the test has no blocker notion (utilization bounds)
        /// or the task cannot absorb the overhead at all.
        blocker: Option<TaskId>,
    },
}

/// Places single tasks into an existing partition, whole-first-fit with an
/// FP-TS-style splitting fallback. See the [module docs](self) for the
/// placement and priority discipline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncrementalPlacer {
    /// Per-core acceptance test, applied to every candidate core with the
    /// new (sub)task included.
    pub test: UniprocessorTest,
    /// Run-time overheads folded into each placement's analysis WCET, using
    /// the same charging points as [`SemiPartitionedFpTs`](crate::SemiPartitionedFpTs).
    pub overhead: OverheadModel,
    /// Smallest body-subtask budget worth carving.
    pub min_split_budget: Time,
    /// Whether the split-budget binary search threads a
    /// [`ProbeWarmth`] across its probes of one core (each probe
    /// warm-starts from the last accepted smaller-budget probe). Verdicts
    /// are bit-identical either way; disabling exists for benchmarking the
    /// cold probes the warm starts replace.
    pub probe_warm_start: bool,
}

impl Default for IncrementalPlacer {
    fn default() -> Self {
        IncrementalPlacer {
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
            min_split_budget: Time::from_micros(100),
            probe_warm_start: true,
        }
    }
}

impl IncrementalPlacer {
    /// A placer with exact RTA, no overhead, and the default 100 µs minimum
    /// split budget.
    pub fn new() -> Self {
        IncrementalPlacer::default()
    }

    /// Replaces the per-core acceptance test (builder style).
    pub fn with_test(mut self, test: UniprocessorTest) -> Self {
        self.test = test;
        self
    }

    /// Replaces the overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the smallest admissible body-subtask budget (builder style).
    pub fn with_min_split_budget(mut self, budget: Time) -> Self {
        self.min_split_budget = budget;
        self
    }

    /// Enables or disables cross-probe warm starts in the split-budget
    /// search (builder style).
    pub fn with_probe_warm_start(mut self, enabled: bool) -> Self {
        self.probe_warm_start = enabled;
        self
    }

    /// The analysis task of a whole placement: WCET inflated by the
    /// whole-job overhead. `None` when the task cannot absorb the overhead
    /// within its deadline (such a task is unschedulable under this model on
    /// any core).
    pub fn whole_analysis_task(&self, task: &Task) -> Option<Task> {
        self.whole_analysis_task_charged(task, Time::ZERO)
    }

    /// [`whole_analysis_task`](Self::whole_analysis_task) with an additional
    /// per-migration `charge` folded into the WCET — the form used when the
    /// task is being *relocated* (repair move, rebalance) rather than placed
    /// fresh, so the placement must stay schedulable after absorbing the
    /// cache-reload and context-switch cost of the move.
    pub fn whole_analysis_task_charged(&self, task: &Task, charge: Time) -> Option<Task> {
        task.with_wcet(task.wcet() + self.overhead.whole_job_inflation() + charge)
            .ok()
    }

    /// Plans a whole-task placement: the first core (in index order, skipping
    /// `exclude`) whose assignment still passes the acceptance test with the
    /// task added. Does not modify the partition.
    pub fn plan_whole(
        &self,
        partition: &Partition,
        task: &Task,
        exclude: &[CoreId],
    ) -> Option<PlacementPlan> {
        self.plan_whole_charged(partition, task, exclude, Time::ZERO)
    }

    /// [`plan_whole`](Self::plan_whole) with a per-migration `charge`
    /// inflating the analysis WCET (see
    /// [`whole_analysis_task_charged`](Self::whole_analysis_task_charged)).
    /// A zero charge is bit-identical to the uncharged plan.
    pub fn plan_whole_charged(
        &self,
        partition: &Partition,
        task: &Task,
        exclude: &[CoreId],
        charge: Time,
    ) -> Option<PlacementPlan> {
        let analysis_task = self.whole_analysis_task_charged(task, charge)?;
        let core = (0..partition.core_count()).map(CoreId).find(|c| {
            !exclude.contains(c) && self.core_accepts(partition, *c, &analysis_task, false)
        })?;
        Some(PlacementPlan::Whole {
            core,
            analysis_task,
        })
    }

    /// Plans an FP-TS-style split of a single task across the residual
    /// capacity of the partition: body pieces are carved on the cores with
    /// the most residual utilization (largest budget the acceptance test
    /// still admits, found by binary search), and the tail lands on the
    /// first core that accepts what remains. Does not modify the partition.
    ///
    /// Returns `None` when no split placement exists under the constraints
    /// (one body and one tail per core at most, every piece on a distinct
    /// core, bodies no smaller than
    /// [`min_split_budget`](Self::min_split_budget)).
    pub fn plan_split(
        &self,
        partition: &Partition,
        task: &Task,
        exclude: &[CoreId],
    ) -> Option<PlacementPlan> {
        self.plan_split_charged(partition, task, exclude, Time::ZERO)
    }

    /// [`plan_split`](Self::plan_split) with a per-migration `charge`: every
    /// piece after the first — each one reached by an intra-job migration
    /// along the chain — must absorb the charge on top of its split
    /// overhead, since the job pays the cache-reload and context-switch
    /// cost on every hop, every period. A zero charge is bit-identical to
    /// the uncharged plan.
    pub fn plan_split_charged(
        &self,
        partition: &Partition,
        task: &Task,
        exclude: &[CoreId],
        charge: Time,
    ) -> Option<PlacementPlan> {
        let cores = partition.core_count();
        let mut remaining = task.wcet();
        let mut offset = Time::ZERO;
        // (core, analysis piece, pure execution budget), in chain order.
        let mut pieces: Vec<(CoreId, Task, Time)> = Vec::new();

        loop {
            // With at least one body carved, try to finish with a tail. The
            // tail is always reached by a migration (chain index >= 1), so
            // it carries the full per-migration charge.
            if !pieces.is_empty() {
                if let Some(tail) = self.make_tail_piece(task, remaining, offset, charge) {
                    let found = (0..cores).map(CoreId).find(|c| {
                        !exclude.contains(c)
                            && !pieces.iter().any(|(pc, _, _)| pc == c)
                            && !partition.core_has_tail(*c)
                            && self.core_accepts(partition, *c, &tail, true)
                    });
                    if let Some(core) = found {
                        pieces.push((core, tail, remaining));
                        break;
                    }
                }
            }

            // Carve the largest admissible body budget on the unused core
            // with the most residual utilization.
            if pieces.len() + 1 >= cores {
                return None; // no room left for a tail on a distinct core
            }
            let mut candidates: Vec<CoreId> = (0..cores)
                .map(CoreId)
                .filter(|c| {
                    !exclude.contains(c)
                        && !pieces.iter().any(|(pc, _, _)| pc == c)
                        && !partition.core_has_body(*c)
                })
                .collect();
            // Rank by *clamped* spare capacity: an overhead-inflated,
            // overcommitted core reports a negative residual and must not
            // outrank an exactly full one (it ties at zero and falls back
            // to index order instead).
            candidates.sort_by(|a, b| {
                partition
                    .spare_utilization(*b)
                    .partial_cmp(&partition.spare_utilization(*a))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.0.cmp(&b.0))
            });
            let piece_overhead =
                self.body_piece_overhead(pieces.len()) + piece_charge(pieces.len(), charge);
            let deadline_room = task
                .deadline()
                .saturating_sub(offset)
                .saturating_sub(piece_overhead);
            let max_budget = remaining
                .saturating_sub(Time::from_nanos(1))
                .min(deadline_room);
            if max_budget < self.min_split_budget {
                return None;
            }
            let mut carved = false;
            for core in candidates {
                let budget =
                    self.max_body_budget(partition, core, task, max_budget, pieces.len(), charge);
                if budget >= self.min_split_budget && !budget.is_zero() {
                    let piece = crate::split_budget::body_piece(task, budget, piece_overhead)?;
                    offset += piece.wcet();
                    remaining -= budget;
                    pieces.push((core, piece, budget));
                    carved = true;
                    break;
                }
            }
            if !carved {
                return None;
            }
        }

        // Materialise the chain with split metadata.
        let count = pieces.len();
        debug_assert!(count >= 2);
        let first_core = pieces[0].0;
        let core_sequence: Vec<CoreId> = pieces.iter().map(|(c, _, _)| *c).collect();
        let mut running_offset = Time::ZERO;
        let mut placed = Vec::with_capacity(count);
        for (i, (core, piece, budget)) in pieces.into_iter().enumerate() {
            let is_tail = i == count - 1;
            let piece_wcet = piece.wcet();
            placed.push((
                core,
                PlacedTask {
                    task: piece,
                    execution: budget,
                    parent: task.id(),
                    split: Some(SplitInfo {
                        part_index: i,
                        part_count: count,
                        kind: if is_tail {
                            SubtaskKind::Tail
                        } else {
                            SubtaskKind::Body
                        },
                        release_offset: running_offset,
                        next_core: core_sequence.get(i + 1).copied(),
                        first_core,
                    }),
                },
            ));
            running_offset += piece_wcet;
        }
        Some(PlacementPlan::Split { pieces: placed })
    }

    /// Probes one core for a whole-task placement and, on rejection,
    /// localizes the **blocker**: the first task whose `deadline − response`
    /// slack would go negative with the candidate added. Slack-guided
    /// repair uses the blocker to prune eviction candidates — a victim
    /// ranked strictly below the blocker can never relieve it.
    ///
    /// With a converged analysis cache the probe is allocation-free; the
    /// from-scratch fallback reports the same blocker in the same
    /// (priority, id) order, so cached and uncached controllers make
    /// identical repair decisions.
    pub fn probe_whole(&self, partition: &Partition, core: CoreId, task: &Task) -> WholeProbe {
        let Some(analysis_task) = self.whole_analysis_task(task) else {
            return WholeProbe::Blocked { blocker: None };
        };
        scoped::bump(HotCounter::WholeProbes);
        if self.test == UniprocessorTest::ResponseTime {
            if let Some(cache) = partition.cached_core(core) {
                scoped::bump(HotCounter::CacheProbeHits);
                return match cache.probe_candidate(
                    &analysis_task,
                    outranked_by_whole(&analysis_task),
                    |_| false,
                ) {
                    None => WholeProbe::Accepted,
                    Some(id) => WholeProbe::Blocked { blocker: Some(id) },
                };
            }
        }
        scoped::bump(HotCounter::CacheProbeMisses);
        let tasks = normalized_candidate_tasks(partition.core(core), analysis_task, false);
        if self.test != UniprocessorTest::ResponseTime {
            return if self.test.accepts(&tasks) {
                WholeProbe::Accepted
            } else {
                WholeProbe::Blocked { blocker: None }
            };
        }
        let analysis = rta::analyse_core(&tasks);
        if analysis.schedulable {
            return WholeProbe::Accepted;
        }
        // Report the first failure in the same order as the cached probe:
        // the candidate first, then the existing tasks by (level, id).
        let candidate_pos = tasks
            .iter()
            .position(|t| t.id() == task.id())
            .expect("candidate was appended above");
        if analysis.response_times[candidate_pos].is_none() {
            return WholeProbe::Blocked {
                blocker: Some(task.id()),
            };
        }
        let mut order: Vec<usize> = (0..tasks.len()).filter(|i| *i != candidate_pos).collect();
        order.sort_by_key(|&i| (rta::effective_priority(&tasks[i]).level(), tasks[i].id()));
        let blocker = order
            .into_iter()
            .find(|&i| analysis.response_times[i].is_none())
            .map(|i| tasks[i].id());
        debug_assert!(blocker.is_some(), "unschedulable core with no failing task");
        WholeProbe::Blocked { blocker }
    }

    /// What-if probe for one repair eviction: would `core` accept `task`
    /// whole with every placement of parent `removed` evicted from it
    /// first? Allocation-free through the analysis cache; the from-scratch
    /// fallback is bit-identical (same commit-time priority ranking).
    pub fn accepts_whole_without(
        &self,
        partition: &Partition,
        core: CoreId,
        task: &Task,
        removed: TaskId,
    ) -> bool {
        let Some(analysis_task) = self.whole_analysis_task(task) else {
            return false;
        };
        scoped::bump(HotCounter::WholeProbes);
        if self.test == UniprocessorTest::ResponseTime {
            if let Some(cache) = partition.cached_core(core) {
                scoped::bump(HotCounter::CacheProbeHits);
                return cache.accepts_candidate_without(
                    &analysis_task,
                    removed,
                    outranked_by_whole(&analysis_task),
                    |_| false,
                );
            }
        }
        scoped::bump(HotCounter::CacheProbeMisses);
        let bin: Vec<PlacedTask> = partition
            .core(core)
            .iter()
            .filter(|p| p.parent != removed)
            .cloned()
            .collect();
        let tasks = normalized_candidate_tasks(&bin, analysis_task, false);
        self.test.accepts(&tasks)
    }

    /// Plans whole-first, split-second: the admission fast path.
    pub fn plan(
        &self,
        partition: &Partition,
        task: &Task,
        exclude: &[CoreId],
    ) -> Option<PlacementPlan> {
        self.plan_charged(partition, task, exclude, Time::ZERO)
    }

    /// [`plan`](Self::plan) with a per-migration `charge`: the form used
    /// when an already-placed task is *relocated*. A whole placement on the
    /// new core absorbs one charge (the relocation reload); a split
    /// placement charges every piece after the first (the recurring
    /// intra-job hops — the one-time entry reload is dominated by them and
    /// deliberately not double-charged). A zero charge is bit-identical to
    /// the uncharged plan.
    pub fn plan_charged(
        &self,
        partition: &Partition,
        task: &Task,
        exclude: &[CoreId],
        charge: Time,
    ) -> Option<PlacementPlan> {
        self.plan_whole_charged(partition, task, exclude, charge)
            .or_else(|| self.plan_split_charged(partition, task, exclude, charge))
    }

    /// Commits a plan produced by [`plan_whole`](Self::plan_whole) /
    /// [`plan_split`](Self::plan_split) against the same partition state,
    /// renormalizing the priorities of every touched core.
    pub fn commit(&self, partition: &mut Partition, task: &Task, plan: PlacementPlan) {
        match plan {
            PlacementPlan::Whole {
                core,
                analysis_task,
            } => {
                partition.place(
                    core,
                    PlacedTask {
                        task: analysis_task,
                        execution: task.wcet(),
                        parent: task.id(),
                        split: None,
                    },
                );
                partition.renormalize_core_priorities(core);
            }
            PlacementPlan::Split { pieces } => {
                let cores: Vec<CoreId> = pieces.iter().map(|(c, _)| *c).collect();
                for (core, placed) in pieces {
                    partition.place(core, placed);
                }
                for core in cores {
                    partition.renormalize_core_priorities(core);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Whether `core` still passes the acceptance test with `candidate`
    /// added. `candidate_is_split` marks promoted pieces, which keep their
    /// reserved priority; whole candidates are ranked deadline-monotonically
    /// among the core's existing whole tasks, exactly as
    /// [`Partition::renormalize_core_priorities`] will rank them on commit.
    ///
    /// When the partition carries a converged analysis cache and the test is
    /// the exact RTA, the probe runs through
    /// [`CachedCoreAnalysis::accepts_candidate`](spms_analysis::CachedCoreAnalysis::accepts_candidate):
    /// no task vectors are cloned, tasks ranked above the candidate keep
    /// their memoized response times, and tasks below re-converge from warm
    /// starts — bit-identical to the from-scratch fallback below.
    fn core_accepts(
        &self,
        partition: &Partition,
        core: CoreId,
        candidate: &Task,
        candidate_is_split: bool,
    ) -> bool {
        scoped::bump(if candidate_is_split {
            HotCounter::SplitProbes
        } else {
            HotCounter::WholeProbes
        });
        if self.test == UniprocessorTest::ResponseTime {
            if let Some(cache) = partition.cached_core(core) {
                scoped::bump(HotCounter::CacheProbeHits);
                if candidate_is_split {
                    // Promoted pieces keep their reserved level: they peer
                    // with (hypothetical) same-level pieces and outrank
                    // strictly lower levels.
                    return cache.accepts_prioritised(candidate);
                }
                // A whole candidate slots into the deadline-monotonic order
                // the commit-time renormalization will assign: it outranks
                // exactly the whole tasks with a larger DM key, and peers
                // with none (dense re-ranked levels are distinct).
                return cache
                    .accepts_candidate(candidate, outranked_by_whole(candidate), |_| false);
            }
        }
        scoped::bump(HotCounter::CacheProbeMisses);
        let tasks =
            normalized_candidate_tasks(partition.core(core), candidate.clone(), candidate_is_split);
        self.test.accepts(&tasks)
    }

    /// The analysis overhead charged to a body piece at `piece_index` in its
    /// chain (mirrors `SemiPartitionedFpTs`).
    fn body_piece_overhead(&self, piece_index: usize) -> Time {
        if piece_index == 0 {
            self.overhead.first_piece_inflation()
        } else {
            self.overhead.body_piece_inflation()
        }
    }

    /// The largest body budget (pure execution) the acceptance test still
    /// admits on `core`, bounded by `max_budget`; `Time::ZERO` when not even
    /// the minimum budget fits. The piece construction and the binary search
    /// over the acceptance frontier are shared with the offline FP-TS pass
    /// (`split_budget` module); only the acceptance predicate differs.
    fn max_body_budget(
        &self,
        partition: &Partition,
        core: CoreId,
        template: &Task,
        max_budget: Time,
        piece_index: usize,
        charge: Time,
    ) -> Time {
        let overhead = self.body_piece_overhead(piece_index) + piece_charge(piece_index, charge);
        self.max_body_budget_with_overhead(partition, core, template, max_budget, overhead)
    }

    /// [`max_body_budget`](Self::max_body_budget) with the piece's analysis
    /// overhead already resolved — the form the cross-shard planner uses,
    /// whose charging rule (every cross-shard piece absorbs one charge)
    /// differs from the intra-shard chain rule.
    fn max_body_budget_with_overhead(
        &self,
        partition: &Partition,
        core: CoreId,
        template: &Task,
        max_budget: Time,
        overhead: Time,
    ) -> Time {
        // Every probe of this search hits the same core with the same
        // template at a different budget: thread one warm-start state
        // through them so each probe resumes from the last accepted
        // (smaller) budget's converged response times. Bit-identical to
        // cold probes; only the iteration count drops.
        let mut warmth = ProbeWarmth::new();
        let warm_cache = (self.probe_warm_start && self.test == UniprocessorTest::ResponseTime)
            .then(|| partition.cached_core(core))
            .flatten();
        crate::split_budget::max_accepted_budget(self.min_split_budget, max_budget, |budget| {
            match crate::split_budget::body_piece(template, budget, overhead) {
                Some(piece) => match warm_cache {
                    Some(cache) => {
                        scoped::bump(HotCounter::SplitProbes);
                        scoped::bump(HotCounter::CacheProbeHits);
                        cache.accepts_prioritised_warm(&piece, &mut warmth)
                    }
                    None => self.core_accepts(partition, core, &piece, true),
                },
                None => false,
            }
        })
    }

    /// Plans the **body half** of a shard-spanning split on this (donor)
    /// partition: the largest admissible single body piece, carved on the
    /// core with the most clamped spare capacity (ties by index), exactly
    /// as the intra-shard split pass ranks candidates. Unlike chain index
    /// 0 of a local split, a cross-shard body is reached by a
    /// shard-boundary migration every job, so it absorbs one per-migration
    /// `charge` on top of its first-piece overhead. Returns the hosting
    /// core, the analysis piece (promoted to body priority, `C = D`), and
    /// the pure execution budget it covers. Does not modify the partition.
    pub fn plan_remote_body(
        &self,
        partition: &Partition,
        task: &Task,
        charge: Time,
    ) -> Option<(CoreId, Task, Time)> {
        let overhead = self.overhead.first_piece_inflation() + charge;
        let deadline_room = task.deadline().saturating_sub(overhead);
        let max_budget = task
            .wcet()
            .saturating_sub(Time::from_nanos(1))
            .min(deadline_room);
        if max_budget < self.min_split_budget {
            return None;
        }
        let mut candidates: Vec<CoreId> = (0..partition.core_count())
            .map(CoreId)
            .filter(|c| !partition.core_has_body(*c))
            .collect();
        candidates.sort_by(|a, b| {
            partition
                .spare_utilization(*b)
                .partial_cmp(&partition.spare_utilization(*a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });
        for core in candidates {
            let budget =
                self.max_body_budget_with_overhead(partition, core, task, max_budget, overhead);
            if budget >= self.min_split_budget && !budget.is_zero() {
                let piece = crate::split_budget::body_piece(task, budget, overhead)?;
                return Some((core, piece, budget));
            }
        }
        None
    }

    /// Plans the **tail half** of a shard-spanning split on this (receiver)
    /// partition: the remaining `budget` of pure execution, released
    /// `offset` after the parent (the donor body's analysis WCET), landing
    /// on the first core without a tail that accepts the piece. Like every
    /// cross-shard piece it absorbs one per-migration `charge`. Returns the
    /// hosting core and the analysis piece. Does not modify the partition.
    pub fn plan_remote_tail(
        &self,
        partition: &Partition,
        task: &Task,
        budget: Time,
        offset: Time,
        charge: Time,
    ) -> Option<(CoreId, Task)> {
        let tail = self.make_tail_piece(task, budget, offset, charge)?;
        let core = (0..partition.core_count()).map(CoreId).find(|c| {
            !partition.core_has_tail(*c) && self.core_accepts(partition, *c, &tail, true)
        })?;
        Some((core, tail))
    }

    /// The tail piece of a split chain with `budget` pure execution left,
    /// released `offset` after the parent, absorbing `charge` per-migration
    /// cost. `None` when the piece cannot meet what is left of the deadline.
    fn make_tail_piece(
        &self,
        task: &Task,
        budget: Time,
        offset: Time,
        charge: Time,
    ) -> Option<Task> {
        let wcet = budget + self.overhead.tail_piece_inflation() + charge;
        let deadline = task.deadline().checked_sub(offset)?;
        if deadline > task.period() || wcet > deadline {
            return None;
        }
        Task::builder(task.id())
            .wcet(wcet)
            .period(task.period())
            .deadline(deadline)
            .priority(crate::TAIL_PRIORITY)
            .build()
            .ok()
    }
}

/// The per-migration charge a split piece at `piece_index` absorbs: pieces
/// after the first are each reached by one intra-job hop; the first piece
/// starts where the job is released and pays nothing.
fn piece_charge(piece_index: usize, charge: Time) -> Time {
    if piece_index == 0 {
        Time::ZERO
    } else {
        charge
    }
}

/// The deadline-monotonic ranking key `assign_whole_priorities` sorts whole
/// tasks by — the cached probe's notion of where a whole candidate lands.
fn whole_rank_key(task: &Task) -> (Time, Time, spms_task::TaskId) {
    (task.deadline(), task.period(), task.id())
}

/// The probe-side predicate marking the entries a whole `candidate`
/// outranks under the commit-time ranking: every non-reserved task with a
/// larger DM key. The single definition every cached whole probe
/// ([`IncrementalPlacer::core_accepts`], [`IncrementalPlacer::probe_whole`],
/// [`IncrementalPlacer::accepts_whole_without`]) shares — the cached and
/// from-scratch paths stay decision-identical only while this rule does.
fn outranked_by_whole(candidate: &Task) -> impl Fn(&Task) -> bool {
    let key = whole_rank_key(candidate);
    move |t| !has_reserved_level(t) && whole_rank_key(t) > key
}

/// Whether whole task `a` ranks at-or-above whole task `b` under the
/// commit-time deadline-monotonic ranking (`assign_whole_priorities`
/// order: deadline, then period, then id) — i.e. `a` would interfere with
/// `b` on a shared core. The public face of [`whole_rank_key`] for
/// callers (the online controller's slack-guided victim pruning) that
/// must agree with the probes' ranking rule.
pub fn whole_outranks_or_ties(a: &Task, b: &Task) -> bool {
    whole_rank_key(a) <= whole_rank_key(b)
}

/// Whether a task sits on a level reserved for promoted split pieces (and
/// is therefore exempt from whole-task re-ranking).
fn has_reserved_level(task: &Task) -> bool {
    task.priority()
        .is_some_and(|p| p.level() < crate::WHOLE_PRIORITY_BASE)
}

/// The per-core analysis task list with `candidate` included and whole-task
/// priorities renormalized (split pieces keep their reserved levels) — the
/// exact ranking [`Partition::renormalize_core_priorities`] will commit,
/// via the shared `assign_whole_priorities` helper.
fn normalized_candidate_tasks(
    bin: &[PlacedTask],
    candidate: Task,
    candidate_is_split: bool,
) -> Vec<Task> {
    let mut tasks: Vec<(Task, bool)> = bin.iter().map(|p| (p.task.clone(), p.is_split())).collect();
    tasks.push((candidate, candidate_is_split));
    crate::placement::assign_whole_priorities(
        tasks
            .iter_mut()
            .filter(|(_, is_split)| !is_split)
            .map(|(t, _)| t)
            .collect(),
    );
    tasks.into_iter().map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::TaskId;

    fn task(id: u32, wcet_ms: u64, period_ms: u64) -> Task {
        Task::new(id, Time::from_millis(wcet_ms), Time::from_millis(period_ms)).unwrap()
    }

    fn placer() -> IncrementalPlacer {
        IncrementalPlacer::new()
    }

    #[test]
    fn whole_placement_is_first_fit_in_core_order() {
        let mut partition = Partition::new(2);
        let t0 = task(0, 3, 10);
        let plan = placer().plan_whole(&partition, &t0, &[]).unwrap();
        assert_eq!(plan.cores(), vec![CoreId(0)]);
        placer().commit(&mut partition, &t0, plan);

        let t1 = task(1, 3, 10);
        let plan = placer().plan_whole(&partition, &t1, &[]).unwrap();
        assert_eq!(plan.cores(), vec![CoreId(0)], "first fit, not worst fit");
        placer().commit(&mut partition, &t1, plan);
        assert_eq!(partition.validate(), Ok(()));
        assert!(partition.is_schedulable(UniprocessorTest::ResponseTime));
    }

    #[test]
    fn exclusion_skips_cores() {
        let partition = Partition::new(2);
        let t = task(0, 3, 10);
        let plan = placer().plan_whole(&partition, &t, &[CoreId(0)]).unwrap();
        assert_eq!(plan.cores(), vec![CoreId(1)]);
    }

    #[test]
    fn oversubscribed_core_rejects_whole_placement() {
        let mut partition = Partition::new(1);
        let t0 = task(0, 7, 10);
        let plan = placer().plan(&partition, &t0, &[]).unwrap();
        placer().commit(&mut partition, &t0, plan);
        assert!(placer()
            .plan_whole(&partition, &task(1, 7, 10), &[])
            .is_none());
        assert!(placer().plan(&partition, &task(1, 7, 10), &[]).is_none());
    }

    #[test]
    fn split_covers_the_full_wcet_and_validates() {
        // Two cores at 60% each cannot take a 60% task whole, but can split it.
        let mut partition = Partition::new(2);
        for (id, core) in [(0u32, 0usize), (1, 1)] {
            let t = task(id, 6, 10);
            let plan = PlacementPlan::Whole {
                core: CoreId(core),
                analysis_task: t.clone(),
            };
            placer().commit(&mut partition, &t, plan);
        }
        let t2 = task(2, 6, 10);
        assert!(placer().plan_whole(&partition, &t2, &[]).is_none());
        let plan = placer().plan_split(&partition, &t2, &[]).unwrap();
        assert!(plan.is_split());
        let PlacementPlan::Split { pieces } = &plan else {
            unreachable!()
        };
        assert_eq!(pieces.len(), 2);
        let total: Time = pieces.iter().map(|(_, p)| p.execution).sum();
        assert_eq!(total, Time::from_millis(6));
        placer().commit(&mut partition, &t2, plan);
        assert_eq!(partition.validate(), Ok(()));
        assert!(partition.is_schedulable(UniprocessorTest::ResponseTime));
        assert_eq!(partition.split_count(), 1);
    }

    #[test]
    fn split_respects_one_tail_per_core() {
        let mut partition = Partition::new(2);
        for (id, core) in [(0u32, 0usize), (1, 1)] {
            let t = task(id, 6, 10);
            let plan = PlacementPlan::Whole {
                core: CoreId(core),
                analysis_task: t.clone(),
            };
            placer().commit(&mut partition, &t, plan);
        }
        let t2 = task(2, 6, 10);
        let plan = placer().plan_split(&partition, &t2, &[]).unwrap();
        placer().commit(&mut partition, &t2, plan);
        // Both cores now carry a split piece; a second split task would need
        // a tail on a core that already has a body or tail, and each core
        // may host at most one of each.
        let t3 = task(3, 4, 10);
        if let Some(plan) = placer().plan_split(&partition, &t3, &[]) {
            let PlacementPlan::Split { pieces } = &plan else {
                unreachable!()
            };
            for (core, placed) in pieces {
                if placed.is_tail() {
                    assert!(!partition.core_has_tail(*core));
                } else {
                    assert!(!partition.core_has_body(*core));
                }
            }
        }
    }

    #[test]
    fn split_ranks_cores_by_clamped_spare_capacity() {
        // Core 0 is overcommitted by overhead inflation (analysis WCETs sum
        // to 130% while the pure execution budgets stay lower): its residual
        // is negative, and the split pass must rank it by *clamped* spare
        // capacity — never carving a piece there and never letting the
        // negative value distort the candidate order for the real cores.
        let mut partition = Partition::new(3);
        for (id, wcet_ms) in [(0u32, 7u64), (1, 6)] {
            let inflated = task(id, wcet_ms, 10);
            partition.place(
                CoreId(0),
                PlacedTask::whole(inflated).with_execution(Time::from_millis(5)),
            );
        }
        partition.renormalize_core_priorities(CoreId(0));
        for (id, wcet_ms, core) in [(2u32, 55u64, 1usize), (3, 50, 2)] {
            let t = Task::new(id, Time::from_millis(wcet_ms), Time::from_millis(100)).unwrap();
            let plan = PlacementPlan::Whole {
                core: CoreId(core),
                analysis_task: t.clone(),
            };
            placer().commit(&mut partition, &t, plan);
        }
        assert!(partition.residual_utilization(CoreId(0)) < 0.0);
        assert_eq!(partition.spare_utilization(CoreId(0)), 0.0);

        // 80% fits nowhere whole; the split must use cores 1 and 2 only,
        // carving the body on core 2 (the most spare capacity).
        let arrival = task(4, 8, 10);
        assert!(placer().plan_whole(&partition, &arrival, &[]).is_none());
        let plan = placer().plan_split(&partition, &arrival, &[]).unwrap();
        let cores = plan.cores();
        assert!(
            !cores.contains(&CoreId(0)),
            "split used the overcommitted core: {cores:?}"
        );
        assert_eq!(cores[0], CoreId(2), "body must land on the most-spare core");
        placer().commit(&mut partition, &arrival, plan);
        assert_eq!(partition.validate(), Ok(()));
    }

    #[test]
    fn plans_do_not_mutate_the_partition() {
        let partition = Partition::new(2);
        let t = task(0, 2, 10);
        let before = partition.clone();
        let _ = placer().plan(&partition, &t, &[]);
        assert_eq!(partition, before);
    }

    #[test]
    fn zero_charge_plans_are_identical_to_uncharged_plans() {
        let mut partition = Partition::new(2);
        for (id, core) in [(0u32, 0usize), (1, 1)] {
            let t = task(id, 6, 10);
            let plan = PlacementPlan::Whole {
                core: CoreId(core),
                analysis_task: t.clone(),
            };
            placer().commit(&mut partition, &t, plan);
        }
        for probe in [task(2, 2, 10), task(3, 6, 10)] {
            assert_eq!(
                placer().plan(&partition, &probe, &[]),
                placer().plan_charged(&partition, &probe, &[], Time::ZERO),
            );
        }
    }

    #[test]
    fn charge_inflates_whole_and_split_analysis_wcets() {
        let charge = Time::from_micros(500);
        let partition = Partition::new(2);
        let t = task(0, 3, 10);
        let Some(PlacementPlan::Whole { analysis_task, .. }) =
            placer().plan_whole_charged(&partition, &t, &[], charge)
        else {
            panic!("whole placement expected");
        };
        assert_eq!(analysis_task.wcet(), t.wcet() + charge);

        // Force a split and check every piece after the first absorbs the
        // charge on top of its budget.
        let mut partition = Partition::new(2);
        for (id, core) in [(1u32, 0usize), (2, 1)] {
            let base = task(id, 6, 10);
            let plan = PlacementPlan::Whole {
                core: CoreId(core),
                analysis_task: base.clone(),
            };
            placer().commit(&mut partition, &base, plan);
        }
        let t3 = task(3, 6, 10);
        let Some(PlacementPlan::Split { pieces }) =
            placer().plan_split_charged(&partition, &t3, &[], charge)
        else {
            panic!("split placement expected");
        };
        assert!(pieces.len() >= 2);
        assert_eq!(pieces[0].1.task.wcet(), pieces[0].1.execution);
        for (_, placed) in &pieces[1..] {
            assert_eq!(placed.task.wcet(), placed.execution + charge);
        }
        // The charge eats real budget: the charged split covers the same
        // total execution with strictly more analysis WCET.
        let total: Time = pieces.iter().map(|(_, p)| p.execution).sum();
        assert_eq!(total, t3.wcet());
    }

    #[test]
    fn an_unaffordable_charge_rejects_the_placement() {
        // A charge larger than the deadline room can absorb must fail the
        // plan rather than silently dropping the cost.
        let partition = Partition::new(2);
        let t = task(0, 6, 10);
        let charge = Time::from_millis(20);
        assert!(placer().plan_charged(&partition, &t, &[], charge).is_none());
    }

    #[test]
    fn committed_whole_plan_matches_parent() {
        let mut partition = Partition::new(1);
        let t = task(4, 2, 10);
        let plan = placer().plan(&partition, &t, &[]).unwrap();
        placer().commit(&mut partition, &t, plan);
        let placements = partition.placements_of(TaskId(4));
        assert_eq!(placements.len(), 1);
        assert_eq!(placements[0].1.execution, Time::from_millis(2));
        assert!(!placements[0].1.is_split());
    }
}
