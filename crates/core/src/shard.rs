//! Sharding primitives for the online admission service.
//!
//! A sharded deployment splits the machine's core set into N independent
//! [`Partition`]s, each with its own mutation journal and RTA cache, so
//! admission decisions on different shards never contend on shared analysis
//! state. This module supplies the pieces that are pure placement policy —
//! everything that does not need to know about admission bookkeeping:
//!
//! * [`shard_core_counts`] — near-even division of the core set,
//! * [`ShardRouter`] — deterministic hash-based home-shard assignment plus a
//!   utilization-aware overflow order for cross-shard placement when the
//!   home shard rejects an arrival,
//! * [`rebalance_partitions`] — the periodic work-stealing pass that moves
//!   whole-placed tasks from the most-loaded shard to the most-spare one,
//!   each attempt wrapped in a [`PlanTxn`] scope on the donor so a
//!   receiver-side rejection leaves both shards untouched,
//! * [`stitch_partitions`] — the inverse of sharding: a fleet-global
//!   [`Partition`] with every shard's cores concatenated and cross-shard
//!   split chains relinked, so a sharded deployment (including shard-spanning
//!   splits) can be replayed through the single-machine simulator.

use crate::incremental::IncrementalPlacer;
use crate::placement::{CoreId, Partition};
use crate::txn::PlanTxn;
use spms_task::{Task, TaskId, Time};

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |acc, b| {
        (acc ^ u64::from(*b)).wrapping_mul(FNV_PRIME)
    })
}

/// Splits `total_cores` processor cores into `shards` near-even groups.
///
/// The first `total_cores % shards` shards get one extra core, so shard
/// sizes differ by at most one and every core is assigned exactly once.
///
/// # Panics
///
/// Panics if `shards` is zero or exceeds `total_cores` (a shard with zero
/// cores could never admit anything).
pub fn shard_core_counts(total_cores: usize, shards: usize) -> Vec<usize> {
    assert!(shards > 0, "shard count must be positive");
    assert!(
        shards <= total_cores,
        "cannot split {total_cores} cores into {shards} shards"
    );
    let base = total_cores / shards;
    let extra = total_cores % shards;
    (0..shards)
        .map(|idx| base + usize::from(idx < extra))
        .collect()
}

/// Routes arriving tasks to shards.
///
/// Every task has a deterministic *home shard* derived from an FNV-1a hash
/// of its id, which spreads unrelated arrivals across shards without any
/// shared state. When the home shard rejects, [`placement_order`]
/// (ShardRouter::placement_order) continues with the remaining shards in
/// descending spare-utilization order (index as the tie-break), so overflow
/// placement tries the roomiest shard first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shard_count: usize,
}

impl ShardRouter {
    /// A router over `shard_count` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count` is zero.
    pub fn new(shard_count: usize) -> Self {
        assert!(shard_count > 0, "shard count must be positive");
        ShardRouter { shard_count }
    }

    /// The number of shards routed over.
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The deterministic home shard for a task id.
    pub fn home_shard(&self, id: TaskId) -> usize {
        (fnv1a(&id.0.to_le_bytes()) % self.shard_count as u64) as usize
    }

    /// The order in which shards should be offered an arriving task: the
    /// home shard first, then every other shard by descending spare
    /// utilization (`spare[i]`), lowest index first on ties.
    ///
    /// # Panics
    ///
    /// Panics if `spare` does not have one entry per shard.
    pub fn placement_order(&self, id: TaskId, spare: &[f64]) -> Vec<usize> {
        assert_eq!(
            spare.len(),
            self.shard_count,
            "spare-utilization vector must have one entry per shard"
        );
        let home = self.home_shard(id);
        let mut order = Vec::with_capacity(self.shard_count);
        order.push(home);
        let mut rest: Vec<usize> = (0..self.shard_count).filter(|i| *i != home).collect();
        rest.sort_by(|a, b| {
            spare[*b]
                .partial_cmp(&spare[*a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        order.extend(rest);
        order
    }
}

/// One task migration performed by [`rebalance_partitions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceMove {
    /// The migrated parent task.
    pub task: TaskId,
    /// Shard the task left.
    pub from: usize,
    /// Shard the task now lives on.
    pub to: usize,
}

/// Total spare utilization of one shard (sum over its cores).
fn shard_spare(partition: &Partition) -> f64 {
    (0..partition.core_count())
        .map(|c| partition.spare_utilization(CoreId(c)))
        .sum()
}

/// Work-steals spare utilization between shards: repeatedly moves a
/// whole-placed task from the most-loaded shard (least spare utilization)
/// to the most-spare one, until `max_moves` migrations have been performed
/// or no migration still improves the balance.
///
/// Only migrations that keep the receiver at least as spare as the donor
/// afterwards are attempted (`u <= (spare_to - spare_from) / 2`), which
/// rules out oscillation across successive rebalance ticks. Among the
/// eligible candidates the largest utilization is tried first (steal the
/// most imbalance per move), smallest id on ties. Split tasks never move:
/// their placements encode cross-core precedence that a whole-placement
/// steal cannot preserve.
///
/// Each attempt removes the candidate from the donor inside a [`PlanTxn`]
/// scope, then plans a whole placement on the receiver; if the receiver's
/// RTA rejects the task the transaction aborts and the donor is rewound
/// bit-identically before the next candidate is tried. Donors without an
/// attached journal fall back to planning on the receiver *before*
/// removing, which needs no rollback scope at all but plans against
/// slightly staler receiver state (the outcome is identical because donor
/// and receiver are distinct partitions).
///
/// `lookup` maps a parent id back to the original (un-inflated) task; ids
/// it cannot resolve are skipped. `charge_of` is the per-migration WCET
/// charge the receiver-side placement must absorb (the admission cost
/// model; `&|_| Time::ZERO` for free moves) — a candidate whose charged
/// placement the receiver's RTA rejects is skipped like any other
/// rejection, so rebalancing never trades balance for schedulability.
/// Returns the migrations performed, in order.
pub fn rebalance_partitions(
    shards: &mut [&mut Partition],
    placer: &IncrementalPlacer,
    lookup: &dyn Fn(TaskId) -> Option<Task>,
    charge_of: &dyn Fn(&Task) -> Time,
    max_moves: usize,
) -> Vec<RebalanceMove> {
    let mut moves = Vec::new();
    if shards.len() < 2 {
        return moves;
    }
    'pass: while moves.len() < max_moves {
        let spares: Vec<f64> = shards.iter().map(|p| shard_spare(p)).collect();
        let donor = (0..spares.len())
            .min_by(|a, b| {
                spares[*a]
                    .partial_cmp(&spares[*b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.cmp(b))
            })
            .expect("at least two shards");
        let receiver = (0..spares.len())
            .max_by(|a, b| {
                spares[*a]
                    .partial_cmp(&spares[*b])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.cmp(a))
            })
            .expect("at least two shards");
        if donor == receiver {
            return moves;
        }
        let headroom = (spares[receiver] - spares[donor]) / 2.0;
        if headroom <= 0.0 {
            return moves;
        }

        let mut candidates: Vec<(TaskId, Task)> = shards[donor]
            .parent_ids()
            .into_iter()
            .filter(|id| {
                let placements = shards[donor].placements_of(*id);
                placements.len() == 1 && !placements[0].1.is_split()
            })
            .filter_map(|id| lookup(id).map(|task| (id, task)))
            .filter(|(_, task)| {
                let u = task.utilization();
                u > 0.0 && u <= headroom
            })
            .collect();
        candidates.sort_by(|a, b| {
            b.1.utilization()
                .partial_cmp(&a.1.utilization())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.0.cmp(&b.0))
        });

        for (id, task) in candidates {
            let charge = charge_of(&task);
            let migrated = if shards[donor].journal_enabled() {
                let mut txn = PlanTxn::new();
                txn.begin(&mut *shards[donor]);
                shards[donor].remove_parent(id);
                match placer.plan_whole_charged(shards[receiver], &task, &[], charge) {
                    Some(plan) => {
                        placer.commit(shards[receiver], &task, plan);
                        txn.commit(std::slice::from_mut(&mut shards[donor]));
                        true
                    }
                    None => {
                        txn.abort(std::slice::from_mut(&mut shards[donor]));
                        false
                    }
                }
            } else {
                match placer.plan_whole_charged(shards[receiver], &task, &[], charge) {
                    Some(plan) => {
                        shards[donor].remove_parent(id);
                        placer.commit(shards[receiver], &task, plan);
                        true
                    }
                    None => false,
                }
            };
            if migrated {
                moves.push(RebalanceMove {
                    task: id,
                    from: donor,
                    to: receiver,
                });
                continue 'pass;
            }
        }
        // No candidate on the most-loaded shard fits the most-spare one:
        // further passes would pick the same pair, so the rebalance is done.
        return moves;
    }
    moves
}

/// Stitches a sharded deployment back into one fleet-global [`Partition`]:
/// shard `s`'s cores occupy the global id range starting at the sum of the
/// earlier shards' core counts, and split chains that span shards (boundary
/// pieces carry `next_core: None` with a shard-local `first_core`) are
/// relinked with global core ids so the stitched partition passes the full
/// chain validation and can be replayed through the simulator.
///
/// The stitched partition carries no journal or analysis cache; per-core
/// placement order and priorities are preserved verbatim, so every core
/// schedules exactly as it did on its shard.
///
/// # Panics
///
/// Panics if the shards do not jointly hold every piece of each split chain
/// (a chain's `part_count` exceeds the pieces found fleet-wide).
pub fn stitch_partitions(shards: &[&Partition]) -> Partition {
    use std::collections::BTreeMap;

    let total: usize = shards.iter().map(|p| p.core_count()).sum();
    let mut offsets = Vec::with_capacity(shards.len());
    let mut base = 0usize;
    for p in shards {
        offsets.push(base);
        base += p.core_count();
    }

    // Global chain map: parent -> part_index -> global core, so boundary
    // pieces can be relinked across shard seams.
    let mut chains: BTreeMap<TaskId, BTreeMap<usize, CoreId>> = BTreeMap::new();
    for (s, p) in shards.iter().enumerate() {
        for (core, placed) in p.iter() {
            if let Some(info) = &placed.split {
                chains
                    .entry(placed.parent)
                    .or_default()
                    .insert(info.part_index, CoreId(core.0 + offsets[s]));
            }
        }
    }

    let mut stitched = Partition::new(total);
    for (s, p) in shards.iter().enumerate() {
        for (core, placed) in p.iter() {
            let mut placed = placed.clone();
            let parent = placed.parent;
            if let Some(info) = placed.split.as_mut() {
                let chain = &chains[&parent];
                info.first_core = *chain
                    .get(&0)
                    .unwrap_or_else(|| panic!("split task {parent} is missing its first piece"));
                info.next_core = if info.part_index + 1 < info.part_count {
                    Some(*chain.get(&(info.part_index + 1)).unwrap_or_else(|| {
                        panic!(
                            "split task {parent} is missing piece {}",
                            info.part_index + 1
                        )
                    }))
                } else {
                    None
                };
            }
            stitched.place(CoreId(core.0 + offsets[s]), placed);
        }
    }
    stitched
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::Time;

    fn task(id: u32, wcet_ms: u64, period_ms: u64) -> Task {
        Task::new(id, Time::from_millis(wcet_ms), Time::from_millis(period_ms)).expect("valid task")
    }

    fn shard_with(cores: usize, tasks: &[Task]) -> Partition {
        let mut partition = Partition::new(cores);
        partition.enable_analysis_cache();
        partition.enable_journal();
        let placer = IncrementalPlacer::new();
        for t in tasks {
            let plan = placer.plan_whole(&partition, t, &[]).expect("fits");
            placer.commit(&mut partition, t, plan);
        }
        partition
    }

    #[test]
    fn core_counts_split_near_evenly() {
        assert_eq!(shard_core_counts(8, 1), vec![8]);
        assert_eq!(shard_core_counts(8, 2), vec![4, 4]);
        assert_eq!(shard_core_counts(8, 3), vec![3, 3, 2]);
        assert_eq!(shard_core_counts(5, 4), vec![2, 1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn core_counts_reject_more_shards_than_cores() {
        shard_core_counts(2, 3);
    }

    #[test]
    fn home_shard_is_stable_and_in_range() {
        let router = ShardRouter::new(3);
        for id in 0..64u32 {
            let home = router.home_shard(TaskId(id));
            assert!(home < 3);
            assert_eq!(home, router.home_shard(TaskId(id)));
        }
        // The hash actually spreads ids over shards.
        let homes: std::collections::BTreeSet<usize> =
            (0..64u32).map(|id| router.home_shard(TaskId(id))).collect();
        assert_eq!(homes.len(), 3);
    }

    #[test]
    fn placement_order_visits_home_first_then_spare_descending() {
        let router = ShardRouter::new(4);
        let id = TaskId(7);
        let home = router.home_shard(id);
        let mut spare = vec![0.25, 0.5, 1.5, 1.0];
        spare[home] = 0.0; // a full home shard is still tried first
        let order = router.placement_order(id, &spare);
        assert_eq!(order[0], home);
        let rest: Vec<usize> = order[1..].to_vec();
        let mut expected: Vec<usize> = (0..4).filter(|i| *i != home).collect();
        expected.sort_by(|a, b| {
            spare[*b]
                .partial_cmp(&spare[*a])
                .unwrap()
                .then_with(|| a.cmp(b))
        });
        assert_eq!(rest, expected);
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn rebalance_moves_load_toward_the_spare_shard() {
        // Donor shard: one core at 0.9 utilization; receiver: one core,
        // empty. Stealing the 0.4 task keeps the receiver the spare one.
        let t_heavy = task(0, 5, 10); // u = 0.5
        let t_light = task(1, 4, 10); // u = 0.4
        let mut donor = shard_with(1, &[t_heavy.clone(), t_light.clone()]);
        let mut receiver = shard_with(1, &[]);
        let placer = IncrementalPlacer::new();
        let tasks = [t_heavy, t_light];
        let lookup = |id: TaskId| tasks.iter().find(|t| t.id() == id).cloned();

        let mut shards = [&mut donor, &mut receiver];
        let moves = rebalance_partitions(&mut shards, &placer, &lookup, &|_| Time::ZERO, 4);

        assert_eq!(
            moves,
            vec![RebalanceMove {
                task: TaskId(1),
                from: 0,
                to: 1,
            }]
        );
        assert!(donor.placements_of(TaskId(1)).is_empty());
        assert_eq!(receiver.placements_of(TaskId(1)).len(), 1);
        // Balanced enough that a second pass does nothing.
        let mut shards = [&mut donor, &mut receiver];
        assert!(rebalance_partitions(&mut shards, &placer, &lookup, &|_| Time::ZERO, 4).is_empty());
    }

    #[test]
    fn rebalance_respects_the_migration_charge() {
        // The receiver has room for the pristine task but not for the task
        // plus its migration charge: the charged pass must leave both
        // shards untouched (journal rewind on the donor, no commit on the
        // receiver), while the free pass migrates.
        let resident = task(0, 8, 10); // receiver core at 80%
        let movable = task(1, 1, 20); // u = 0.05, inside the headroom
        let ballast = task(2, 9, 10); // keeps the donor the loaded shard
        let build = || {
            let donor = shard_with(1, &[ballast.clone(), movable.clone()]);
            let receiver = shard_with(1, std::slice::from_ref(&resident));
            (donor, receiver)
        };
        let placer = IncrementalPlacer::new();
        let tasks = [resident.clone(), movable.clone(), ballast.clone()];
        let lookup = |id: TaskId| tasks.iter().find(|t| t.id() == id).cloned();

        let (mut donor, mut receiver) = build();
        let mut shards = [&mut donor, &mut receiver];
        // A charge that pushes the 3 ms placement past what the 80% core
        // absorbs within the 20 ms deadline.
        let charged =
            rebalance_partitions(&mut shards, &placer, &lookup, &|_| Time::from_millis(5), 4);
        assert!(charged.is_empty(), "charged move should be rejected");
        assert_eq!(donor.placements_of(TaskId(1)).len(), 1);
        assert!(receiver.placements_of(TaskId(1)).is_empty());

        let (mut donor, mut receiver) = build();
        let mut shards = [&mut donor, &mut receiver];
        let free = rebalance_partitions(&mut shards, &placer, &lookup, &|_| Time::ZERO, 4);
        assert_eq!(free.len(), 1, "the free move fits");
        assert_eq!(receiver.placements_of(TaskId(1)).len(), 1);
    }

    #[test]
    fn stitch_concatenates_shard_cores() {
        let a = shard_with(2, &[task(0, 2, 10), task(1, 3, 10)]);
        let b = shard_with(1, &[task(2, 4, 10)]);
        let stitched = stitch_partitions(&[&a, &b]);
        assert_eq!(stitched.core_count(), 3);
        assert_eq!(
            stitched.placement_count(),
            a.placement_count() + b.placement_count()
        );
        // Shard b's task lives past shard a's core range.
        let placements = stitched.placements_of(TaskId(2));
        assert_eq!(placements.len(), 1);
        assert_eq!(placements[0].0, CoreId(2));
        stitched.validate().expect("stitched partition is valid");
    }

    #[test]
    fn stitch_relinks_cross_shard_chains() {
        use crate::placement::{PlacedTask, SplitInfo, SubtaskKind};

        // Shard 0 hosts the body piece, shard 1 the tail; at the shard
        // boundary the body is unlinked and each side's first_core is local.
        let mut donor = Partition::new(1);
        donor.allow_partial_chains();
        donor.place(
            CoreId(0),
            PlacedTask {
                task: task(7, 5, 20),
                execution: Time::from_millis(5),
                parent: TaskId(7),
                split: Some(SplitInfo {
                    part_index: 0,
                    part_count: 2,
                    kind: SubtaskKind::Body,
                    release_offset: Time::ZERO,
                    next_core: None,
                    first_core: CoreId(0),
                }),
            },
        );
        let mut receiver = Partition::new(1);
        receiver.allow_partial_chains();
        receiver.place(
            CoreId(0),
            PlacedTask {
                task: task(7, 4, 20),
                execution: Time::from_millis(4),
                parent: TaskId(7),
                split: Some(SplitInfo {
                    part_index: 1,
                    part_count: 2,
                    kind: SubtaskKind::Tail,
                    release_offset: Time::from_millis(5),
                    next_core: None,
                    first_core: CoreId(0),
                }),
            },
        );
        donor.validate().expect("partial donor chain is valid");
        receiver
            .validate()
            .expect("partial receiver chain is valid");

        let stitched = stitch_partitions(&[&donor, &receiver]);
        // The stitched partition uses the *full* chain validation: the body
        // must now link to the tail's global core and both pieces must agree
        // on the global first core.
        stitched.validate().expect("stitched chain is complete");
        let pieces = stitched.placements_of(TaskId(7));
        assert_eq!(pieces.len(), 2);
        let body = pieces[0].1.split.as_ref().unwrap();
        let tail = pieces[1].1.split.as_ref().unwrap();
        assert_eq!(pieces[0].0, CoreId(0));
        assert_eq!(pieces[1].0, CoreId(1));
        assert_eq!(body.next_core, Some(CoreId(1)));
        assert_eq!(tail.next_core, None);
        assert_eq!(body.first_core, CoreId(0));
        assert_eq!(tail.first_core, CoreId(0));
    }

    #[test]
    fn rebalance_never_moves_split_tasks_or_oscillates() {
        let light = task(2, 1, 10); // u = 0.1
        let mut a = shard_with(1, std::slice::from_ref(&light));
        let mut b = shard_with(1, &[]);
        let placer = IncrementalPlacer::new();
        let lookup = |id: TaskId| (id == light.id()).then(|| light.clone());
        // spare(a) = 0.9, spare(b) = 1.0: headroom 0.05 < u, so no move.
        let mut shards = [&mut a, &mut b];
        assert!(rebalance_partitions(&mut shards, &placer, &lookup, &|_| Time::ZERO, 8).is_empty());
    }
}
