//! The result of a partitioning run: which (sub)task runs on which core.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use spms_analysis::{rta, CachedCoreAnalysis, RefreshMode, RefreshUndo, UniprocessorTest};
use spms_task::{Priority, Task, TaskId, Time};
use spms_telemetry::{scoped, HotCounter};

/// Priority level reserved for promoted body subtasks: a body piece runs
/// above everything else on its core so it completes within its budget.
pub const BODY_PRIORITY: Priority = Priority::new(0);

/// Priority level reserved for promoted tail subtasks: below bodies, above
/// every task assigned whole. At most one tail may live on a core:
/// [`rta::analyse_core`] treats same-level tasks as mutually interfering
/// (the sound, conservative reading of a tie), so stacking promoted pieces
/// on one level would charge each the other's full budget and destroy the
/// split-piece guarantee that a body completes within its own budget.
pub const TAIL_PRIORITY: Priority = Priority::new(1);

/// The first priority level available to tasks assigned whole; levels 0 and
/// 1 stay reserved for promoted body and tail subtasks.
pub const WHOLE_PRIORITY_BASE: u32 = 2;

/// Assigns dense deadline-monotonic priority levels starting at
/// [`WHOLE_PRIORITY_BASE`] to the given whole-task placements (ties broken
/// by period, then id, so the assignment is deterministic).
///
/// This ranking is the contract between plan-time acceptance checks and
/// commit-time renormalization: [`Partition::renormalize_core_priorities`]
/// and the incremental placer's candidate construction both call it, so a
/// placement validated against a candidate priority assignment is committed
/// with exactly that assignment.
pub(crate) fn assign_whole_priorities(mut whole: Vec<&mut Task>) {
    whole.sort_by_key(|t| (t.deadline(), t.period(), t.id()));
    for (level, task) in whole.into_iter().enumerate() {
        task.set_priority(Priority::new(WHOLE_PRIORITY_BASE + level as u32));
    }
}

/// Identifier of a processor core.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(id: usize) -> Self {
        CoreId(id)
    }
}

impl From<CoreId> for usize {
    fn from(id: CoreId) -> Self {
        id.0
    }
}

/// Which piece of a split task a subtask is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SubtaskKind {
    /// A body subtask: when its budget is exhausted the task migrates to the
    /// next core in the split chain.
    Body,
    /// The tail subtask: the last piece; when it finishes, the task goes back
    /// to sleep on the core hosting the first subtask.
    Tail,
}

/// Split metadata attached to a [`PlacedTask`] that is a piece of a split
/// task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitInfo {
    /// Zero-based index of this piece within the split chain.
    pub part_index: usize,
    /// Total number of pieces the parent task was split into.
    pub part_count: usize,
    /// Body or tail.
    pub kind: SubtaskKind,
    /// Release offset relative to the parent task's release: the sum of the
    /// budgets of all earlier pieces (the paper's "time budget" constraint —
    /// a piece may only start once the previous piece has exhausted its
    /// budget on its core).
    pub release_offset: Time,
    /// The core hosting the next piece (present exactly for body subtasks).
    pub next_core: Option<CoreId>,
    /// The core hosting the first piece; the tail subtask's completion path
    /// re-inserts the task into this core's sleep queue.
    pub first_core: CoreId,
}

/// A task (or subtask) as placed on a specific core by a partitioning
/// algorithm.
///
/// The embedded [`Task`] carries the *analysis* parameters used by the
/// per-core schedulability test: for a subtask the WCET is the piece's budget
/// plus the scheduling overhead charged to it by the
/// [`OverheadModel`](spms_analysis::OverheadModel), the deadline is the
/// synthetic deadline left after earlier pieces, and the priority may be
/// promoted (body subtasks run at the highest priority of their core, as in
/// FP-TS).
///
/// The [`execution`](PlacedTask::execution) field carries the *runtime*
/// execution budget of the piece — the pure execution time without any
/// analysis inflation. The discrete-event simulator executes this budget and
/// injects the scheduler overheads itself, so an overhead-aware analysis that
/// accepts the partition must also survive the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacedTask {
    /// Analysis task parameters on this core (WCET inflated by the overhead
    /// model used by the partitioning algorithm, if any).
    pub task: Task,
    /// Pure execution budget of this placement at run time, excluding any
    /// overhead inflation.
    pub execution: Time,
    /// The original task this placement derives from.
    pub parent: TaskId,
    /// Split metadata; `None` for tasks assigned whole.
    pub split: Option<SplitInfo>,
}

impl PlacedTask {
    /// Creates a placement for a task assigned whole to a core, whose runtime
    /// execution budget equals its (analysis) WCET.
    pub fn whole(task: Task) -> Self {
        let parent = task.id();
        let execution = task.wcet();
        PlacedTask {
            task,
            execution,
            parent,
            split: None,
        }
    }

    /// Sets the runtime execution budget of this placement (builder style).
    /// Used by overhead-aware partitioners whose analysis WCET exceeds the
    /// pure execution time.
    pub fn with_execution(mut self, execution: Time) -> Self {
        self.execution = execution;
        self
    }

    /// Whether this placement is a piece of a split task.
    pub fn is_split(&self) -> bool {
        self.split.is_some()
    }

    /// Whether this placement is a body subtask.
    pub fn is_body(&self) -> bool {
        matches!(self.split.as_ref().map(|s| s.kind), Some(SubtaskKind::Body))
    }

    /// Whether this placement is a tail subtask.
    pub fn is_tail(&self) -> bool {
        matches!(self.split.as_ref().map(|s| s.kind), Some(SubtaskKind::Tail))
    }
}

/// How a core's cache slot diverged from its placements since the last
/// refresh. Tracking the *kind* of mutation lets the renormalization sync
/// point pick the cheap specialised refresh (pure insert / pure removal)
/// instead of the general diff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheStaleness {
    /// The cache matches the placements.
    Fresh,
    /// Placements were only added since the last refresh.
    Inserted,
    /// Placements were only removed since the last refresh.
    Removed,
    /// Mixed or unknown mutations: only the general diff is sound.
    Mixed,
}

impl CacheStaleness {
    fn escalate(self, op: CacheStaleness) -> CacheStaleness {
        match (self, op) {
            (CacheStaleness::Fresh, op) => op,
            (current, op) if current == op => current,
            _ => CacheStaleness::Mixed,
        }
    }
}

/// Per-core slot of the optional attached analysis cache: the incremental
/// RTA state plus a staleness marker set by [`Partition::place`] /
/// [`Partition::remove_parent`] (which cannot know the final priorities —
/// renormalization runs after them) and cleared by
/// [`Partition::renormalize_core_priorities`].
#[derive(Debug, Clone)]
struct CoreCacheSlot {
    analysis: CachedCoreAnalysis,
    staleness: CacheStaleness,
}

/// One recorded, undoable mutation of a [`Partition`]. Every entry stores
/// exactly the state the mutation destroyed, so undoing the journal in LIFO
/// order restores the partition — placements, priorities *and* the attached
/// analysis-cache state — bit-identically.
#[derive(Debug)]
enum JournalOp {
    /// [`Partition::place`] pushed one placement onto `core` and escalated
    /// the cache staleness from `prev_staleness`.
    Place {
        core: CoreId,
        prev_staleness: Option<CacheStaleness>,
    },
    /// [`Partition::remove_parent`] removed `removed` (original indices,
    /// ascending) from `core` and escalated the staleness.
    Remove {
        core: CoreId,
        removed: Vec<(usize, PlacedTask)>,
        prev_staleness: Option<CacheStaleness>,
    },
    /// [`Partition::renormalize_core_priorities`] rewrote the priorities of
    /// every placement on `core` (recorded in placement order) and refreshed
    /// the cache slot. `cache_undo` carries the prior staleness marker plus
    /// the per-entry deltas the refresh destroyed — O(changed levels), not a
    /// clone of the whole slot.
    Renormalize {
        core: CoreId,
        priorities: Vec<Option<Priority>>,
        cache_undo: Option<(CacheStaleness, RefreshUndo)>,
    },
}

/// The mutation journal behind [`Partition::journal_begin`] /
/// [`Partition::rewind`]: a LIFO log of [`JournalOp`]s recorded while at
/// least one rollback scope is open (`depth > 0`). Journals are
/// instance-local derived state — they do not travel with `Clone`, do not
/// serialize and do not participate in equality.
#[derive(Debug, Default)]
struct Journal {
    ops: Vec<JournalOp>,
    /// Number of open rollback scopes; recording stops and the log clears
    /// only when the outermost scope ends.
    depth: usize,
    /// One entry per open scope, innermost last. Each carries the scope's
    /// start position and an abandonment token shared with whoever opened
    /// the scope (a [`PlanTxn`](crate::PlanTxn) holds the other end): a
    /// scope whose token was flipped without a matching
    /// [`Partition::journal_end`] is auto-aborted at the partition's next
    /// journal interaction. See
    /// [`Partition::reconcile_abandoned_scopes`].
    open: Vec<OpenScope>,
}

/// One open rollback scope: its journal start position plus the shared
/// abandonment token (see [`Journal::open`]).
#[derive(Debug)]
struct OpenScope {
    mark: usize,
    abandoned: Arc<AtomicBool>,
}

/// A position in a partition's mutation journal, returned by
/// [`Partition::journal_begin`] / [`Partition::journal_mark`] and consumed
/// by [`Partition::rewind`]. Marks are LIFO: rewinding to an outer mark
/// undoes everything recorded after it, including inner scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalMark(usize);

/// Outcome of [`Partition::audit_cached_core`]: was the memoized per-core
/// analysis still bit-equal to a from-scratch re-derivation?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAuditVerdict {
    /// The memo matched the scratch analysis.
    Clean,
    /// The memo diverged and was rebuilt from scratch.
    Repaired,
}

/// A complete mapping of a task set onto `m` cores.
///
/// Produced by a [`Partitioner`](crate::Partitioner); consumed by the
/// schedulability analysis, the statistics in the acceptance-ratio
/// experiments and the discrete-event simulator.
///
/// # The attached analysis cache
///
/// [`enable_analysis_cache`](Self::enable_analysis_cache) attaches an
/// incremental [`CachedCoreAnalysis`] per core, kept coherent through
/// [`place`](Self::place), [`remove_parent`](Self::remove_parent) and
/// [`renormalize_core_priorities`](Self::renormalize_core_priorities). The
/// cache is derived state: it is skipped by serialization and ignored by
/// `PartialEq`, and it travels with `Clone`, so snapshot/rollback flows
/// restore it for free.
///
/// # The mutation journal
///
/// [`enable_journal`](Self::enable_journal) attaches a mutation journal;
/// [`journal_begin`](Self::journal_begin) opens a rollback scope in which
/// every [`place`](Self::place), [`remove_parent`](Self::remove_parent) and
/// [`renormalize_core_priorities`](Self::renormalize_core_priorities)
/// records an undo entry (including the touched analysis-cache state), and
/// [`rewind`](Self::rewind) restores the partition to a mark in O(recorded
/// moves) instead of the O(tasks) full-partition clone a snapshot would
/// cost. The online controller's bounded repair and split rollback run on
/// this journal; [`clone_count`](Self::clone_count) proves the hot path
/// stays clone-free.
#[derive(Debug, Default)]
pub struct Partition {
    cores: Vec<Vec<PlacedTask>>,
    cache: Option<Vec<CoreCacheSlot>>,
    journal: Option<Journal>,
    /// Whether split chains may end at a shard boundary: a body piece with
    /// `next_core: None` whose later pieces live in *another* shard's
    /// partition. Off by default; the cross-shard split planner opts in.
    partial_chains: bool,
}

/// Clones the placements and the attached analysis cache. The mutation
/// journal is instance-local rollback state and does *not* travel: the clone
/// gets a fresh, empty journal (still enabled when the source had one).
/// Every clone increments the calling thread's counter behind
/// [`Partition::clone_count`] so rollback paths can prove they stopped
/// snapshotting.
impl Clone for Partition {
    fn clone(&self) -> Self {
        scoped::bump(HotCounter::PartitionClones);
        Partition {
            cores: self.cores.clone(),
            cache: self.cache.clone(),
            journal: self.journal.as_ref().map(|_| Journal::default()),
            partial_chains: self.partial_chains,
        }
    }
}

/// Placement equality only: the analysis cache is derived state and two
/// partitions differing only in cache attachment are the same mapping.
impl PartialEq for Partition {
    fn eq(&self, other: &Self) -> bool {
        self.cores == other.cores
    }
}

/// Serializes the placements only; the analysis cache is derived state and
/// is rebuilt (when wanted) after deserialization. The encoding matches what
/// the former `#[derive(Serialize)]` produced, so stored partitions stay
/// readable.
impl Serialize for Partition {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![("cores".to_owned(), self.cores.to_value())])
    }
}

impl Deserialize for Partition {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Partition {
            cores: Vec::<Vec<PlacedTask>>::from_value(value.field("cores")?)?,
            cache: None,
            journal: None,
            partial_chains: false,
        })
    }
}

impl Partition {
    /// Creates an empty partition over `cores` processors.
    pub fn new(cores: usize) -> Self {
        Partition {
            cores: vec![Vec::new(); cores],
            cache: None,
            journal: None,
            partial_chains: false,
        }
    }

    /// Opts this partition into *partial split chains*: a body piece may
    /// carry `next_core: None` when the later pieces of its chain live in
    /// another shard's partition. [`validate`](Self::validate) then checks
    /// each local run of a chain (contiguous piece indices, consistent
    /// piece counts, boundary bodies unlinked) instead of requiring the
    /// whole chain locally. The flag travels with `Clone` but — like the
    /// cache and journal — does not serialize and does not affect equality.
    pub fn allow_partial_chains(&mut self) {
        self.partial_chains = true;
    }

    /// Whether partial split chains are allowed (see
    /// [`allow_partial_chains`](Self::allow_partial_chains)).
    pub fn partial_chains_allowed(&self) -> bool {
        self.partial_chains
    }

    /// Count of `Partition::clone()` calls **on the calling thread** since
    /// it started (or the last [`reset_clone_count`](Self::reset_clone_count)).
    /// The journal-based rollback paths of the online admission cascade
    /// must not clone partitions; benches and regression tests read this
    /// counter around a decision stream to assert the repair/split hot
    /// path stayed clone-free. Thread-local so concurrent sweep workers
    /// cannot perturb each other's readings. Shim over the telemetry
    /// crate's [`HotCounter::PartitionClones`] scoped counter, which
    /// admission engines also fold into their registry per decision (as
    /// `spms_mech_partition_clones_total`).
    pub fn clone_count() -> u64 {
        scoped::thread_value(HotCounter::PartitionClones)
    }

    /// Resets the calling thread's [`clone_count`](Self::clone_count)
    /// (bench/test support).
    pub fn reset_clone_count() {
        scoped::reset_thread(HotCounter::PartitionClones);
    }

    /// Attaches a mutation journal (initially idle: nothing is recorded
    /// until a rollback scope is opened with
    /// [`journal_begin`](Self::journal_begin)). See the
    /// [struct docs](Self#the-mutation-journal).
    pub fn enable_journal(&mut self) {
        if self.journal.is_none() {
            self.journal = Some(Journal::default());
        }
    }

    /// Whether a mutation journal is attached.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// Opens a rollback scope: subsequent mutations record undo entries
    /// until the matching [`journal_end`](Self::journal_end). Scopes nest
    /// (each `journal_begin` must be paired with one `journal_end`; the
    /// undo log is kept until the outermost scope closes). Returns the
    /// mark to [`rewind`](Self::rewind) to. No-op mark when no journal is
    /// attached.
    pub fn journal_begin(&mut self) -> JournalMark {
        self.reconcile_abandoned_scopes();
        match &mut self.journal {
            Some(journal) => {
                scoped::bump(HotCounter::JournalBegins);
                journal.depth += 1;
                journal.open.push(OpenScope {
                    mark: journal.ops.len(),
                    abandoned: Arc::new(AtomicBool::new(false)),
                });
                JournalMark(journal.ops.len())
            }
            None => JournalMark(0),
        }
    }

    /// The abandonment token of the innermost open rollback scope, shared
    /// with the scope's owner so a dropped-without-close owner (an early
    /// return or unwinding [`PlanTxn`](crate::PlanTxn)) can flag the scope
    /// for auto-abort. `None` when no journal is attached or no scope is
    /// open.
    pub(crate) fn current_scope_guard(&self) -> Option<Arc<AtomicBool>> {
        self.journal
            .as_ref()?
            .open
            .last()
            .map(|scope| Arc::clone(&scope.abandoned))
    }

    /// Auto-aborts every innermost open scope whose owner flagged it
    /// abandoned (a [`PlanTxn`](crate::PlanTxn) dropped without `commit()`
    /// or `abort()`, e.g. on an early-return or panic path): the scope is
    /// rewound to its begin position and closed, exactly as an explicit
    /// abort would have. Runs automatically at the start of every journal
    /// interaction and recording mutator, so an abandoned transaction can
    /// never leak journal marks or leave speculative mutations behind once
    /// the partition is touched again. Returns the number of scopes
    /// auto-aborted (almost always 0).
    pub fn reconcile_abandoned_scopes(&mut self) -> usize {
        let mut closed = 0;
        loop {
            let Some(journal) = &self.journal else {
                return closed;
            };
            let Some(top) = journal.open.last() else {
                return closed;
            };
            if !top.abandoned.load(Ordering::Relaxed) {
                return closed;
            }
            // An enclosing rewind may already have dropped past the
            // abandoned scope's start; clamp so the rewind below only ever
            // undoes what is still recorded.
            let mark = top.mark.min(journal.ops.len());
            self.rewind(JournalMark(mark));
            let journal = self.journal.as_mut().expect("journal checked above");
            journal.open.pop();
            journal.depth = journal.depth.saturating_sub(1);
            if journal.depth == 0 {
                journal.ops.clear();
            }
            closed += 1;
        }
    }

    /// The current journal position, for nested rollback points inside an
    /// open scope (e.g. one speculative relocation within a repair attempt).
    pub fn journal_mark(&self) -> JournalMark {
        JournalMark(self.journal.as_ref().map_or(0, |j| j.ops.len()))
    }

    /// Undoes every mutation recorded after `mark`, in LIFO order,
    /// restoring placements, priorities and the attached analysis-cache
    /// state bit-identically. O(recorded moves), not O(tasks). No-op when
    /// no journal is attached.
    pub fn rewind(&mut self, mark: JournalMark) {
        let mut ops = match &mut self.journal {
            Some(journal) => std::mem::take(&mut journal.ops),
            None => return,
        };
        scoped::bump(HotCounter::JournalRewinds);
        debug_assert!(
            mark.0 <= ops.len(),
            "rewind to a stale journal mark (taken before a cleared scope?)"
        );
        while ops.len() > mark.0 {
            let op = ops.pop().expect("len checked above");
            self.undo(op);
        }
        if let Some(journal) = &mut self.journal {
            journal.ops = ops;
        }
    }

    /// Closes the innermost rollback scope opened by
    /// [`journal_begin`](Self::journal_begin). When the outermost scope
    /// closes, recording stops and the accumulated undo history is
    /// discarded (the mutations are final); an inner close keeps the
    /// outer scope's log intact, so its marks stay rewindable.
    pub fn journal_end(&mut self) {
        if let Some(journal) = &mut self.journal {
            journal.depth = journal.depth.saturating_sub(1);
            journal.open.pop();
            if journal.depth == 0 {
                journal.ops.clear();
            }
        }
        // Closing a live scope may expose an abandoned one underneath.
        self.reconcile_abandoned_scopes();
    }

    /// Applies one undo entry. The undo writes fields directly (never
    /// through the recording mutators), so rewinding records nothing.
    fn undo(&mut self, op: JournalOp) {
        match op {
            JournalOp::Place {
                core,
                prev_staleness,
            } => {
                self.cores[core.0].pop();
                self.restore_staleness(core, prev_staleness);
            }
            JournalOp::Remove {
                core,
                removed,
                prev_staleness,
            } => {
                // Ascending original indices: re-inserting in order puts
                // every placement back where it was.
                for (idx, placed) in removed {
                    self.cores[core.0].insert(idx, placed);
                }
                self.restore_staleness(core, prev_staleness);
            }
            JournalOp::Renormalize {
                core,
                priorities,
                cache_undo,
            } => {
                for (placed, prev) in self.cores[core.0].iter_mut().zip(priorities) {
                    match prev {
                        Some(priority) => placed.task.set_priority(priority),
                        None => placed.task.clear_priority(),
                    }
                }
                if let (Some(slots), Some((staleness, undo))) = (&mut self.cache, cache_undo) {
                    let slot = &mut slots[core.0];
                    slot.analysis.apply_refresh_undo(undo);
                    slot.staleness = staleness;
                }
            }
        }
    }

    fn restore_staleness(&mut self, core: CoreId, prev: Option<CacheStaleness>) {
        if let (Some(slots), Some(prev)) = (&mut self.cache, prev) {
            slots[core.0].staleness = prev;
        }
    }

    /// Whether the journal is currently recording (an open rollback scope).
    fn recording(&self) -> bool {
        self.journal.as_ref().is_some_and(|j| j.depth > 0)
    }

    fn record(&mut self, op: JournalOp) {
        if let Some(journal) = &mut self.journal {
            if journal.depth > 0 {
                journal.ops.push(op);
            }
        }
    }

    /// Attaches (or rebuilds) the incremental analysis cache: one converged
    /// [`CachedCoreAnalysis`] per core. See the
    /// [struct docs](Self#the-attached-analysis-cache).
    ///
    /// Must not be called inside an open journal scope: cache attachment
    /// is not journaled, so a later [`rewind`](Self::rewind) could not
    /// restore the pre-attachment state (debug builds assert this).
    pub fn enable_analysis_cache(&mut self) {
        debug_assert!(
            !self.recording(),
            "enable_analysis_cache inside an open journal scope cannot be rewound"
        );
        self.cache = Some(
            self.cores
                .iter()
                .map(|bin| {
                    let tasks: Vec<Task> = bin.iter().map(|p| p.task.clone()).collect();
                    CoreCacheSlot {
                        analysis: CachedCoreAnalysis::from_tasks(&tasks),
                        staleness: CacheStaleness::Fresh,
                    }
                })
                .collect(),
        );
    }

    /// Whether an analysis cache is attached (converged or not).
    pub fn analysis_cache_enabled(&self) -> bool {
        self.cache.is_some()
    }

    /// The converged cached analysis of one core, or `None` when no cache is
    /// attached or the core has been mutated since the last
    /// renormalization (callers then fall back to from-scratch analysis).
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range while a cache is attached.
    pub fn cached_core(&self, core: CoreId) -> Option<&CachedCoreAnalysis> {
        let slot = &self.cache.as_ref()?[core.0];
        (slot.staleness == CacheStaleness::Fresh).then_some(&slot.analysis)
    }

    /// Fault-injection hook: flips one memoized response time on `core`'s
    /// converged cache slot (see
    /// [`CachedCoreAnalysis::corrupt_first_response`] for the direction and
    /// why it is sound). Returns `false` when no cache is attached, the
    /// slot is stale, or the core has no positive converged response to
    /// flip.
    pub fn corrupt_cached_response(&mut self, core: CoreId) -> bool {
        let Some(slots) = &mut self.cache else {
            return false;
        };
        let Some(slot) = slots.get_mut(core.0) else {
            return false;
        };
        if slot.staleness != CacheStaleness::Fresh {
            return false;
        }
        slot.analysis.corrupt_first_response()
    }

    /// Self-audit of one core's attached analysis cache: re-derives the
    /// core's analysis from scratch and compares it against the memo. A
    /// clean core returns [`CacheAuditVerdict::Clean`]; a divergent memo
    /// (an injected corruption, or an incremental-maintenance bug) is
    /// quarantined and rebuilt from scratch, returning
    /// [`CacheAuditVerdict::Repaired`]. Returns `None` when there is
    /// nothing to audit: no cache attached, core id out of range, or the
    /// slot stale (it will be rebuilt at its next renormalization sync
    /// anyway).
    ///
    /// Must not run inside an open journal scope — the rebuild is not
    /// journaled, so a later [`rewind`](Self::rewind) could not restore
    /// the pre-audit memo (debug builds assert this).
    pub fn audit_cached_core(&mut self, core: CoreId) -> Option<CacheAuditVerdict> {
        debug_assert!(
            !self.recording(),
            "audit_cached_core inside an open journal scope cannot be rewound"
        );
        let fresh = {
            let slots = self.cache.as_ref()?;
            let slot = slots.get(core.0)?;
            slot.staleness == CacheStaleness::Fresh
        };
        if !fresh {
            return None;
        }
        let clean = self.cache.as_mut().expect("checked above")[core.0]
            .analysis
            .audit();
        Some(if clean {
            CacheAuditVerdict::Clean
        } else {
            CacheAuditVerdict::Repaired
        })
    }

    /// Number of processors.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// The placements assigned to one core.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn core(&self, core: CoreId) -> &[PlacedTask] {
        &self.cores[core.0]
    }

    /// Adds a placement to a core.
    ///
    /// With an analysis cache attached, the core's cache turns stale until
    /// the next [`renormalize_core_priorities`](Self::renormalize_core_priorities)
    /// call (the commit discipline: placements get their final priorities
    /// only then).
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn place(&mut self, core: CoreId, placed: PlacedTask) {
        self.reconcile_abandoned_scopes();
        if self.recording() {
            let prev_staleness = self.cache.as_ref().map(|s| s[core.0].staleness);
            self.record(JournalOp::Place {
                core,
                prev_staleness,
            });
        }
        self.cores[core.0].push(placed);
        if let Some(slots) = &mut self.cache {
            let slot = &mut slots[core.0];
            slot.staleness = slot.staleness.escalate(CacheStaleness::Inserted);
        }
    }

    /// Iterates over `(core, placement)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CoreId, &PlacedTask)> {
        self.cores
            .iter()
            .enumerate()
            .flat_map(|(c, ts)| ts.iter().map(move |t| (CoreId(c), t)))
    }

    /// Total number of placements (tasks assigned whole count once, split
    /// tasks count once per piece).
    pub fn placement_count(&self) -> usize {
        self.cores.iter().map(Vec::len).sum()
    }

    /// Number of *distinct tasks* that were split.
    pub fn split_count(&self) -> usize {
        let mut parents: Vec<TaskId> = self
            .iter()
            .filter(|(_, p)| p.is_split())
            .map(|(_, p)| p.parent)
            .collect();
        parents.sort_unstable();
        parents.dedup();
        parents.len()
    }

    /// Number of migrations per period of split tasks: each body subtask
    /// causes one migration of its parent each period.
    pub fn migrations_per_hyperperiod_hint(&self) -> usize {
        self.iter().filter(|(_, p)| p.is_body()).count()
    }

    /// Utilization assigned to each core (using the effective, possibly
    /// inflated, task parameters).
    pub fn core_utilizations(&self) -> Vec<f64> {
        self.cores
            .iter()
            .map(|ts| ts.iter().map(|p| p.task.utilization()).sum())
            .collect()
    }

    /// The effective per-core tasks, for feeding a per-core analysis.
    pub fn core_tasks(&self, core: CoreId) -> Vec<Task> {
        self.cores[core.0].iter().map(|p| p.task.clone()).collect()
    }

    /// Runs the given uniprocessor test on every core. Cores with a
    /// converged analysis cache answer from the cache when the test is the
    /// exact RTA (bit-identical to the from-scratch run by construction).
    pub fn is_schedulable(&self, test: UniprocessorTest) -> bool {
        (0..self.core_count()).all(|c| {
            if test == UniprocessorTest::ResponseTime {
                if let Some(cache) = self.cached_core(CoreId(c)) {
                    return cache.is_schedulable();
                }
            }
            test.accepts(&self.core_tasks(CoreId(c)))
        })
    }

    /// Worst-case response times per core under exact RTA (`None` entries are
    /// unschedulable placements).
    pub fn response_times(&self) -> Vec<Vec<Option<Time>>> {
        (0..self.core_count())
            .map(|c| rta::analyse_core(&self.core_tasks(CoreId(c))).response_times)
            .collect()
    }

    /// Utilization still unassigned on one core: `1.0` minus the sum of the
    /// effective utilizations placed there. Can be negative when an
    /// overhead-inflated assignment overcommits a core; callers treating this
    /// as spare capacity should clamp at zero.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn residual_utilization(&self, core: CoreId) -> f64 {
        1.0 - self.cores[core.0]
            .iter()
            .map(|p| p.task.utilization())
            .sum::<f64>()
    }

    /// [`residual_utilization`](Self::residual_utilization) clamped at zero:
    /// the spare capacity a caller may order or admit against. An
    /// overhead-inflated assignment can overcommit a core, and a negative
    /// "residual" must never rank such a core as roomier than an exactly
    /// full one.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn spare_utilization(&self, core: CoreId) -> f64 {
        self.residual_utilization(core).max(0.0)
    }

    /// The distinct parent tasks placed anywhere in the partition, sorted by
    /// id.
    pub fn parent_ids(&self) -> Vec<TaskId> {
        let mut parents: Vec<TaskId> = self.iter().map(|(_, p)| p.parent).collect();
        parents.sort_unstable();
        parents.dedup();
        parents
    }

    /// All placements of one parent task, in `(core, placement)` pairs
    /// ordered core-first.
    pub fn placements_of(&self, parent: TaskId) -> Vec<(CoreId, &PlacedTask)> {
        self.iter().filter(|(_, p)| p.parent == parent).collect()
    }

    /// Whether a core already hosts a promoted tail subtask.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn core_has_tail(&self, core: CoreId) -> bool {
        self.cores[core.0].iter().any(PlacedTask::is_tail)
    }

    /// Whether a core already hosts a promoted body subtask.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn core_has_body(&self, core: CoreId) -> bool {
        self.cores[core.0].iter().any(PlacedTask::is_body)
    }

    /// Removes every placement (whole task or split piece) of `parent` and
    /// renormalizes the priorities of each core it was removed from. Returns
    /// the number of placements removed (0 when the task was not placed).
    ///
    /// This is the departure path of online admission control: removing
    /// tasks only ever shrinks per-core demand, so a schedulable partition
    /// stays schedulable.
    pub fn remove_parent(&mut self, parent: TaskId) -> usize {
        self.reconcile_abandoned_scopes();
        let recording = self.recording();
        let mut removed = 0;
        let mut touched = Vec::new();
        let mut undo = Vec::new();
        for (idx, bin) in self.cores.iter_mut().enumerate() {
            if !bin.iter().any(|p| p.parent == parent) {
                continue;
            }
            if recording {
                // Extract instead of retain so the undo entry keeps the
                // original index of every removed placement.
                let old = std::mem::take(bin);
                let mut removed_here = Vec::new();
                for (pos, placed) in old.into_iter().enumerate() {
                    if placed.parent == parent {
                        removed_here.push((pos, placed));
                    } else {
                        bin.push(placed);
                    }
                }
                removed += removed_here.len();
                undo.push((CoreId(idx), removed_here));
            } else {
                let before = bin.len();
                bin.retain(|p| p.parent != parent);
                removed += before - bin.len();
            }
            touched.push(CoreId(idx));
        }
        for (core, removed_here) in undo {
            let prev_staleness = self.cache.as_ref().map(|s| s[core.0].staleness);
            self.record(JournalOp::Remove {
                core,
                removed: removed_here,
                prev_staleness,
            });
        }
        if let Some(slots) = &mut self.cache {
            for core in &touched {
                let slot = &mut slots[core.0];
                slot.staleness = slot.staleness.escalate(CacheStaleness::Removed);
            }
        }
        for core in touched {
            self.renormalize_core_priorities(core);
        }
        removed
    }

    /// Recomputes the per-core priority levels after an online mutation:
    /// promoted body and tail subtasks keep [`BODY_PRIORITY`] and
    /// [`TAIL_PRIORITY`], and tasks assigned whole receive dense
    /// deadline-monotonic levels starting at [`WHOLE_PRIORITY_BASE`] (ties
    /// broken by period, then id, so the assignment is deterministic).
    ///
    /// Deadline-monotonic ordering is optimal among fixed-priority
    /// assignments for constrained deadlines, so renormalizing a schedulable
    /// core never makes it unschedulable; for the implicit-deadline task
    /// sets the generators produce it coincides with the rate-monotonic
    /// order the offline partitioners assign.
    ///
    /// With an analysis cache attached, this is also the cache's sync
    /// point: the core's slot is refreshed against the renormalized
    /// assignment (reusing or warm-starting every response time the
    /// mutation did not invalidate) and marked converged again.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn renormalize_core_priorities(&mut self, core: CoreId) {
        let recording = self.recording();
        let priorities: Option<Vec<Option<Priority>>> = recording.then(|| {
            self.cores[core.0]
                .iter()
                .map(|p| p.task.priority())
                .collect()
        });
        assign_whole_priorities(
            self.cores[core.0]
                .iter_mut()
                .filter(|p| !p.is_split())
                .map(|p| &mut p.task)
                .collect(),
        );
        let mut cache_undo = None;
        if let Some(slots) = &mut self.cache {
            let tasks: Vec<Task> = self.cores[core.0].iter().map(|p| p.task.clone()).collect();
            let slot = &mut slots[core.0];
            let mode = match slot.staleness {
                // Renormalization of an untouched core cannot reorder
                // tasks; levels may shift, which the insert-specialised
                // refresh absorbs with one warm iteration per task.
                CacheStaleness::Fresh if slot.analysis.len() == tasks.len() => {
                    RefreshMode::AfterInsert
                }
                CacheStaleness::Inserted => RefreshMode::AfterInsert,
                CacheStaleness::Removed => RefreshMode::AfterRemove,
                _ => RefreshMode::General,
            };
            if recording {
                // Undo data is only the per-entry deltas the refresh
                // destroys — the journal never clones a whole cache slot.
                let undo = slot.analysis.refresh_with_undo(&tasks, mode);
                cache_undo = Some((slot.staleness, undo));
            } else {
                match mode {
                    RefreshMode::AfterInsert => slot.analysis.refresh_after_insert(&tasks),
                    RefreshMode::AfterRemove => slot.analysis.refresh_after_remove(&tasks),
                    RefreshMode::General => slot.analysis.refresh(&tasks),
                }
            }
            slot.staleness = CacheStaleness::Fresh;
        }
        if recording {
            self.record(JournalOp::Renormalize {
                core,
                priorities: priorities.expect("captured while recording"),
                cache_undo,
            });
        }
    }

    /// Structural sanity checks, used by tests and debug assertions:
    ///
    /// * every split chain has exactly one tail and `part_count − 1` bodies,
    /// * piece indices are contiguous from 0,
    /// * release offsets are non-decreasing along the chain,
    /// * body subtasks point to the core that actually hosts the next piece.
    ///
    /// Returns a human-readable description of the first violation found.
    pub fn validate(&self) -> Result<(), String> {
        use std::collections::HashMap;
        let mut chains: HashMap<TaskId, Vec<(CoreId, &PlacedTask)>> = HashMap::new();
        for (core, placed) in self.iter() {
            if placed.is_split() {
                chains
                    .entry(placed.parent)
                    .or_default()
                    .push((core, placed));
            }
        }
        for (parent, mut pieces) in chains {
            pieces.sort_by_key(|(_, p)| p.split.as_ref().expect("split piece").part_index);
            if self.partial_chains {
                Self::validate_partial_chain(parent, &pieces)?;
                continue;
            }
            let count = pieces.len();
            if count < 2 {
                return Err(format!("split task {parent} has only {count} piece(s)"));
            }
            let mut offset = Time::ZERO;
            for (i, (core, placed)) in pieces.iter().enumerate() {
                let info = placed.split.as_ref().expect("split piece");
                if info.part_index != i {
                    return Err(format!(
                        "split task {parent} has non-contiguous piece indices"
                    ));
                }
                if info.part_count != count {
                    return Err(format!(
                        "split task {parent} piece {i} reports {} pieces, found {count}",
                        info.part_count
                    ));
                }
                if info.release_offset < offset {
                    return Err(format!(
                        "split task {parent} piece {i} has decreasing release offset"
                    ));
                }
                offset = info.release_offset;
                let is_last = i == count - 1;
                match (is_last, info.kind) {
                    (true, SubtaskKind::Tail) | (false, SubtaskKind::Body) => {}
                    _ => {
                        return Err(format!(
                            "split task {parent} piece {i} has the wrong kind for its position"
                        ))
                    }
                }
                if let Some(next_core) = info.next_core {
                    let next_piece_core = pieces.get(i + 1).map(|(c, _)| *c);
                    if next_piece_core != Some(next_core) {
                        return Err(format!(
                            "split task {parent} piece {i} points to {next_core} but the next piece is on {:?}",
                            next_piece_core
                        ));
                    }
                } else if !is_last {
                    return Err(format!(
                        "split task {parent} body piece {i} is missing its next core"
                    ));
                }
                if info.first_core != pieces[0].0 {
                    return Err(format!(
                        "split task {parent} piece {i} disagrees about the first core"
                    ));
                }
                let _ = core;
            }
        }
        Ok(())
    }

    /// Partial-chain validation: the locally hosted pieces of one split
    /// chain must form a contiguous run of piece indices with consistent
    /// piece counts, correct body/tail kinds for their *global* position,
    /// intra-run `next_core` links pointing at the actual hosting cores,
    /// boundary bodies unlinked (`next_core: None` — the next piece is
    /// remote), non-decreasing release offsets, and a shard-local
    /// `first_core` agreeing on the first local piece's core.
    fn validate_partial_chain(
        parent: TaskId,
        pieces: &[(CoreId, &PlacedTask)],
    ) -> Result<(), String> {
        let first = pieces[0].1.split.as_ref().expect("split piece");
        let count = first.part_count;
        let base_index = first.part_index;
        if count < 2 {
            return Err(format!("split task {parent} reports {count} piece(s)"));
        }
        let mut offset = Time::ZERO;
        for (pos, (_, placed)) in pieces.iter().enumerate() {
            let info = placed.split.as_ref().expect("split piece");
            if info.part_index != base_index + pos {
                return Err(format!(
                    "split task {parent} has non-contiguous local piece indices"
                ));
            }
            if info.part_count != count {
                return Err(format!(
                    "split task {parent} local piece {pos} reports {} pieces, expected {count}",
                    info.part_count
                ));
            }
            if info.part_index >= count {
                return Err(format!(
                    "split task {parent} local piece {pos} has index {} out of {count}",
                    info.part_index
                ));
            }
            if info.release_offset < offset {
                return Err(format!(
                    "split task {parent} local piece {pos} has decreasing release offset"
                ));
            }
            offset = info.release_offset;
            let is_global_last = info.part_index == count - 1;
            match (is_global_last, info.kind) {
                (true, SubtaskKind::Tail) | (false, SubtaskKind::Body) => {}
                _ => {
                    return Err(format!(
                        "split task {parent} local piece {pos} has the wrong kind for its position"
                    ))
                }
            }
            if let Some(next_core) = info.next_core {
                let next_piece_core = pieces.get(pos + 1).map(|(c, _)| *c);
                if next_piece_core != Some(next_core) {
                    return Err(format!(
                        "split task {parent} local piece {pos} points to {next_core} but the next local piece is on {next_piece_core:?}"
                    ));
                }
            } else if pos + 1 < pieces.len() {
                return Err(format!(
                    "split task {parent} local body piece {pos} is unlinked but the next piece is local"
                ));
            }
            if info.first_core != pieces[0].0 {
                return Err(format!(
                    "split task {parent} local piece {pos} disagrees about the first local core"
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::Priority;

    fn task(id: u32, wcet_us: u64, period_us: u64, prio: u32) -> Task {
        let mut t =
            Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap();
        t.set_priority(Priority::new(prio));
        t
    }

    #[allow(clippy::too_many_arguments)]
    fn split_piece(
        parent: u32,
        budget_us: u64,
        period_us: u64,
        prio: u32,
        index: usize,
        count: usize,
        kind: SubtaskKind,
        offset_us: u64,
        next: Option<usize>,
        first: usize,
    ) -> PlacedTask {
        let t = Task::builder(parent)
            .wcet(Time::from_micros(budget_us))
            .period(Time::from_micros(period_us))
            .deadline(Time::from_micros(period_us - offset_us))
            .priority(Priority::new(prio))
            .build()
            .unwrap();
        PlacedTask {
            task: t,
            execution: Time::from_micros(budget_us),
            parent: TaskId(parent),
            split: Some(SplitInfo {
                part_index: index,
                part_count: count,
                kind,
                release_offset: Time::from_micros(offset_us),
                next_core: next.map(CoreId),
                first_core: CoreId(first),
            }),
        }
    }

    fn two_core_partition_with_split() -> Partition {
        let mut p = Partition::new(2);
        p.place(CoreId(0), PlacedTask::whole(task(0, 2, 10, 1)));
        p.place(
            CoreId(0),
            split_piece(2, 3, 20, 0, 0, 2, SubtaskKind::Body, 0, Some(1), 0),
        );
        p.place(CoreId(1), PlacedTask::whole(task(1, 4, 10, 2)));
        p.place(
            CoreId(1),
            split_piece(2, 2, 20, 3, 1, 2, SubtaskKind::Tail, 3, None, 0),
        );
        p
    }

    #[test]
    fn placement_queries() {
        let p = two_core_partition_with_split();
        assert_eq!(p.core_count(), 2);
        assert_eq!(p.placement_count(), 4);
        assert_eq!(p.split_count(), 1);
        assert_eq!(p.migrations_per_hyperperiod_hint(), 1);
        assert_eq!(p.core(CoreId(0)).len(), 2);
        let utils = p.core_utilizations();
        assert!((utils[0] - (0.2 + 0.15)).abs() < 1e-9);
        assert!((utils[1] - (0.4 + 0.1)).abs() < 1e-9);
    }

    #[test]
    fn whole_placement_flags() {
        let placed = PlacedTask::whole(task(5, 1, 10, 0));
        assert!(!placed.is_split());
        assert!(!placed.is_body());
        assert!(!placed.is_tail());
        assert_eq!(placed.parent, TaskId(5));
    }

    #[test]
    fn validate_accepts_well_formed_split() {
        let p = two_core_partition_with_split();
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_single_piece_split() {
        let mut p = Partition::new(1);
        p.place(
            CoreId(0),
            split_piece(7, 1, 10, 0, 0, 2, SubtaskKind::Body, 0, None, 0),
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_wrong_next_core() {
        let mut p = Partition::new(2);
        p.place(
            CoreId(0),
            split_piece(7, 1, 10, 0, 0, 2, SubtaskKind::Body, 0, Some(0), 0),
        );
        p.place(
            CoreId(1),
            split_piece(7, 1, 10, 3, 1, 2, SubtaskKind::Tail, 1, None, 0),
        );
        let err = p.validate().unwrap_err();
        assert!(err.contains("points to"));
    }

    #[test]
    fn validate_rejects_tail_in_the_middle() {
        let mut p = Partition::new(2);
        p.place(
            CoreId(0),
            split_piece(7, 1, 10, 0, 0, 2, SubtaskKind::Tail, 0, Some(1), 0),
        );
        p.place(
            CoreId(1),
            split_piece(7, 1, 10, 3, 1, 2, SubtaskKind::Body, 1, None, 0),
        );
        assert!(p.validate().is_err());
    }

    #[test]
    fn schedulability_and_response_times() {
        let p = two_core_partition_with_split();
        assert!(p.is_schedulable(UniprocessorTest::ResponseTime));
        let rts = p.response_times();
        assert_eq!(rts.len(), 2);
        assert!(rts.iter().flatten().all(Option::is_some));
    }

    #[test]
    fn residual_utilization_tracks_placements() {
        let p = two_core_partition_with_split();
        assert!((p.residual_utilization(CoreId(0)) - (1.0 - 0.35)).abs() < 1e-9);
        assert!((p.residual_utilization(CoreId(1)) - (1.0 - 0.5)).abs() < 1e-9);
        let empty = Partition::new(1);
        assert!((empty.residual_utilization(CoreId(0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn parent_queries_cover_split_and_whole() {
        let p = two_core_partition_with_split();
        assert_eq!(
            p.parent_ids(),
            vec![TaskId(0), TaskId(1), TaskId(2)],
            "every parent appears exactly once"
        );
        assert_eq!(p.placements_of(TaskId(2)).len(), 2);
        assert_eq!(p.placements_of(TaskId(0)).len(), 1);
        assert!(p.placements_of(TaskId(9)).is_empty());
        assert!(p.core_has_body(CoreId(0)));
        assert!(!p.core_has_tail(CoreId(0)));
        assert!(p.core_has_tail(CoreId(1)));
        assert!(!p.core_has_body(CoreId(1)));
    }

    #[test]
    fn remove_parent_drops_every_piece_and_renormalizes() {
        let mut p = two_core_partition_with_split();
        assert_eq!(p.remove_parent(TaskId(2)), 2);
        assert_eq!(p.placement_count(), 2);
        assert_eq!(p.split_count(), 0);
        assert_eq!(p.remove_parent(TaskId(2)), 0);
        // The surviving whole tasks hold dense levels from the base.
        for (_, placed) in p.iter() {
            assert_eq!(
                placed.task.priority(),
                Some(Priority::new(WHOLE_PRIORITY_BASE))
            );
        }
    }

    #[test]
    fn renormalize_orders_whole_tasks_deadline_monotonically() {
        let mut p = Partition::new(1);
        p.place(CoreId(0), PlacedTask::whole(task(0, 1, 40, 9)));
        p.place(CoreId(0), PlacedTask::whole(task(1, 1, 10, 9)));
        p.place(
            CoreId(0),
            split_piece(7, 1, 50, 1, 1, 2, SubtaskKind::Tail, 1, None, 0),
        );
        p.renormalize_core_priorities(CoreId(0));
        let lookup = |id: u32| {
            p.iter()
                .find(|(_, pl)| pl.parent == TaskId(id))
                .map(|(_, pl)| pl.task.priority().unwrap())
                .unwrap()
        };
        assert_eq!(lookup(1), Priority::new(WHOLE_PRIORITY_BASE));
        assert_eq!(lookup(0), Priority::new(WHOLE_PRIORITY_BASE + 1));
        // The promoted tail keeps its reserved level.
        assert_eq!(lookup(7), TAIL_PRIORITY);
    }

    #[test]
    fn spare_utilization_clamps_overcommitted_cores() {
        let mut p = Partition::new(2);
        // An "overhead-inflated" assignment overcommitting core 0: 130%.
        p.place(CoreId(0), PlacedTask::whole(task(0, 7, 10, 2)));
        p.place(CoreId(0), PlacedTask::whole(task(2, 6, 10, 3)));
        p.place(CoreId(1), PlacedTask::whole(task(1, 5, 10, 2)));
        assert!(p.residual_utilization(CoreId(0)) < 0.0);
        assert_eq!(p.spare_utilization(CoreId(0)), 0.0);
        assert!((p.spare_utilization(CoreId(1)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn analysis_cache_tracks_mutations() {
        let mut p = two_core_partition_with_split();
        assert!(!p.analysis_cache_enabled());
        assert!(p.cached_core(CoreId(0)).is_none());
        p.enable_analysis_cache();
        let cache = p.cached_core(CoreId(0)).expect("converged after enable");
        assert!(cache.is_schedulable());
        assert_eq!(cache.len(), 2);

        // place() stales the touched core until renormalization.
        p.place(CoreId(0), PlacedTask::whole(task(9, 1, 10, 0)));
        assert!(p.cached_core(CoreId(0)).is_none());
        assert!(p.cached_core(CoreId(1)).is_some());
        p.renormalize_core_priorities(CoreId(0));
        let cache = p.cached_core(CoreId(0)).expect("refreshed");
        assert_eq!(cache.len(), 3);
        assert_eq!(
            cache.analysis(),
            rta::analyse_core(&cache.tasks().cloned().collect::<Vec<_>>())
        );

        // Departures keep every touched core coherent.
        p.remove_parent(TaskId(2));
        for core in [CoreId(0), CoreId(1)] {
            let cache = p.cached_core(core).expect("coherent after removal");
            assert_eq!(
                cache.analysis(),
                rta::analyse_core(&cache.tasks().cloned().collect::<Vec<_>>())
            );
        }
    }

    #[test]
    fn cache_is_ignored_by_equality_and_survives_clone() {
        let plain = two_core_partition_with_split();
        let mut cached = plain.clone();
        cached.enable_analysis_cache();
        assert_eq!(plain, cached, "the cache is derived state");
        let snapshot = cached.clone();
        assert!(snapshot.cached_core(CoreId(0)).is_some());
        assert_eq!(
            snapshot.cached_core(CoreId(0)),
            cached.cached_core(CoreId(0))
        );
    }

    #[test]
    fn cached_is_schedulable_matches_scratch() {
        let mut p = two_core_partition_with_split();
        let scratch = p.is_schedulable(UniprocessorTest::ResponseTime);
        p.enable_analysis_cache();
        assert_eq!(p.is_schedulable(UniprocessorTest::ResponseTime), scratch);
    }

    #[test]
    fn serialization_skips_the_cache_and_round_trips() {
        let mut p = two_core_partition_with_split();
        p.enable_analysis_cache();
        let json = serde_json::to_string(&p).unwrap();
        assert!(!json.contains("cache"));
        let back: Partition = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert!(!back.analysis_cache_enabled());
    }

    /// Placement + cache equality: the journal must restore both, so tests
    /// compare the visible placements and every core's converged cache.
    fn assert_fully_equal(a: &Partition, b: &Partition) {
        assert_eq!(a, b);
        for core in 0..a.core_count() {
            assert_eq!(
                a.cached_core(CoreId(core)),
                b.cached_core(CoreId(core)),
                "cache state diverged on core {core}"
            );
        }
    }

    #[test]
    fn rewind_restores_place_and_renormalize() {
        let mut p = two_core_partition_with_split();
        p.enable_analysis_cache();
        p.enable_journal();
        let snapshot = p.clone();
        let mark = p.journal_begin();
        p.place(CoreId(0), PlacedTask::whole(task(9, 1, 10, 0)));
        p.renormalize_core_priorities(CoreId(0));
        p.place(CoreId(1), PlacedTask::whole(task(10, 1, 30, 0)));
        p.renormalize_core_priorities(CoreId(1));
        assert_ne!(p, snapshot);
        p.rewind(mark);
        assert_fully_equal(&p, &snapshot);
        p.journal_end();
    }

    #[test]
    fn rewind_restores_remove_parent_at_original_indices() {
        let mut p = two_core_partition_with_split();
        p.enable_analysis_cache();
        p.enable_journal();
        let snapshot = p.clone();
        let mark = p.journal_begin();
        // Removes the split chain: one piece per core, at index 1 of each
        // bin, exercising mid-bin re-insertion on rewind.
        assert_eq!(p.remove_parent(TaskId(2)), 2);
        assert_ne!(p, snapshot);
        p.rewind(mark);
        assert_fully_equal(&p, &snapshot);
        for core in [CoreId(0), CoreId(1)] {
            assert_eq!(
                p.core(core).iter().map(|pl| pl.parent).collect::<Vec<_>>(),
                snapshot
                    .core(core)
                    .iter()
                    .map(|pl| pl.parent)
                    .collect::<Vec<_>>(),
                "bin order changed on {core}"
            );
        }
    }

    #[test]
    fn nested_marks_rewind_lifo() {
        let mut p = Partition::new(2);
        p.enable_analysis_cache();
        p.enable_journal();
        let outer = p.journal_begin();
        p.place(CoreId(0), PlacedTask::whole(task(0, 1, 10, 0)));
        p.renormalize_core_priorities(CoreId(0));
        let committed = p.clone();
        let inner = p.journal_mark();
        p.place(CoreId(0), PlacedTask::whole(task(1, 2, 10, 0)));
        p.renormalize_core_priorities(CoreId(0));
        p.rewind(inner);
        assert_fully_equal(&p, &committed);
        p.rewind(outer);
        assert_eq!(p.placement_count(), 0);
        assert!(p.cached_core(CoreId(0)).unwrap().is_empty());
        p.journal_end();
    }

    #[test]
    fn nested_scopes_keep_the_outer_log_until_the_outermost_end() {
        let mut p = Partition::new(1);
        p.enable_analysis_cache();
        p.enable_journal();
        let outer = p.journal_begin();
        p.place(CoreId(0), PlacedTask::whole(task(0, 1, 10, 0)));
        p.renormalize_core_priorities(CoreId(0));
        let inner = p.journal_begin();
        p.place(CoreId(0), PlacedTask::whole(task(1, 2, 10, 0)));
        p.renormalize_core_priorities(CoreId(0));
        p.rewind(inner);
        // Closing the inner scope must keep the outer scope's undo log:
        // the outer mark stays rewindable.
        p.journal_end();
        assert_eq!(p.placement_count(), 1);
        p.rewind(outer);
        p.journal_end();
        assert_eq!(p.placement_count(), 0);
        assert!(p.cached_core(CoreId(0)).unwrap().is_empty());
    }

    #[test]
    fn journal_records_only_inside_scopes() {
        let mut p = Partition::new(1);
        p.enable_journal();
        // Outside a scope: mutations are final, rewinding does nothing.
        let mark = p.journal_mark();
        p.place(CoreId(0), PlacedTask::whole(task(0, 1, 10, 0)));
        p.renormalize_core_priorities(CoreId(0));
        p.rewind(mark);
        assert_eq!(p.placement_count(), 1);
    }

    #[test]
    fn clones_do_not_carry_journal_history_but_stay_enabled() {
        let mut p = Partition::new(1);
        p.enable_journal();
        let mark = p.journal_begin();
        p.place(CoreId(0), PlacedTask::whole(task(0, 1, 10, 0)));
        let clone = p.clone();
        assert!(clone.journal_enabled());
        // The clone's journal is fresh: its marks are independent.
        assert_eq!(clone.journal_mark(), JournalMark(0));
        p.rewind(mark);
        assert_eq!(p.placement_count(), 0);
        assert_eq!(clone.placement_count(), 1);
    }

    #[test]
    fn clone_counter_tracks_partition_clones() {
        let p = two_core_partition_with_split();
        let before = Partition::clone_count();
        let _ = p.clone();
        let _ = p.clone();
        assert_eq!(Partition::clone_count(), before + 2);
    }

    #[test]
    fn core_id_display_and_conversions() {
        assert_eq!(CoreId(3).to_string(), "P3");
        assert_eq!(usize::from(CoreId(2)), 2);
        assert_eq!(CoreId::from(4), CoreId(4));
    }
}
