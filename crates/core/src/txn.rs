//! Multi-partition planning transactions.
//!
//! A [`PlanTxn`] owns one speculative rollback scope per participating
//! [`Partition`] — the admission cascade's repair attempts open one scope
//! on the controller's own partition, while the cross-shard split planner
//! opens one scope on *each* shard it speculates on. The transaction is
//! two-phase: every participant must accept its pieces before any scope
//! commits, and an abort rewinds the scopes in LIFO order (last partition
//! begun is restored first), so nested single-partition transactions keep
//! the plain journal semantics bit-identically.
//!
//! Each scope picks the cheapest sound rollback mechanism per partition:
//! a journal scope ([`Partition::journal_begin`], rewind in O(moves)) when
//! the partition carries a mutation journal, and a full snapshot clone
//! (O(tasks), the pre-journal behaviour kept for benchmarking) otherwise.
//! [`Savepoint`] is the nested flavour — a rollback point *inside* an open
//! scope (one speculative relocation within a repair attempt) that can be
//! restored without closing the enclosing scope.
//!
//! # Drop safety
//!
//! A transaction that is dropped without [`commit`](PlanTxn::commit) or
//! [`abort`](PlanTxn::abort) — an early `return` or a panic unwinding
//! through a planning routine — must not leave its journal scopes open:
//! the partitions would keep recording undo entries forever and a later
//! outer rewind would silently swallow the leaked speculation. `Drop`
//! cannot reach the participants (the transaction borrows them only
//! transiently), so it instead flips a per-scope abandonment token shared
//! with each partition's journal. The partition notices the flipped token
//! at its *next* journal interaction and rewinds + closes the abandoned
//! scope lazily (see [`Partition::reconcile_abandoned_scopes`]). Snapshot
//! scopes hold the rollback state inside the transaction itself and the
//! partition is unreachable from `Drop`, so they cannot be auto-restored —
//! journal-carrying partitions (every online-controller shard) get the
//! full guarantee.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::placement::{JournalMark, Partition};

/// A nested rollback point inside an open [`PlanTxn`] scope (or on its
/// own, outside any transaction): either a journal mark on a
/// journal-carrying partition or a full snapshot clone. Restoring it
/// rewinds the partition without closing any enclosing journal scope.
#[derive(Debug)]
pub enum Savepoint {
    /// A position in the partition's mutation journal.
    Journal(JournalMark),
    /// A full snapshot of the partition (no journal attached).
    Snapshot(Box<Partition>),
}

impl Savepoint {
    /// Captures the partition's current state: a journal mark when a
    /// mutation journal is attached (free), a snapshot clone otherwise.
    pub fn capture(partition: &Partition) -> Savepoint {
        if partition.journal_enabled() {
            Savepoint::Journal(partition.journal_mark())
        } else {
            Savepoint::Snapshot(Box::new(partition.clone()))
        }
    }

    /// Restores the partition to the captured state. Journal marks rewind
    /// in O(recorded moves) and leave every enclosing scope open; snapshots
    /// replace the partition wholesale.
    pub fn restore(self, partition: &mut Partition) {
        match self {
            Savepoint::Journal(mark) => partition.rewind(mark),
            Savepoint::Snapshot(snapshot) => *partition = *snapshot,
        }
    }
}

/// A planning transaction over one or several partitions. See the
/// [module docs](self) for the two-phase protocol.
///
/// Scopes are indexed by begin order: [`begin`](Self::begin) on the i-th
/// partition returns scope index `i`, and [`commit`](Self::commit) /
/// [`abort`](Self::abort) take the same partitions *in the same order*.
///
/// Dropping a transaction without committing or aborting marks every
/// journal scope abandoned; the owning partitions rewind and close them at
/// their next journal interaction (see the [module docs](self)).
#[derive(Debug, Default)]
pub struct PlanTxn {
    scopes: Vec<Savepoint>,
    /// One entry per scope, parallel to `scopes`: the abandonment token
    /// shared with the partition's journal for journal scopes, `None` for
    /// snapshot scopes (which `Drop` cannot restore).
    guards: Vec<Option<Arc<AtomicBool>>>,
}

impl PlanTxn {
    /// An empty transaction with no open scopes.
    pub fn new() -> Self {
        PlanTxn::default()
    }

    /// Opens a speculative scope on one partition and returns its scope
    /// index. On a journal-carrying partition this opens a journal scope
    /// (mutations record undo entries until commit or abort); otherwise it
    /// snapshots the partition.
    pub fn begin(&mut self, partition: &mut Partition) -> usize {
        let (scope, guard) = if partition.journal_enabled() {
            let mark = partition.journal_begin();
            (Savepoint::Journal(mark), partition.current_scope_guard())
        } else {
            (Savepoint::Snapshot(Box::new(partition.clone())), None)
        };
        self.scopes.push(scope);
        self.guards.push(guard);
        self.scopes.len() - 1
    }

    /// Number of open scopes.
    pub fn len(&self) -> usize {
        self.scopes.len()
    }

    /// Whether the transaction has no open scopes.
    pub fn is_empty(&self) -> bool {
        self.scopes.is_empty()
    }

    /// Commits every scope: the speculative mutations become final.
    /// `partitions` must be the partitions passed to [`begin`](Self::begin),
    /// in begin order.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` has fewer entries than open scopes.
    pub fn commit(mut self, partitions: &mut [&mut Partition]) {
        let scopes = std::mem::take(&mut self.scopes);
        self.guards.clear(); // resolved explicitly: Drop must not mark them
        for (idx, scope) in scopes.into_iter().enumerate() {
            if let Savepoint::Journal(_) = scope {
                partitions[idx].journal_end();
            }
        }
    }

    /// Aborts every scope in LIFO order (the last partition begun is
    /// restored first), leaving every participant bit-identical to its
    /// state at `begin` — placements, priorities and attached analysis
    /// caches. `partitions` must be the partitions passed to
    /// [`begin`](Self::begin), in begin order.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` has fewer entries than open scopes.
    pub fn abort(mut self, partitions: &mut [&mut Partition]) {
        let scopes = std::mem::take(&mut self.scopes);
        self.guards.clear(); // resolved explicitly: Drop must not mark them
        for (idx, scope) in scopes.into_iter().enumerate().rev() {
            match scope {
                Savepoint::Journal(mark) => {
                    partitions[idx].rewind(mark);
                    partitions[idx].journal_end();
                }
                Savepoint::Snapshot(snapshot) => *partitions[idx] = *snapshot,
            }
        }
    }
}

impl Drop for PlanTxn {
    fn drop(&mut self) {
        // Commit and abort consume the guards, so reaching here with live
        // tokens means the transaction leaked — an early return or a panic
        // unwinding through planning code. Flip each token; the owning
        // partition rewinds and closes the scope at its next journal
        // interaction.
        for guard in self.guards.drain(..).flatten() {
            guard.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{CoreId, PlacedTask};
    use spms_task::{Task, TaskId, Time};

    fn task(id: u32, wcet_ms: u64, period_ms: u64) -> Task {
        Task::new(id, Time::from_millis(wcet_ms), Time::from_millis(period_ms)).unwrap()
    }

    fn journaled(cores: usize) -> Partition {
        let mut p = Partition::new(cores);
        p.enable_analysis_cache();
        p.enable_journal();
        p
    }

    fn place_whole(p: &mut Partition, core: usize, t: Task) {
        p.place(CoreId(core), PlacedTask::whole(t));
        p.renormalize_core_priorities(CoreId(core));
    }

    fn assert_fully_equal(a: &Partition, b: &Partition) {
        assert_eq!(a, b);
        for core in 0..a.core_count() {
            assert_eq!(
                a.cached_core(CoreId(core)),
                b.cached_core(CoreId(core)),
                "cache state diverged on core {core}"
            );
        }
    }

    #[test]
    fn abort_restores_every_participant() {
        let mut a = journaled(1);
        let mut b = journaled(1);
        place_whole(&mut a, 0, task(0, 1, 10));
        place_whole(&mut b, 0, task(1, 2, 10));
        let snap_a = a.clone();
        let snap_b = b.clone();
        let mut txn = PlanTxn::new();
        assert_eq!(txn.begin(&mut a), 0);
        assert_eq!(txn.begin(&mut b), 1);
        place_whole(&mut a, 0, task(2, 1, 10));
        place_whole(&mut b, 0, task(3, 1, 10));
        txn.abort(&mut [&mut a, &mut b]);
        assert_fully_equal(&a, &snap_a);
        assert_fully_equal(&b, &snap_b);
    }

    #[test]
    fn commit_keeps_every_participant() {
        let mut a = journaled(1);
        let mut b = journaled(1);
        let mut txn = PlanTxn::new();
        txn.begin(&mut a);
        txn.begin(&mut b);
        place_whole(&mut a, 0, task(0, 1, 10));
        place_whole(&mut b, 0, task(1, 1, 10));
        txn.commit(&mut [&mut a, &mut b]);
        assert_eq!(a.placement_count(), 1);
        assert_eq!(b.placement_count(), 1);
        // After the commit, the scopes are closed: the undo log is cleared
        // and the journal position is back at a fresh journal's origin.
        let fresh = journaled(1);
        assert_eq!(a.journal_mark(), fresh.journal_mark());
    }

    #[test]
    fn snapshot_scope_on_journal_free_partitions() {
        let mut a = Partition::new(1);
        place_whole(&mut a, 0, task(0, 1, 10));
        let snap = a.clone();
        let mut txn = PlanTxn::new();
        txn.begin(&mut a);
        place_whole(&mut a, 0, task(1, 1, 10));
        txn.abort(&mut [&mut a]);
        assert_eq!(a, snap);
    }

    #[test]
    fn nested_savepoint_restores_inside_an_open_scope() {
        let mut a = journaled(1);
        let mut txn = PlanTxn::new();
        txn.begin(&mut a);
        place_whole(&mut a, 0, task(0, 1, 10));
        let committed = a.clone();
        let inner = Savepoint::capture(&a);
        place_whole(&mut a, 0, task(1, 2, 10));
        inner.restore(&mut a);
        assert_fully_equal(&a, &committed);
        // The outer scope is still open and still rewinds everything.
        txn.abort(&mut [&mut a]);
        assert_eq!(a.placement_count(), 0);
    }

    #[test]
    fn dropped_txn_auto_aborts_at_next_journal_interaction() {
        let mut a = journaled(1);
        place_whole(&mut a, 0, task(0, 1, 10));
        let snap = a.clone();
        {
            let mut txn = PlanTxn::new();
            txn.begin(&mut a);
            place_whole(&mut a, 0, task(1, 1, 10));
            // txn dropped here without commit or abort.
        }
        // The leak is reconciled lazily: the speculative placement is still
        // visible until the partition's next journal interaction.
        assert_eq!(a.reconcile_abandoned_scopes(), 1);
        assert_fully_equal(&a, &snap);
        // The scope is fully closed: a fresh scope commits cleanly.
        let mut txn = PlanTxn::new();
        txn.begin(&mut a);
        place_whole(&mut a, 0, task(2, 1, 10));
        txn.commit(&mut [&mut a]);
        assert_eq!(a.placement_count(), 2);
    }

    #[test]
    fn panic_through_open_txn_rolls_back_without_poisoning() {
        let mut a = journaled(1);
        place_whole(&mut a, 0, task(0, 1, 10));
        let snap = a.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut txn = PlanTxn::new();
            txn.begin(&mut a);
            place_whole(&mut a, 0, task(1, 1, 10));
            panic!("planning blew up mid-scope");
        }));
        assert!(result.is_err());
        // The next mutation implicitly reconciles the abandoned scope
        // first, so the panicking speculation never mixes with new work.
        place_whole(&mut a, 0, task(2, 1, 10));
        assert_eq!(a.placement_count(), 2);
        assert!(!a.placements_of(TaskId(2)).is_empty());
        assert!(a.placements_of(TaskId(1)).is_empty());
        // Rolling back to before the post-panic placement matches the
        // pre-panic snapshot exactly.
        a.remove_parent(TaskId(2));
        a.renormalize_core_priorities(CoreId(0));
        assert_fully_equal(&a, &snap);
    }

    #[test]
    fn mixed_journal_and_snapshot_participants_abort_together() {
        let mut j = journaled(1);
        let mut s = Partition::new(1);
        place_whole(&mut s, 0, task(5, 1, 10));
        let snap_j = j.clone();
        let snap_s = s.clone();
        let mut txn = PlanTxn::new();
        txn.begin(&mut j);
        txn.begin(&mut s);
        place_whole(&mut j, 0, task(0, 1, 10));
        s.remove_parent(TaskId(5));
        txn.abort(&mut [&mut j, &mut s]);
        assert_fully_equal(&j, &snap_j);
        assert_eq!(s, snap_s);
    }
}
