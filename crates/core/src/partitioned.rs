//! Classic partitioned fixed-priority scheduling via bin-packing heuristics.
//!
//! The paper compares FP-TS against "two widely used fixed-priority
//! partitioned scheduling algorithms, FFD (first-fit decreasing size
//! partitioning) and WFD (worst-fit decreasing size partitioning)" (§4).
//! This module implements those baselines — and the other standard
//! heuristics (best-fit, next-fit) — on top of a pluggable per-core
//! acceptance test and the measured overhead model.

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_task::{PriorityAssignment, Task, TaskSet};

use crate::{CoreId, Partition, PartitionError, PartitionOutcome, Partitioner, PlacedTask};

/// Which bin is chosen for a task among those whose acceptance test passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum BinPackingHeuristic {
    /// The lowest-indexed core that accepts the task.
    #[default]
    FirstFit,
    /// The accepting core with the highest current utilization.
    BestFit,
    /// The accepting core with the lowest current utilization.
    WorstFit,
    /// Keep filling the current core; once a task does not fit, move on and
    /// never come back.
    NextFit,
}

impl BinPackingHeuristic {
    fn short_name(self) -> &'static str {
        match self {
            BinPackingHeuristic::FirstFit => "FF",
            BinPackingHeuristic::BestFit => "BF",
            BinPackingHeuristic::WorstFit => "WF",
            BinPackingHeuristic::NextFit => "NF",
        }
    }
}

/// The order in which tasks are offered to the bin-packing heuristic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TaskOrdering {
    /// Decreasing utilization ("size"): the `D` in FFD/WFD/BFD.
    #[default]
    DecreasingUtilization,
    /// The order of the input task set.
    AsGiven,
    /// Increasing priority (lowest-priority task first) — the order used by
    /// the FP-TS splitting pass, provided here for like-for-like comparisons.
    IncreasingPriority,
}

impl TaskOrdering {
    fn short_suffix(self) -> &'static str {
        match self {
            TaskOrdering::DecreasingUtilization => "D",
            TaskOrdering::AsGiven => "",
            TaskOrdering::IncreasingPriority => "P",
        }
    }
}

/// Partitioned fixed-priority scheduling: every task is statically assigned
/// to exactly one core.
///
/// # Example
///
/// ```
/// use spms_core::{PartitionedFixedPriority, Partitioner, PartitionOutcome};
/// use spms_task::TaskSetGenerator;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let tasks = TaskSetGenerator::new().task_count(8).total_utilization(2.0).seed(3).generate()?;
/// let outcome = PartitionedFixedPriority::ffd().partition(&tasks, 4)?;
/// assert!(matches!(outcome, PartitionOutcome::Schedulable(_)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionedFixedPriority {
    /// Bin selection heuristic.
    pub heuristic: BinPackingHeuristic,
    /// Task ordering applied before packing.
    pub ordering: TaskOrdering,
    /// Per-core acceptance test.
    pub test: UniprocessorTest,
    /// Run-time overheads folded into every task's WCET before packing.
    pub overhead: OverheadModel,
}

impl Default for PartitionedFixedPriority {
    fn default() -> Self {
        PartitionedFixedPriority::ffd()
    }
}

impl PartitionedFixedPriority {
    /// First-fit decreasing — the paper's FFD baseline.
    pub fn ffd() -> Self {
        PartitionedFixedPriority {
            heuristic: BinPackingHeuristic::FirstFit,
            ordering: TaskOrdering::DecreasingUtilization,
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
        }
    }

    /// Worst-fit decreasing — the paper's WFD baseline.
    pub fn wfd() -> Self {
        PartitionedFixedPriority {
            heuristic: BinPackingHeuristic::WorstFit,
            ..PartitionedFixedPriority::ffd()
        }
    }

    /// Best-fit decreasing.
    pub fn bfd() -> Self {
        PartitionedFixedPriority {
            heuristic: BinPackingHeuristic::BestFit,
            ..PartitionedFixedPriority::ffd()
        }
    }

    /// Next-fit over the tasks in their given order.
    pub fn next_fit() -> Self {
        PartitionedFixedPriority {
            heuristic: BinPackingHeuristic::NextFit,
            ordering: TaskOrdering::AsGiven,
            ..PartitionedFixedPriority::ffd()
        }
    }

    /// Replaces the per-core acceptance test (builder style).
    pub fn with_test(mut self, test: UniprocessorTest) -> Self {
        self.test = test;
        self
    }

    /// Replaces the overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    fn order_tasks(&self, tasks: &TaskSet) -> Vec<Task> {
        let mut ordered: Vec<Task> = tasks.iter().cloned().collect();
        match self.ordering {
            TaskOrdering::DecreasingUtilization => {
                ordered.sort_by(|a, b| {
                    b.utilization()
                        .partial_cmp(&a.utilization())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| a.id().cmp(&b.id()))
                });
            }
            TaskOrdering::AsGiven => {}
            TaskOrdering::IncreasingPriority => {
                ordered.sort_by_key(|t| {
                    (
                        std::cmp::Reverse(t.priority().unwrap_or(spms_task::Priority::LOWEST)),
                        t.id(),
                    )
                });
            }
        }
        ordered
    }
}

impl Partitioner for PartitionedFixedPriority {
    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionOutcome, PartitionError> {
        if cores == 0 {
            return Err(PartitionError::NoCores);
        }
        tasks.validate()?;

        // Fold the per-job overhead into every task, then (re)assign dense
        // rate-monotonic priorities; overhead inflation never changes periods
        // so the priority order is the same as for the original set.
        let mut inflated = TaskSet::with_capacity(tasks.len());
        for task in tasks {
            match self.overhead.inflate_task(task) {
                Ok(t) => inflated.push(t),
                Err(_) => {
                    return Ok(PartitionOutcome::Unschedulable {
                        reason: format!(
                            "task {} cannot absorb the scheduling overhead within its deadline",
                            task.id()
                        ),
                    })
                }
            }
        }
        inflated.assign_priorities(PriorityAssignment::RateMonotonic);

        let ordered = self.order_tasks(&inflated);
        let mut bins: Vec<Vec<Task>> = vec![Vec::new(); cores];
        let mut next_fit_cursor = 0usize;

        for task in ordered {
            let accepts = |bin: &Vec<Task>| {
                let mut candidate = bin.clone();
                candidate.push(task.clone());
                self.test.accepts(&candidate)
            };
            let chosen = match self.heuristic {
                BinPackingHeuristic::FirstFit => bins.iter().position(accepts),
                BinPackingHeuristic::BestFit => bins
                    .iter()
                    .enumerate()
                    .filter(|(_, bin)| accepts(bin))
                    .max_by(|(_, a), (_, b)| {
                        utilization(a)
                            .partial_cmp(&utilization(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i),
                BinPackingHeuristic::WorstFit => bins
                    .iter()
                    .enumerate()
                    .filter(|(_, bin)| accepts(bin))
                    .min_by(|(_, a), (_, b)| {
                        utilization(a)
                            .partial_cmp(&utilization(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .map(|(i, _)| i),
                BinPackingHeuristic::NextFit => {
                    while next_fit_cursor < cores && !accepts(&bins[next_fit_cursor]) {
                        next_fit_cursor += 1;
                    }
                    (next_fit_cursor < cores).then_some(next_fit_cursor)
                }
            };
            match chosen {
                Some(core) => bins[core].push(task),
                None => {
                    return Ok(PartitionOutcome::Unschedulable {
                        reason: format!(
                            "task {} (U={:.3}) does not fit on any of the {cores} cores under the {} test",
                            task.id(),
                            task.utilization(),
                            self.test
                        ),
                    })
                }
            }
        }

        let mut partition = Partition::new(cores);
        for (core, bin) in bins.into_iter().enumerate() {
            for task in bin {
                // The analysis task carries the inflated WCET; the runtime
                // execution budget is the original task's WCET.
                let execution = tasks
                    .iter()
                    .find(|t| t.id() == task.id())
                    .map_or(task.wcet(), Task::wcet);
                partition.place(
                    CoreId(core),
                    PlacedTask::whole(task).with_execution(execution),
                );
            }
        }
        Ok(PartitionOutcome::Schedulable(partition))
    }

    fn name(&self) -> String {
        format!(
            "{}{}",
            self.heuristic.short_name(),
            self.ordering.short_suffix()
        )
    }
}

fn utilization(bin: &[Task]) -> f64 {
    bin.iter().map(Task::utilization).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::{TaskSetGenerator, Time};

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    fn set(tasks: Vec<Task>) -> TaskSet {
        tasks.into_iter().collect()
    }

    #[test]
    fn names_follow_the_literature() {
        assert_eq!(PartitionedFixedPriority::ffd().name(), "FFD");
        assert_eq!(PartitionedFixedPriority::wfd().name(), "WFD");
        assert_eq!(PartitionedFixedPriority::bfd().name(), "BFD");
        assert_eq!(PartitionedFixedPriority::next_fit().name(), "NF");
    }

    #[test]
    fn zero_cores_is_an_error() {
        let ts = set(vec![task(0, 1, 10)]);
        assert_eq!(
            PartitionedFixedPriority::ffd()
                .partition(&ts, 0)
                .unwrap_err(),
            PartitionError::NoCores
        );
    }

    #[test]
    fn light_set_fits_on_one_core() {
        let ts = set(vec![task(0, 1, 10), task(1, 2, 20), task(2, 1, 40)]);
        let outcome = PartitionedFixedPriority::ffd().partition(&ts, 1).unwrap();
        let p = outcome.into_partition().expect("schedulable");
        assert_eq!(p.core_count(), 1);
        assert_eq!(p.placement_count(), 3);
        assert_eq!(p.split_count(), 0);
    }

    #[test]
    fn overloaded_set_is_unschedulable() {
        // Three tasks of 60% cannot fit on two cores.
        let ts = set(vec![task(0, 6, 10), task(1, 6, 10), task(2, 6, 10)]);
        let outcome = PartitionedFixedPriority::ffd().partition(&ts, 2).unwrap();
        assert!(!outcome.is_schedulable());
        if let PartitionOutcome::Unschedulable { reason } = outcome {
            assert!(reason.contains("does not fit"));
        }
    }

    #[test]
    fn ffd_packs_tightly_and_wfd_balances() {
        // Four 40% tasks on 4 cores: FFD puts two per core (0.8 < harmonic RTA ok),
        // WFD spreads one per core.
        let ts = set(vec![
            task(0, 4, 10),
            task(1, 4, 10),
            task(2, 4, 10),
            task(3, 4, 10),
        ]);
        let ffd = PartitionedFixedPriority::ffd()
            .partition(&ts, 4)
            .unwrap()
            .into_partition()
            .unwrap();
        let wfd = PartitionedFixedPriority::wfd()
            .partition(&ts, 4)
            .unwrap()
            .into_partition()
            .unwrap();
        let ffd_used = ffd.core_utilizations().iter().filter(|&&u| u > 0.0).count();
        let wfd_used = wfd.core_utilizations().iter().filter(|&&u| u > 0.0).count();
        assert!(
            ffd_used <= 2,
            "FFD should concentrate load, used {ffd_used}"
        );
        assert_eq!(wfd_used, 4, "WFD should spread load");
    }

    #[test]
    fn bfd_prefers_the_fullest_accepting_core() {
        // Tasks of 50%, 30% and 20% with a common period: best-fit keeps
        // stacking the fullest core and ends with one core at 100%, while
        // worst-fit would spread onto a second core.
        let ts = set(vec![task(0, 5, 10), task(1, 3, 10), task(2, 2, 10)]);
        let bfd = PartitionedFixedPriority::bfd()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .unwrap();
        let utils = bfd.core_utilizations();
        assert!(utils.iter().any(|&u| (u - 1.0).abs() < 1e-9), "{utils:?}");
        assert_eq!(utils.iter().filter(|&&u| u > 0.0).count(), 1);

        let wfd = PartitionedFixedPriority::wfd()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .unwrap();
        assert_eq!(
            wfd.core_utilizations().iter().filter(|&&u| u > 0.0).count(),
            2
        );
    }

    #[test]
    fn next_fit_never_looks_back() {
        // 0.6, 0.6, 0.3: next-fit opens core 1 for the second task and puts
        // the third on core 1 as well, even though core 0 could also hold it
        // under RTA (0.9 non-harmonic would fail LL but we use RTA; make the
        // third task small enough that either would accept).
        let ts = set(vec![task(0, 6, 10), task(1, 6, 10), task(2, 1, 10)]);
        let nf = PartitionedFixedPriority::next_fit()
            .partition(&ts, 3)
            .unwrap()
            .into_partition()
            .unwrap();
        assert!(nf.core(CoreId(0)).len() == 1);
        assert_eq!(nf.core(CoreId(1)).len(), 2);
        assert!(nf.core(CoreId(2)).is_empty());
    }

    #[test]
    fn overhead_inflation_reduces_capacity() {
        // Ten 9.3%-utilization tasks with 1 ms period: without overhead they
        // fit on one core, with the measured overhead (~40 µs per job) they do
        // not.
        let tasks: Vec<Task> = (0..10).map(|i| task(i, 93, 1_000)).collect();
        let ts = set(tasks);
        let without = PartitionedFixedPriority::ffd().partition(&ts, 1).unwrap();
        assert!(without.is_schedulable());
        let with = PartitionedFixedPriority::ffd()
            .with_overhead(OverheadModel::paper_n4())
            .partition(&ts, 1)
            .unwrap();
        assert!(!with.is_schedulable());
    }

    #[test]
    fn overhead_larger_than_deadline_is_reported() {
        let ts = set(vec![task(0, 30, 50)]);
        let outcome = PartitionedFixedPriority::ffd()
            .with_overhead(OverheadModel::paper_n4())
            .partition(&ts, 4)
            .unwrap();
        match outcome {
            PartitionOutcome::Unschedulable { reason } => {
                assert!(reason.contains("overhead"));
            }
            other => panic!("expected unschedulable, got {other:?}"),
        }
    }

    #[test]
    fn utilization_bound_test_is_more_conservative_than_rta() {
        let ts = set(vec![task(0, 5, 10), task(1, 10, 20)]);
        let rta = PartitionedFixedPriority::ffd().partition(&ts, 1).unwrap();
        assert!(rta.is_schedulable());
        let ll = PartitionedFixedPriority::ffd()
            .with_test(UniprocessorTest::LiuLayland)
            .partition(&ts, 1)
            .unwrap();
        assert!(!ll.is_schedulable());
    }

    #[test]
    fn random_sets_produce_valid_partitions() {
        for seed in 0..10 {
            let ts = TaskSetGenerator::new()
                .task_count(16)
                .total_utilization(2.6)
                .seed(seed)
                .generate()
                .unwrap();
            for algo in [
                PartitionedFixedPriority::ffd(),
                PartitionedFixedPriority::wfd(),
                PartitionedFixedPriority::bfd(),
            ] {
                if let PartitionOutcome::Schedulable(p) = algo.partition(&ts, 4).unwrap() {
                    assert_eq!(p.validate(), Ok(()));
                    assert_eq!(p.placement_count(), ts.len());
                    assert!(p.is_schedulable(algo.test));
                    assert_eq!(p.split_count(), 0, "partitioned algorithms never split");
                }
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let ts = TaskSetGenerator::new()
            .task_count(12)
            .total_utilization(3.0)
            .seed(5)
            .generate()
            .unwrap();
        let a = PartitionedFixedPriority::ffd().partition(&ts, 4).unwrap();
        let b = PartitionedFixedPriority::ffd().partition(&ts, 4).unwrap();
        assert_eq!(a, b);
    }
}
