//! # spms-core
//!
//! The paper's primary contribution: partitioned and **semi-partitioned**
//! fixed-priority multiprocessor scheduling algorithms, with the measured
//! run-time overheads of the Linux implementation folded into the analysis.
//!
//! * [`PartitionedFixedPriority`] — classic bin-packing partitioning with the
//!   FFD (first-fit decreasing) and WFD (worst-fit decreasing) heuristics the
//!   paper uses as baselines (plus best-fit/next-fit variants),
//! * [`SemiPartitionedFpTs`] — the FP-TS task-splitting algorithm (the SPA1 /
//!   SPA2 scheme of Guan et al., RTAS 2010) adopted by the paper,
//! * [`SemiPartitionedDmPm`] — the DM-PM algorithm of Kato & Yamasaki
//!   (RTAS 2009), the related-work semi-partitioned scheme,
//! * [`Partition`], [`PlacedTask`], [`SplitInfo`] — the result of a
//!   partitioning run, consumed by both the schedulability analysis and the
//!   discrete-event simulator in `spms-sim`,
//! * [`Partitioner`] — the common trait the acceptance-ratio experiments
//!   iterate over.
//!
//! # Example
//!
//! ```
//! use spms_core::{Partitioner, PartitionOutcome, PartitionedFixedPriority, SemiPartitionedFpTs};
//! use spms_task::TaskSetGenerator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks = TaskSetGenerator::new()
//!     .task_count(12)
//!     .total_utilization(3.4)
//!     .seed(7)
//!     .generate()?;
//!
//! let ffd = PartitionedFixedPriority::ffd();
//! let fpts = SemiPartitionedFpTs::default();
//!
//! let ffd_ok = matches!(ffd.partition(&tasks, 4)?, PartitionOutcome::Schedulable(_));
//! let fpts_outcome = fpts.partition(&tasks, 4)?;
//! if let PartitionOutcome::Schedulable(partition) = &fpts_outcome {
//!     // Semi-partitioning may split a few tasks across cores.
//!     assert!(partition.split_count() <= tasks.len());
//! }
//! // FP-TS accepts everything FFD accepts (it only splits when needed).
//! if ffd_ok {
//!     assert!(matches!(fpts_outcome, PartitionOutcome::Schedulable(_)));
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dmpm;
mod edf_partitioned;
mod error;
mod fpts;
mod incremental;
mod partitioned;
mod partitioner;
mod placement;
mod shard;
mod split_budget;
mod txn;

pub use dmpm::SemiPartitionedDmPm;
pub use edf_partitioned::PartitionedEdf;
pub use error::PartitionError;
pub use fpts::{SemiPartitionedFpTs, SplitPlacement, SplitStrategy};
pub use incremental::{whole_outranks_or_ties, IncrementalPlacer, PlacementPlan, WholeProbe};
pub use partitioned::{BinPackingHeuristic, PartitionedFixedPriority, TaskOrdering};
pub use partitioner::{PartitionOutcome, Partitioner};
pub use placement::{
    CacheAuditVerdict, CoreId, JournalMark, Partition, PlacedTask, SplitInfo, SubtaskKind,
    BODY_PRIORITY, TAIL_PRIORITY, WHOLE_PRIORITY_BASE,
};
pub use shard::{
    rebalance_partitions, shard_core_counts, stitch_partitions, RebalanceMove, ShardRouter,
};
pub use txn::{PlanTxn, Savepoint};
