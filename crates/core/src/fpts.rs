//! FP-TS: semi-partitioned fixed-priority scheduling with task splitting.
//!
//! The paper adopts the FP-TS algorithm of Guan et al. (RTAS 2010, "Fixed-
//! Priority Multiprocessor Scheduling with Liu & Layland's Utilization
//! Bound"), whose assignment scheme is known as SPA1/SPA2:
//!
//! * tasks are assigned to processors in **increasing priority order**
//!   (lowest-priority first), filling one processor at a time;
//! * when the next task no longer fits on the processor currently being
//!   filled, it is **split**: a *body* subtask receives exactly the budget the
//!   processor can still accommodate, the processor is closed, and the
//!   remainder moves on to the next processor (splitting again if necessary)
//!   until the final *tail* subtask fits;
//! * split pieces are promoted above all non-split tasks on their host
//!   processor (body pieces above tail pieces), so a body piece completes
//!   within its budget and the tail piece within the synthetic deadline left
//!   over after the earlier pieces' windows. This is the promotion rule of
//!   the Kato/Yamasaki semi-partitioned schedulers (RTAS 2009) and makes the
//!   split pieces analysable with standard constrained-deadline RTA; Guan's
//!   original SPA analysis bounds the tail interference more precisely but
//!   needs a bespoke analysis — the substitution is documented in DESIGN.md;
//! * SPA2 additionally **pre-assigns heavy tasks** (utilization above
//!   `Θ(n)/(1+Θ(n))`) whole, first-fit, so that heavy tasks are never split;
//!   heavy tasks that do not fit whole anywhere fall back to the splitting
//!   pass.
//!
//! Splitting overhead is charged where the paper's measurements say it
//! arises: every body subtask pays the migration path (scheduling decision,
//! context switch, *remote* ready-queue insertion, ready-queue delete on the
//! destination, migration cache reload), and the tail subtask pays the
//! remote sleep-queue insertion when it finishes.

use serde::{Deserialize, Serialize};
use spms_analysis::{bounds, CachedCoreAnalysis, OverheadModel, UniprocessorTest};
use spms_task::{Priority, PriorityAssignment, Task, TaskSet, Time};

use crate::{
    CoreId, Partition, PartitionError, PartitionOutcome, Partitioner, PlacedTask, SplitInfo,
    SubtaskKind,
};

/// Which SPA variant drives the assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SplitStrategy {
    /// Plain next-fit filling with splitting (SPA1). Matches the Liu &
    /// Layland bound only for light task sets.
    Spa1,
    /// Heavy tasks are pre-assigned with first-fit before the SPA1 pass over
    /// the remaining light tasks (SPA2) — the full FP-TS configuration.
    #[default]
    Spa2,
}

/// Where a task that still fits whole (or whose final tail piece fits) is
/// placed during the splitting pass — DESIGN.md's ablation choice between the
/// packing-oriented hybrid and Guan's original next-fit scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum SplitPlacement {
    /// Try to finish the task on *any* processor (first-fit) before splitting
    /// it; splits only happen when the task fits nowhere whole. Packs better
    /// and produces few split tasks.
    #[default]
    FirstFit,
    /// Only consider the processor currently being filled, as in Guan's SPA:
    /// whenever the next task exceeds what the current processor still
    /// accepts, a body piece is carved, the processor is closed and the
    /// remainder moves on. Splits are frequent, which is the configuration
    /// the paper's overhead question is really about.
    NextFit,
}

/// The per-core bins an assignment pass fills, plus — when the acceptance
/// test is the exact RTA — one incremental [`CachedCoreAnalysis`] per bin,
/// so every acceptance probe reuses the converged response times of the
/// tasks ranked above the candidate instead of cloning and re-analysing the
/// whole core (the splitting pass binary-searches body budgets, so probes
/// dominate its cost). Probe verdicts are bit-identical to the from-scratch
/// fallback, which keeps partitioning output unchanged.
struct Bins {
    bins: Vec<Vec<PlacedTask>>,
    caches: Option<Vec<CachedCoreAnalysis>>,
}

impl Bins {
    fn new(cores: usize, test: UniprocessorTest) -> Self {
        Bins {
            bins: vec![Vec::new(); cores],
            caches: (test == UniprocessorTest::ResponseTime)
                .then(|| vec![CachedCoreAnalysis::new(); cores]),
        }
    }

    /// Whether `core` still passes `test` with `candidate` added. Every
    /// candidate in the offline passes carries its final priority, so the
    /// cached probe ranks it by its explicit level.
    fn accepts(&self, test: UniprocessorTest, core: usize, candidate: &Task) -> bool {
        if let Some(caches) = &self.caches {
            return caches[core].accepts_prioritised(candidate);
        }
        let mut tasks: Vec<Task> = self.bins[core].iter().map(|p| p.task.clone()).collect();
        tasks.push(candidate.clone());
        test.accepts(&tasks)
    }

    fn push(&mut self, core: usize, placed: PlacedTask) {
        if let Some(caches) = &mut self.caches {
            caches[core].insert(placed.task.clone());
        }
        self.bins[core].push(placed);
    }

    fn has_tail(&self, core: usize) -> bool {
        self.bins[core].iter().any(|p| p.is_tail())
    }

    fn into_partition(self, cores: usize) -> Partition {
        let mut partition = Partition::new(cores);
        for (core, bin) in self.bins.into_iter().enumerate() {
            for placed in bin {
                partition.place(CoreId(core), placed);
            }
        }
        partition
    }
}

/// The FP-TS semi-partitioned partitioning algorithm.
///
/// # Example
///
/// ```
/// use spms_core::{SemiPartitionedFpTs, Partitioner, PartitionOutcome};
/// use spms_task::{Task, TaskSet, Time};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Three tasks of 60% utilization cannot be partitioned onto two cores,
/// // but semi-partitioning splits one of them across the two cores.
/// let tasks: TaskSet = (0..3)
///     .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)))
///     .collect::<Result<_, _>>()?;
/// let outcome = SemiPartitionedFpTs::default().partition(&tasks, 2)?;
/// let partition = match outcome {
///     PartitionOutcome::Schedulable(p) => p,
///     PartitionOutcome::Unschedulable { reason } => panic!("{reason}"),
/// };
/// assert_eq!(partition.split_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemiPartitionedFpTs {
    /// SPA1 or SPA2 (heavy-task pre-assignment).
    pub strategy: SplitStrategy,
    /// Whether whole tasks / tail pieces are placed first-fit over all cores
    /// or only on the processor currently being filled (Guan's next-fit).
    pub placement: SplitPlacement,
    /// Per-core acceptance test used both for whole tasks and for split
    /// pieces.
    pub test: UniprocessorTest,
    /// Run-time overheads; split pieces additionally pay the migration /
    /// remote-queue costs.
    pub overhead: OverheadModel,
    /// Smallest body-subtask budget worth creating; splits below this are
    /// skipped and the task simply moves on to the next processor.
    pub min_split_budget: Time,
}

impl Default for SemiPartitionedFpTs {
    fn default() -> Self {
        SemiPartitionedFpTs {
            strategy: SplitStrategy::Spa2,
            placement: SplitPlacement::FirstFit,
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
            min_split_budget: Time::from_micros(100),
        }
    }
}

impl SemiPartitionedFpTs {
    /// FP-TS with the SPA1 assignment pass.
    pub fn spa1() -> Self {
        SemiPartitionedFpTs {
            strategy: SplitStrategy::Spa1,
            ..SemiPartitionedFpTs::default()
        }
    }

    /// FP-TS with the SPA2 assignment pass (heavy-task pre-assignment).
    pub fn spa2() -> Self {
        SemiPartitionedFpTs::default()
    }

    /// FP-TS with the next-fit splitting pass of Guan's original SPA scheme:
    /// tasks are only offered to the processor currently being filled, so
    /// splits occur whenever a processor fills up — the configuration with
    /// the most task splitting and therefore the most migration overhead.
    pub fn next_fit_splitting() -> Self {
        SemiPartitionedFpTs {
            placement: SplitPlacement::NextFit,
            ..SemiPartitionedFpTs::default()
        }
    }

    /// Replaces the per-core acceptance test (builder style).
    pub fn with_test(mut self, test: UniprocessorTest) -> Self {
        self.test = test;
        self
    }

    /// Replaces the overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Replaces the split-placement policy (builder style).
    pub fn with_placement(mut self, placement: SplitPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the smallest admissible body-subtask budget (builder style).
    pub fn with_min_split_budget(mut self, budget: Time) -> Self {
        self.min_split_budget = budget;
        self
    }

    /// Priority level reserved for promoted body subtasks.
    const BODY_PRIORITY: Priority = crate::BODY_PRIORITY;
    /// Priority level reserved for promoted tail subtasks (below bodies,
    /// above every non-split task).
    const TAIL_PRIORITY: Priority = crate::TAIL_PRIORITY;

    /// Effective per-core priority of a task assigned whole: the task's
    /// rate-monotonic level shifted down so that the levels below
    /// [`WHOLE_PRIORITY_BASE`](crate::WHOLE_PRIORITY_BASE) stay reserved for
    /// promoted body and tail subtasks.
    fn shifted_priority(task: &Task) -> Priority {
        Priority::new(
            task.priority()
                .map_or(u32::MAX, |p| p.level())
                .saturating_add(crate::WHOLE_PRIORITY_BASE),
        )
    }

    /// The analysis overhead charged to a body piece at `piece_index` within
    /// its chain: the first piece pays the release path, later pieces pay the
    /// migration-in path.
    fn body_piece_overhead(&self, piece_index: usize) -> Time {
        if piece_index == 0 {
            self.overhead.first_piece_inflation()
        } else {
            self.overhead.body_piece_inflation()
        }
    }

    /// The largest body budget (pure execution, excluding any overhead) that
    /// the acceptance test still admits on `core`, bounded by `max_budget`.
    /// Returns `Time::ZERO` when not even the smallest budget fits. The
    /// `C = D` piece construction and the binary search over the acceptance
    /// frontier are shared with the online incremental placer
    /// (`split_budget` module).
    fn max_body_budget(
        &self,
        bins: &Bins,
        core: usize,
        template: &Task,
        max_budget: Time,
        piece_index: usize,
    ) -> Time {
        let overhead = self.body_piece_overhead(piece_index);
        crate::split_budget::max_accepted_budget(self.min_split_budget, max_budget, |budget| {
            match crate::split_budget::body_piece(template, budget, overhead) {
                Some(piece) => bins.accepts(self.test, core, &piece),
                None => false,
            }
        })
    }

    /// Builds the analysis task for the final (tail or whole) placement of
    /// `task` with `budget` pure execution remaining, released `offset` after
    /// the original task. Returns `None` if the piece cannot meet what is
    /// left of the deadline.
    fn make_final_piece(
        &self,
        task: &Task,
        budget: Time,
        offset: Time,
        is_split: bool,
    ) -> Option<Task> {
        let overhead = if is_split {
            self.overhead.tail_piece_inflation()
        } else {
            self.overhead.whole_job_inflation()
        };
        let wcet = budget + overhead;
        let deadline = task.deadline().checked_sub(offset)?;
        if deadline > task.period() || wcet > deadline {
            return None;
        }
        let priority = if is_split {
            Self::TAIL_PRIORITY
        } else {
            Self::shifted_priority(task)
        };
        Task::builder(task.id())
            .wcet(wcet)
            .period(task.period())
            .deadline(deadline)
            .priority(priority)
            .build()
            .ok()
    }

    /// The SPA assignment pass over `tasks` (original parameters, carrying RM
    /// priorities), starting from the existing `bins`.
    fn spa1_pass(&self, tasks: &[Task], bins: &mut Bins, cores: usize) -> Result<(), String> {
        let mut current = 0usize;
        // Tasks are offered in decreasing utilization order. Guan's SPA1
        // assigns in increasing priority order because its utilization-bound
        // argument needs it; with an explicit per-core RTA acceptance test
        // (and explicit priority promotion of split pieces) the order is only
        // a packing heuristic, and decreasing utilization — the same order the
        // FFD/WFD baselines use — packs measurably better, keeping FP-TS's
        // acceptance ratio at or above the partitioned baselines across the
        // whole sweep (see DESIGN.md, substitution table).
        let mut ordered: Vec<&Task> = tasks.iter().collect();
        ordered.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });

        for task in ordered {
            let mut remaining = task.wcet();
            let mut offset = Time::ZERO;
            // (core, analysis piece, pure execution budget)
            let mut pieces: Vec<(usize, Task, Time)> = Vec::new();

            loop {
                if current >= cores {
                    return Err(format!(
                        "task {} exhausted all {cores} processors ({} still unplaced)",
                        task.id(),
                        remaining
                    ));
                }

                // First try to finish the task (whole task or tail). Under
                // the first-fit placement any processor that does not already
                // host one of its pieces is considered; under Guan's next-fit
                // only the processor currently being filled is.
                if let Some(final_piece) =
                    self.make_final_piece(task, remaining, offset, !pieces.is_empty())
                {
                    let is_tail = !pieces.is_empty();
                    let used: Vec<usize> = pieces.iter().map(|(c, _, _)| *c).collect();
                    let candidates: Vec<usize> = match self.placement {
                        SplitPlacement::FirstFit => (0..cores).collect(),
                        SplitPlacement::NextFit => vec![current],
                    };
                    let accepted_core = candidates
                        .into_iter()
                        .filter(|c| !used.contains(c))
                        // A tail piece runs at the promoted tail priority, and
                        // at most one tail may live on a core (stacked pieces
                        // on one level would charge each other's full budget).
                        .filter(|&c| !is_tail || !bins.has_tail(c))
                        .find(|&c| bins.accepts(self.test, c, &final_piece));
                    if let Some(core) = accepted_core {
                        pieces.push((core, final_piece, remaining));
                        break;
                    }
                }

                // Otherwise carve out the largest body budget the processor
                // currently being filled still accepts, close it, and
                // continue with the remainder.
                let already_hosts_piece = pieces.iter().any(|(c, _, _)| *c == current);
                let piece_overhead = self.body_piece_overhead(pieces.len());
                let deadline_room = task
                    .deadline()
                    .saturating_sub(offset)
                    .saturating_sub(piece_overhead);
                let max_budget = remaining
                    .saturating_sub(Time::from_nanos(1))
                    .min(deadline_room);
                let budget = if !already_hosts_piece && max_budget >= self.min_split_budget {
                    self.max_body_budget(bins, current, task, max_budget, pieces.len())
                } else {
                    Time::ZERO
                };
                if budget >= self.min_split_budget && !budget.is_zero() {
                    let wcet = budget + piece_overhead;
                    let piece = Task::builder(task.id())
                        .wcet(wcet)
                        .period(task.period())
                        .deadline(wcet.min(task.period()))
                        .priority(Self::BODY_PRIORITY)
                        .build()
                        .map_err(|e| format!("internal error building body subtask: {e}"))?;
                    offset += wcet;
                    remaining -= budget;
                    pieces.push((current, piece, budget));
                }
                // The processor is closed whether or not it received a piece.
                current += 1;
            }

            // Materialise the placements.
            let count = pieces.len();
            if count == 1 {
                let (core, piece, budget) = pieces.into_iter().next().expect("one piece");
                bins.push(
                    core,
                    PlacedTask {
                        task: piece,
                        execution: budget,
                        parent: task.id(),
                        split: None,
                    },
                );
            } else {
                let first_core = CoreId(pieces[0].0);
                let core_sequence: Vec<usize> = pieces.iter().map(|(c, _, _)| *c).collect();
                let mut running_offset = Time::ZERO;
                for (i, (core, piece, budget)) in pieces.into_iter().enumerate() {
                    let is_tail = i == count - 1;
                    let piece_wcet = piece.wcet();
                    bins.push(
                        core,
                        PlacedTask {
                            task: piece,
                            execution: budget,
                            parent: task.id(),
                            split: Some(SplitInfo {
                                part_index: i,
                                part_count: count,
                                kind: if is_tail {
                                    SubtaskKind::Tail
                                } else {
                                    SubtaskKind::Body
                                },
                                release_offset: running_offset,
                                next_core: core_sequence.get(i + 1).copied().map(CoreId),
                                first_core,
                            }),
                        },
                    );
                    running_offset += piece_wcet;
                }
            }
        }
        Ok(())
    }

    /// SPA2 pre-assignment: place every heavy task whole, first-fit, before
    /// the splitting pass.
    fn preassign_heavy(&self, tasks: &[Task], bins: &mut Bins) -> Result<Vec<Task>, String> {
        let threshold = bounds::heavy_task_threshold(tasks.len().max(1));
        let mut light = Vec::with_capacity(tasks.len());
        let mut heavy: Vec<&Task> = Vec::new();
        for t in tasks {
            if t.utilization() > threshold {
                heavy.push(t);
            } else {
                light.push(t.clone());
            }
        }
        // Heaviest first, first-fit.
        heavy.sort_by(|a, b| {
            b.utilization()
                .partial_cmp(&a.utilization())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id().cmp(&b.id()))
        });
        for task in heavy {
            let Ok(mut analysis_task) =
                task.with_wcet(task.wcet() + self.overhead.whole_job_inflation())
            else {
                // A heavy task that cannot absorb the overhead is handed to
                // the splitting pass, which will report it if it fits nowhere.
                light.push(task.clone());
                continue;
            };
            analysis_task.set_priority(Self::shifted_priority(task));
            let slot = (0..bins.bins.len()).find(|&c| bins.accepts(self.test, c, &analysis_task));
            match slot {
                Some(c) => bins.push(
                    c,
                    PlacedTask {
                        task: analysis_task,
                        execution: task.wcet(),
                        parent: task.id(),
                        split: None,
                    },
                ),
                // A heavy task that fits nowhere whole is handed to the
                // splitting pass instead of declaring failure outright.
                None => light.push(task.clone()),
            }
        }
        Ok(light)
    }
}

impl Partitioner for SemiPartitionedFpTs {
    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionOutcome, PartitionError> {
        if cores == 0 {
            return Err(PartitionError::NoCores);
        }
        tasks.validate()?;

        // The splitting pass works on the original task parameters; the
        // overhead is folded into each piece's analysis WCET when the piece
        // is built. A task that cannot absorb even the whole-task overhead
        // within its deadline can be rejected immediately with a clear
        // reason (splitting it would not reduce the overhead).
        let mut prioritised = TaskSet::with_capacity(tasks.len());
        for task in tasks {
            if self.overhead.inflate_task(task).is_err() {
                return Ok(PartitionOutcome::Unschedulable {
                    reason: format!(
                        "task {} cannot absorb the scheduling overhead within its deadline",
                        task.id()
                    ),
                });
            }
            prioritised.push(task.clone());
        }
        prioritised.assign_priorities(PriorityAssignment::RateMonotonic);
        let all: Vec<Task> = prioritised.iter().cloned().collect();

        let mut bins = Bins::new(cores, self.test);
        let to_split: Vec<Task> = match self.strategy {
            SplitStrategy::Spa1 => all,
            SplitStrategy::Spa2 => match self.preassign_heavy(&all, &mut bins) {
                Ok(light) => light,
                Err(reason) => return Ok(PartitionOutcome::Unschedulable { reason }),
            },
        };

        if let Err(reason) = self.spa1_pass(&to_split, &mut bins, cores) {
            return Ok(PartitionOutcome::Unschedulable { reason });
        }

        let partition = bins.into_partition(cores);
        debug_assert_eq!(partition.validate(), Ok(()));

        // Final safety net: every core must pass the acceptance test with the
        // complete assignment (the incremental checks already guarantee this,
        // but the partition is the contract handed to the simulator).
        if !partition.is_schedulable(self.test) {
            return Ok(PartitionOutcome::Unschedulable {
                reason: "final per-core acceptance test failed".to_owned(),
            });
        }
        Ok(PartitionOutcome::Schedulable(partition))
    }

    fn name(&self) -> String {
        let base = match self.strategy {
            SplitStrategy::Spa1 => "FP-TS(SPA1)",
            SplitStrategy::Spa2 => "FP-TS",
        };
        match self.placement {
            SplitPlacement::FirstFit => base.to_owned(),
            SplitPlacement::NextFit => format!("{base}/NF"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::TaskSetGenerator;

    fn task(id: u32, wcet_us: u64, period_us: u64) -> Task {
        Task::new(id, Time::from_micros(wcet_us), Time::from_micros(period_us)).unwrap()
    }

    fn set(tasks: Vec<Task>) -> TaskSet {
        tasks.into_iter().collect()
    }

    #[test]
    fn names() {
        assert_eq!(SemiPartitionedFpTs::spa1().name(), "FP-TS(SPA1)");
        assert_eq!(SemiPartitionedFpTs::spa2().name(), "FP-TS");
    }

    #[test]
    fn zero_cores_is_an_error() {
        let ts = set(vec![task(0, 1, 10)]);
        assert_eq!(
            SemiPartitionedFpTs::default()
                .partition(&ts, 0)
                .unwrap_err(),
            PartitionError::NoCores
        );
    }

    #[test]
    fn light_set_is_not_split() {
        let ts = set(vec![task(0, 1_000, 10_000), task(1, 2_000, 20_000)]);
        let p = SemiPartitionedFpTs::default()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .expect("schedulable");
        assert_eq!(p.split_count(), 0);
        assert_eq!(p.placement_count(), 2);
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn three_sixty_percent_tasks_fit_on_two_cores_only_by_splitting() {
        let ts = set(vec![
            task(0, 6_000, 10_000),
            task(1, 6_000, 10_000),
            task(2, 6_000, 10_000),
        ]);
        // Partitioned scheduling cannot do this.
        let ffd = crate::PartitionedFixedPriority::ffd()
            .partition(&ts, 2)
            .unwrap();
        assert!(!ffd.is_schedulable());
        // FP-TS splits one of the tasks.
        let p = SemiPartitionedFpTs::default()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .expect("schedulable by splitting");
        assert_eq!(p.split_count(), 1);
        assert_eq!(p.validate(), Ok(()));
        assert!(p.is_schedulable(UniprocessorTest::ResponseTime));
        // One body piece plus one tail piece.
        assert_eq!(p.migrations_per_hyperperiod_hint(), 1);
    }

    #[test]
    fn split_budgets_cover_the_whole_wcet_without_overhead() {
        let ts = set(vec![
            task(0, 6_000, 10_000),
            task(1, 6_000, 10_000),
            task(2, 6_000, 10_000),
        ]);
        let p = SemiPartitionedFpTs::default()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .unwrap();
        // With a zero overhead model the piece WCETs of each split task must
        // sum to the parent's WCET.
        for parent in 0..3u32 {
            let pieces: Vec<_> = p
                .iter()
                .filter(|(_, placed)| {
                    placed.parent == spms_task::TaskId(parent) && placed.is_split()
                })
                .collect();
            if pieces.is_empty() {
                continue;
            }
            let total: Time = pieces.iter().map(|(_, placed)| placed.task.wcet()).sum();
            assert_eq!(total, Time::from_micros(6_000));
        }
    }

    #[test]
    fn body_subtasks_have_highest_priority_and_tails_keep_rank() {
        let ts = set(vec![
            task(0, 6_000, 10_000),
            task(1, 6_000, 10_000),
            task(2, 6_000, 10_000),
        ]);
        let p = SemiPartitionedFpTs::default()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .unwrap();
        for (_, placed) in p.iter() {
            if placed.is_body() {
                assert_eq!(placed.task.priority(), Some(Priority::new(0)));
            } else if placed.is_tail() {
                assert_eq!(placed.task.priority(), Some(Priority::new(1)));
            } else {
                assert!(placed.task.priority().unwrap().level() >= 2);
            }
        }
    }

    #[test]
    fn unschedulable_when_total_demand_exceeds_platform() {
        let ts = set(vec![
            task(0, 9_000, 10_000),
            task(1, 9_000, 10_000),
            task(2, 9_000, 10_000),
        ]);
        let outcome = SemiPartitionedFpTs::default().partition(&ts, 2).unwrap();
        assert!(!outcome.is_schedulable());
    }

    #[test]
    fn spa2_places_heavy_tasks_whole() {
        // Two heavy tasks (70%) plus light ones; SPA2 must not split the
        // heavy tasks.
        let ts = set(vec![
            task(0, 7_000, 10_000),
            task(1, 7_000, 10_000),
            task(2, 2_000, 10_000),
            task(3, 2_000, 10_000),
        ]);
        let p = SemiPartitionedFpTs::spa2()
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .expect("schedulable");
        for (_, placed) in p.iter() {
            if placed.parent == spms_task::TaskId(0) || placed.parent == spms_task::TaskId(1) {
                assert!(!placed.is_split(), "heavy tasks must not be split");
            }
        }
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn fpts_acceptance_ratio_dominates_ffd() {
        // The paper's headline claim is about the acceptance *ratio*: across
        // many random task sets at high utilization, FP-TS accepts at least
        // as many sets as FFD and strictly more overall (per-instance
        // dominance is not claimed by either paper).
        let mut ffd_accepted = 0usize;
        let mut fpts_accepted = 0usize;
        for seed in 0..25 {
            let ts = TaskSetGenerator::new()
                .task_count(12)
                .total_utilization(3.7)
                .seed(seed)
                .generate()
                .unwrap();
            if crate::PartitionedFixedPriority::ffd()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                ffd_accepted += 1;
            }
            if SemiPartitionedFpTs::default()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                fpts_accepted += 1;
            }
        }
        assert!(
            fpts_accepted > ffd_accepted,
            "FP-TS accepted {fpts_accepted}/25, FFD accepted {ffd_accepted}/25"
        );
    }

    #[test]
    fn partitions_are_valid_and_deterministic_on_random_sets() {
        for seed in 0..10 {
            let ts = TaskSetGenerator::new()
                .task_count(16)
                .total_utilization(3.2)
                .seed(100 + seed)
                .generate()
                .unwrap();
            let a = SemiPartitionedFpTs::default().partition(&ts, 4).unwrap();
            let b = SemiPartitionedFpTs::default().partition(&ts, 4).unwrap();
            assert_eq!(a, b);
            if let PartitionOutcome::Schedulable(p) = a {
                assert_eq!(p.validate(), Ok(()));
                assert!(p.is_schedulable(UniprocessorTest::ResponseTime));
            }
        }
    }

    #[test]
    fn overhead_makes_acceptance_slightly_harder() {
        let mut accepted_without = 0usize;
        let mut accepted_with = 0usize;
        for seed in 0..30 {
            let ts = TaskSetGenerator::new()
                .task_count(12)
                .total_utilization(3.6)
                .seed(200 + seed)
                .generate()
                .unwrap();
            if SemiPartitionedFpTs::default()
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                accepted_without += 1;
            }
            if SemiPartitionedFpTs::default()
                .with_overhead(OverheadModel::paper_n4())
                .partition(&ts, 4)
                .unwrap()
                .is_schedulable()
            {
                accepted_with += 1;
            }
        }
        assert!(accepted_with <= accepted_without);
        // The paper's headline: the overhead effect is small, not devastating.
        assert!(
            accepted_without - accepted_with <= 10,
            "overhead wiped out schedulability: {accepted_without} -> {accepted_with}"
        );
    }

    #[test]
    fn split_pieces_respect_min_budget() {
        let ts = set(vec![
            task(0, 6_000, 10_000),
            task(1, 6_000, 10_000),
            task(2, 6_000, 10_000),
        ]);
        let p = SemiPartitionedFpTs::default()
            .with_min_split_budget(Time::from_micros(500))
            .partition(&ts, 2)
            .unwrap()
            .into_partition()
            .unwrap();
        for (_, placed) in p.iter() {
            if placed.is_body() {
                assert!(placed.task.wcet() >= Time::from_micros(500));
            }
        }
    }

    #[test]
    fn spa1_and_spa2_agree_on_light_sets() {
        let ts = TaskSetGenerator::new()
            .task_count(10)
            .total_utilization(2.0)
            .seed(42)
            .generate()
            .unwrap();
        let spa1 = SemiPartitionedFpTs::spa1().partition(&ts, 4).unwrap();
        let spa2 = SemiPartitionedFpTs::spa2().partition(&ts, 4).unwrap();
        assert!(spa1.is_schedulable());
        assert!(spa2.is_schedulable());
    }
}
