//! The common interface of all partitioning algorithms.

use serde::{Deserialize, Serialize};
use spms_task::TaskSet;

use crate::{Partition, PartitionError};

/// Result of a partitioning attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PartitionOutcome {
    /// Every task (or subtask) was placed and every core passed the
    /// acceptance test; the embedded [`Partition`] describes the mapping.
    Schedulable(Partition),
    /// The algorithm could not place the task set on the given number of
    /// cores.
    Unschedulable {
        /// Human-readable reason (which task failed, on how many cores).
        reason: String,
    },
}

impl PartitionOutcome {
    /// Whether the outcome is schedulable.
    pub fn is_schedulable(&self) -> bool {
        matches!(self, PartitionOutcome::Schedulable(_))
    }

    /// The partition, if schedulable.
    pub fn partition(&self) -> Option<&Partition> {
        match self {
            PartitionOutcome::Schedulable(p) => Some(p),
            PartitionOutcome::Unschedulable { .. } => None,
        }
    }

    /// Consumes the outcome and returns the partition, if schedulable.
    pub fn into_partition(self) -> Option<Partition> {
        match self {
            PartitionOutcome::Schedulable(p) => Some(p),
            PartitionOutcome::Unschedulable { .. } => None,
        }
    }
}

/// A multiprocessor partitioning algorithm.
///
/// Implementations must be deterministic: the acceptance-ratio experiments
/// rely on a given `(task set, core count)` pair always producing the same
/// outcome.
pub trait Partitioner {
    /// Attempts to map `tasks` onto `cores` processors.
    ///
    /// # Errors
    ///
    /// Returns [`PartitionError`] only for invalid inputs (zero cores, a task
    /// set that fails validation). An unschedulable task set is reported
    /// through [`PartitionOutcome::Unschedulable`], not as an error.
    fn partition(&self, tasks: &TaskSet, cores: usize) -> Result<PartitionOutcome, PartitionError>;

    /// Short algorithm name used in experiment reports (e.g. `"FP-TS"`,
    /// `"FFD"`, `"WFD"`).
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let p = Partition::new(2);
        let ok = PartitionOutcome::Schedulable(p.clone());
        assert!(ok.is_schedulable());
        assert_eq!(ok.partition(), Some(&p));
        assert!(ok.into_partition().is_some());

        let bad = PartitionOutcome::Unschedulable {
            reason: "task τ3 does not fit".to_owned(),
        };
        assert!(!bad.is_schedulable());
        assert!(bad.partition().is_none());
        assert!(bad.into_partition().is_none());
    }
}
