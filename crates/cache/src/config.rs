//! Cache hierarchy configuration.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
///
/// Sizes are in bytes; the latency is the *hit* latency of the level in
/// nanoseconds (the time to deliver a line that is resident at this level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub associativity: u32,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// Hit latency in nanoseconds.
    pub hit_latency_ns: u64,
}

impl CacheLevelConfig {
    /// Number of cache lines the level can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.lines() / u64::from(self.associativity)).max(1)
    }
}

/// Configuration of a multi-core cache hierarchy: per-core private L1 and L2,
/// a shared L3, and main memory behind it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheHierarchyConfig {
    /// Number of cores sharing the L3.
    pub cores: usize,
    /// Private, per-core first-level data cache.
    pub l1: CacheLevelConfig,
    /// Private, per-core second-level cache.
    pub l2: CacheLevelConfig,
    /// Shared last-level cache.
    pub l3: CacheLevelConfig,
    /// Main-memory access latency in nanoseconds.
    pub memory_latency_ns: u64,
}

impl CacheHierarchyConfig {
    /// A hierarchy modelled on the paper's measurement platform: an Intel
    /// Core-i7 quad-core (Nehalem class) with 32 KiB L1D, 256 KiB L2 per core
    /// and an 8 MiB shared L3.
    pub fn core_i7_4core() -> Self {
        CacheHierarchyConfig {
            cores: 4,
            l1: CacheLevelConfig {
                size_bytes: 32 * 1024,
                associativity: 8,
                line_bytes: 64,
                hit_latency_ns: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 256 * 1024,
                associativity: 8,
                line_bytes: 64,
                hit_latency_ns: 4,
            },
            l3: CacheLevelConfig {
                size_bytes: 8 * 1024 * 1024,
                associativity: 16,
                line_bytes: 64,
                hit_latency_ns: 12,
            },
            memory_latency_ns: 60,
        }
    }

    /// A deliberately tiny hierarchy for fast unit tests.
    pub fn tiny_for_tests() -> Self {
        CacheHierarchyConfig {
            cores: 2,
            l1: CacheLevelConfig {
                size_bytes: 1024,
                associativity: 2,
                line_bytes: 64,
                hit_latency_ns: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 4 * 1024,
                associativity: 4,
                line_bytes: 64,
                hit_latency_ns: 4,
            },
            l3: CacheLevelConfig {
                size_bytes: 32 * 1024,
                associativity: 8,
                line_bytes: 64,
                hit_latency_ns: 12,
            },
            memory_latency_ns: 60,
        }
    }

    /// Total private capacity (L1 + L2) of one core, in bytes.
    pub fn private_capacity_bytes(&self) -> u64 {
        self.l1.size_bytes + self.l2.size_bytes
    }
}

impl Default for CacheHierarchyConfig {
    fn default() -> Self {
        Self::core_i7_4core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_geometry() {
        let l1 = CacheHierarchyConfig::core_i7_4core().l1;
        assert_eq!(l1.lines(), 512);
        assert_eq!(l1.sets(), 64);
    }

    #[test]
    fn default_is_core_i7() {
        let cfg = CacheHierarchyConfig::default();
        assert_eq!(cfg.cores, 4);
        assert_eq!(cfg.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(cfg.private_capacity_bytes(), (32 + 256) * 1024);
    }

    #[test]
    fn latencies_increase_down_the_hierarchy() {
        let cfg = CacheHierarchyConfig::core_i7_4core();
        assert!(cfg.l1.hit_latency_ns < cfg.l2.hit_latency_ns);
        assert!(cfg.l2.hit_latency_ns < cfg.l3.hit_latency_ns);
        assert!(cfg.l3.hit_latency_ns < cfg.memory_latency_ns);
    }
}
