//! Cache-related preemption and migration delay (CRPD) estimation.
//!
//! Reproduces the paper's §3 "cache" overhead argument: after a preemption the
//! resuming task must reload the part of its working set that was evicted
//! while it was not running. On a private-L1/L2 + shared-L3 machine:
//!
//! * **local preemption** — the evicted lines usually survive in the shared
//!   L3, so the reload cost is `lines × L3 latency`, *unless* the combined
//!   working sets of the preempted and preempting tasks fit in the private
//!   levels, in which case (almost) nothing is evicted;
//! * **migration** — the destination core's private caches never held the
//!   task's lines, so the reload cost is `lines × L3 latency` regardless of
//!   working-set size (plus memory accesses for anything that did not fit in
//!   the L3 either).
//!
//! The crossover between "local is much cheaper" and "local ≈ migration" is
//! exactly what [`CrpdModel::analytic`] and [`CrpdModel::simulated`] expose.

use serde::{Deserialize, Serialize};

use crate::{CacheHierarchy, CacheHierarchyConfig, WorkingSet};

/// Estimated reload delays after a preemption, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CrpdEstimate {
    /// Reload cost when the task resumes on the same core it was preempted on.
    pub local_preemption_ns: u64,
    /// Reload cost when the task resumes on a different core (task migration).
    pub migration_ns: u64,
}

impl CrpdEstimate {
    /// Ratio `migration / local`, with the convention that a zero local cost
    /// yields `f64::INFINITY` (an infinitely better local switch).
    pub fn migration_penalty_ratio(&self) -> f64 {
        if self.local_preemption_ns == 0 {
            if self.migration_ns == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.migration_ns as f64 / self.local_preemption_ns as f64
        }
    }
}

/// Estimator for cache-related preemption/migration delays.
///
/// Two estimates are offered: a closed-form *analytic* model used by the
/// overhead-aware schedulability analysis (cheap, conservative) and a
/// *simulated* estimate that actually replays the access pattern through a
/// [`CacheHierarchy`] (used to validate the analytic model and to produce the
/// cache-crossover figure).
#[derive(Debug, Clone)]
pub struct CrpdModel {
    config: CacheHierarchyConfig,
}

impl CrpdModel {
    /// Creates a model for the given hierarchy.
    pub fn new(config: CacheHierarchyConfig) -> Self {
        CrpdModel { config }
    }

    /// The hierarchy configuration backing the model.
    pub fn config(&self) -> &CacheHierarchyConfig {
        &self.config
    }

    /// Closed-form estimate of the reload delays for a task with working set
    /// `task_ws` preempted by a task with working set `preemptor_ws`.
    pub fn analytic(&self, task_ws: WorkingSet, preemptor_ws: WorkingSet) -> CrpdEstimate {
        let line = self.config.l1.line_bytes;
        let lines = task_ws.lines(line);
        let private_lines = self.config.private_capacity_bytes() / line;
        let l3_lines = self.config.l3.size_bytes / line;

        // Lines that do not even fit in the L3 must come from memory in both
        // scenarios.
        let from_memory = lines.saturating_sub(l3_lines);
        let on_chip = lines - from_memory;

        // Migration: the destination core's private caches are cold for this
        // task, so every on-chip line is fetched from the shared L3.
        let migration_ns =
            on_chip * self.config.l3.hit_latency_ns + from_memory * self.config.memory_latency_ns;

        // Local preemption: lines are evicted from the private levels only to
        // the extent that the combined working sets of the preempted and the
        // preempting task exceed the private capacity (self-eviction of a
        // too-large working set is included in the sum).
        let preemptor_lines = preemptor_ws.lines(line);
        let displaced = lines.min((lines + preemptor_lines).saturating_sub(private_lines));
        let displaced_on_chip = displaced.min(on_chip);
        let local_preemption_ns = displaced_on_chip * self.config.l3.hit_latency_ns
            + from_memory * self.config.memory_latency_ns;

        CrpdEstimate {
            local_preemption_ns,
            migration_ns,
        }
    }

    /// Simulated estimate: replays the preemption scenario through a cold
    /// [`CacheHierarchy`].
    ///
    /// Scenario (mirroring Figure 1 of the paper): the task warms its working
    /// set on core 0; the preemptor runs on core 0 and touches its own
    /// working set; then the task resumes either on core 0 (local) or on
    /// core 1 (migration) and re-touches its working set. The reported delay
    /// is the resume cost minus the warm-cache cost, i.e. the *extra* time
    /// attributable to the preemption.
    pub fn simulated(&self, task_ws: WorkingSet, preemptor_ws: WorkingSet) -> CrpdEstimate {
        let warm_cost = {
            let mut h = CacheHierarchy::new(self.config.clone());
            h.touch_working_set(0, &task_ws);
            h.touch_working_set(0, &task_ws)
        };

        let local = {
            let mut h = CacheHierarchy::new(self.config.clone());
            h.touch_working_set(0, &task_ws);
            h.touch_working_set(0, &preemptor_ws);
            h.touch_working_set(0, &task_ws)
        };

        let migration = {
            let mut h = CacheHierarchy::new(self.config.clone());
            h.touch_working_set(0, &task_ws);
            h.touch_working_set(0, &preemptor_ws);
            h.touch_working_set(1, &task_ws)
        };

        CrpdEstimate {
            local_preemption_ns: local.saturating_sub(warm_cost),
            migration_ns: migration.saturating_sub(warm_cost),
        }
    }

    /// Sweeps working-set sizes and returns `(bytes, analytic, simulated)`
    /// triples — the data series behind the cache-crossover experiment (E4).
    pub fn crossover_sweep(
        &self,
        working_set_sizes: &[u64],
    ) -> Vec<(u64, CrpdEstimate, CrpdEstimate)> {
        working_set_sizes
            .iter()
            .map(|&bytes| {
                let ws = WorkingSet::from_bytes(bytes);
                // The preemptor is given an equally sized, disjoint working set.
                let preemptor = WorkingSet::from_bytes(bytes).with_base(1 << 32);
                (
                    bytes,
                    self.analytic(ws, preemptor),
                    self.simulated(ws, preemptor),
                )
            })
            .collect()
    }
}

impl Default for CrpdModel {
    fn default() -> Self {
        CrpdModel::new(CacheHierarchyConfig::core_i7_4core())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CrpdModel {
        CrpdModel::new(CacheHierarchyConfig::core_i7_4core())
    }

    #[test]
    fn small_working_set_prefers_local_switch() {
        let m = model();
        let est = m.analytic(
            WorkingSet::from_bytes(8 * 1024),
            WorkingSet::from_bytes(8 * 1024),
        );
        // 8 KiB + 8 KiB fits comfortably in L1+L2, so the local reload is far
        // cheaper than pulling everything across from the L3 after migrating.
        assert!(est.migration_ns > est.local_preemption_ns);
        assert!(est.migration_penalty_ratio() > 4.0);
    }

    #[test]
    fn large_working_set_makes_migration_comparable() {
        let m = model();
        let est = m.analytic(
            WorkingSet::from_bytes(2 * 1024 * 1024),
            WorkingSet::from_bytes(2 * 1024 * 1024),
        );
        // Both costs are dominated by L3 refills: same order of magnitude.
        assert!(est.migration_penalty_ratio() < 3.0);
        assert!(est.local_preemption_ns > 0);
    }

    #[test]
    fn gigantic_working_set_hits_memory_in_both_cases() {
        let m = model();
        let est = m.analytic(
            WorkingSet::from_bytes(32 * 1024 * 1024),
            WorkingSet::from_bytes(32 * 1024 * 1024),
        );
        assert!(est.local_preemption_ns > 0);
        assert!(est.migration_ns >= est.local_preemption_ns);
        assert!(est.migration_penalty_ratio() < 2.0);
    }

    #[test]
    fn simulated_agrees_with_analytic_on_the_crossover_shape() {
        // Use the tiny hierarchy so the simulation stays fast.
        let m = CrpdModel::new(CacheHierarchyConfig::tiny_for_tests());
        let small = m.simulated(
            WorkingSet::from_bytes(512),
            WorkingSet::from_bytes(512).with_base(1 << 20),
        );
        let large = m.simulated(
            WorkingSet::from_bytes(16 * 1024),
            WorkingSet::from_bytes(16 * 1024).with_base(1 << 20),
        );
        assert!(
            small.migration_penalty_ratio() > large.migration_penalty_ratio(),
            "small working sets should benefit more from staying local (small ratio {} vs large ratio {})",
            small.migration_penalty_ratio(),
            large.migration_penalty_ratio()
        );
    }

    #[test]
    fn migration_never_cheaper_than_local() {
        let m = model();
        for bytes in [1024u64, 64 * 1024, 512 * 1024, 4 * 1024 * 1024] {
            let ws = WorkingSet::from_bytes(bytes);
            let est = m.analytic(ws, ws);
            assert!(est.migration_ns >= est.local_preemption_ns, "bytes={bytes}");
        }
    }

    #[test]
    fn crossover_sweep_produces_one_entry_per_size() {
        let m = CrpdModel::new(CacheHierarchyConfig::tiny_for_tests());
        let sizes = [512u64, 2 * 1024, 8 * 1024];
        let sweep = m.crossover_sweep(&sizes);
        assert_eq!(sweep.len(), sizes.len());
        for (bytes, analytic, simulated) in sweep {
            assert!(sizes.contains(&bytes));
            assert!(analytic.migration_ns >= analytic.local_preemption_ns);
            assert!(simulated.migration_ns >= simulated.local_preemption_ns);
        }
    }

    #[test]
    fn zero_working_set_costs_nothing() {
        let est = model().analytic(WorkingSet::from_bytes(0), WorkingSet::from_bytes(1024));
        assert_eq!(est.local_preemption_ns, 0);
        assert_eq!(est.migration_ns, 0);
        assert_eq!(est.migration_penalty_ratio(), 1.0);
    }

    #[test]
    fn penalty_ratio_handles_zero_local() {
        let est = CrpdEstimate {
            local_preemption_ns: 0,
            migration_ns: 100,
        };
        assert!(est.migration_penalty_ratio().is_infinite());
    }
}
