//! Task working sets: the memory footprint a task touches each job.

use serde::{Deserialize, Serialize};

/// A task's working set: a contiguous region of `bytes` starting at `base`.
///
/// The cache-related overhead of a preemption or migration is driven by the
/// size of the working set (paper §3): after being preempted, a task must
/// re-fetch whatever part of its working set was evicted from the caches it
/// can still reach.
///
/// # Example
///
/// ```
/// use spms_cache::WorkingSet;
///
/// let ws = WorkingSet::from_bytes(4 * 1024).with_base(0x10_0000);
/// assert_eq!(ws.bytes(), 4 * 1024);
/// assert_eq!(ws.lines(64), 64);
/// assert_eq!(ws.line_addresses(64).count(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WorkingSet {
    base: u64,
    bytes: u64,
}

impl WorkingSet {
    /// A working set of the given size starting at address zero.
    pub fn from_bytes(bytes: u64) -> Self {
        WorkingSet { base: 0, bytes }
    }

    /// Moves the working set to start at `base` (used to give each task a
    /// disjoint address range).
    pub fn with_base(mut self, base: u64) -> Self {
        self.base = base;
        self
    }

    /// Base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of cache lines the working set spans for a given line size.
    pub fn lines(&self, line_bytes: u64) -> u64 {
        self.bytes.div_ceil(line_bytes)
    }

    /// Iterates over the address of the first byte of each cache line in the
    /// working set.
    pub fn line_addresses(&self, line_bytes: u64) -> impl Iterator<Item = u64> + '_ {
        let lines = self.lines(line_bytes);
        let base = self.base;
        (0..lines).map(move |i| base + i * line_bytes)
    }

    /// Whether the working set is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

impl Default for WorkingSet {
    fn default() -> Self {
        // 64 KiB is a reasonable default footprint for an embedded control task.
        WorkingSet::from_bytes(64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_up() {
        assert_eq!(WorkingSet::from_bytes(0).lines(64), 0);
        assert_eq!(WorkingSet::from_bytes(1).lines(64), 1);
        assert_eq!(WorkingSet::from_bytes(64).lines(64), 1);
        assert_eq!(WorkingSet::from_bytes(65).lines(64), 2);
    }

    #[test]
    fn line_addresses_are_contiguous_from_base() {
        let ws = WorkingSet::from_bytes(256).with_base(1024);
        let addrs: Vec<u64> = ws.line_addresses(64).collect();
        assert_eq!(addrs, vec![1024, 1088, 1152, 1216]);
    }

    #[test]
    fn empty_and_default() {
        assert!(WorkingSet::from_bytes(0).is_empty());
        assert!(!WorkingSet::default().is_empty());
        assert_eq!(WorkingSet::default().bytes(), 64 * 1024);
    }
}
