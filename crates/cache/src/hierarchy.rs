//! The multi-core cache hierarchy: private L1/L2 per core, shared L3.

use std::fmt;

use crate::{Cache, CacheHierarchyConfig};

/// Which level served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the core's private L1.
    L1,
    /// Served by the core's private L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Served by main memory.
    Memory,
}

/// Aggregate access statistics of a [`CacheHierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HierarchyStats {
    /// Accesses served by a private L1.
    pub l1_hits: u64,
    /// Accesses served by a private L2.
    pub l2_hits: u64,
    /// Accesses served by the shared L3.
    pub l3_hits: u64,
    /// Accesses served by main memory.
    pub memory_accesses: u64,
    /// Total latency accumulated over all accesses, in nanoseconds.
    pub total_latency_ns: u64,
}

impl HierarchyStats {
    /// Total number of accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits + self.memory_accesses
    }
}

/// A simulated multi-core cache hierarchy with inclusive-by-construction
/// private L1/L2 caches per core and one shared L3.
///
/// The model is deliberately simple — demand accesses only, LRU everywhere,
/// no coherence traffic — because the paper's cache argument only depends on
/// *where a task's lines survive after it is preempted or migrated*, not on
/// protocol details.
///
/// # Example
///
/// ```
/// use spms_cache::{CacheHierarchy, CacheHierarchyConfig, HitLevel};
///
/// let mut h = CacheHierarchy::new(CacheHierarchyConfig::tiny_for_tests());
/// let (level, _latency) = h.access(0, 0x1000);
/// assert_eq!(level, HitLevel::Memory);       // cold miss
/// let (level, _latency) = h.access(0, 0x1000);
/// assert_eq!(level, HitLevel::L1);           // now resident
/// ```
#[derive(Clone)]
pub struct CacheHierarchy {
    config: CacheHierarchyConfig,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    stats: HierarchyStats,
}

impl CacheHierarchy {
    /// Creates a cold hierarchy.
    pub fn new(config: CacheHierarchyConfig) -> Self {
        let l1 = (0..config.cores).map(|_| Cache::new(config.l1)).collect();
        let l2 = (0..config.cores).map(|_| Cache::new(config.l2)).collect();
        let l3 = Cache::new(config.l3);
        CacheHierarchy {
            config,
            l1,
            l2,
            l3,
            stats: HierarchyStats::default(),
        }
    }

    /// The configuration used to build the hierarchy.
    pub fn config(&self) -> &CacheHierarchyConfig {
        &self.config
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.config.cores
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> HierarchyStats {
        self.stats
    }

    /// Resets the statistics (contents stay warm).
    pub fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    /// Flushes every cache level.
    pub fn flush(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        for c in &mut self.l2 {
            c.flush();
        }
        self.l3.flush();
    }

    /// Performs one demand access from `core` to byte address `addr`.
    ///
    /// Returns the level that served the access and the latency charged for
    /// it in nanoseconds. On a miss the line is installed in every level on
    /// the core's path (L3, L2, L1).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64) -> (HitLevel, u64) {
        assert!(core < self.config.cores, "core {core} out of range");
        let (level, latency) = if self.l1[core].access(addr).is_hit() {
            (HitLevel::L1, self.config.l1.hit_latency_ns)
        } else if self.l2[core].access(addr).is_hit() {
            (HitLevel::L2, self.config.l2.hit_latency_ns)
        } else if self.l3.access(addr).is_hit() {
            (HitLevel::L3, self.config.l3.hit_latency_ns)
        } else {
            (HitLevel::Memory, self.config.memory_latency_ns)
        };
        match level {
            HitLevel::L1 => self.stats.l1_hits += 1,
            HitLevel::L2 => self.stats.l2_hits += 1,
            HitLevel::L3 => self.stats.l3_hits += 1,
            HitLevel::Memory => self.stats.memory_accesses += 1,
        }
        self.stats.total_latency_ns += latency;
        (level, latency)
    }

    /// Touches every line of a working set from `core`, returning the total
    /// latency in nanoseconds. This is the primitive used to model "the task
    /// reloads its working space after resuming".
    pub fn touch_working_set(&mut self, core: usize, ws: &crate::WorkingSet) -> u64 {
        let line = self.config.l1.line_bytes;
        ws.line_addresses(line)
            .map(|addr| self.access(core, addr).1)
            .sum()
    }
}

impl fmt::Debug for CacheHierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CacheHierarchy")
            .field("cores", &self.config.cores)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkingSet;

    #[test]
    fn cold_then_warm_access() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig::tiny_for_tests());
        assert_eq!(h.access(0, 0).0, HitLevel::Memory);
        assert_eq!(h.access(0, 0).0, HitLevel::L1);
        assert_eq!(h.stats().accesses(), 2);
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().memory_accesses, 1);
    }

    #[test]
    fn other_core_finds_line_in_shared_l3() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig::tiny_for_tests());
        h.access(0, 0x40);
        // Core 1's private caches are cold, but the shared L3 holds the line.
        assert_eq!(h.access(1, 0x40).0, HitLevel::L3);
    }

    #[test]
    fn latency_matches_level() {
        let cfg = CacheHierarchyConfig::tiny_for_tests();
        let mut h = CacheHierarchy::new(cfg.clone());
        assert_eq!(h.access(0, 0).1, cfg.memory_latency_ns);
        assert_eq!(h.access(0, 0).1, cfg.l1.hit_latency_ns);
    }

    #[test]
    fn eviction_from_l1_falls_back_to_l2() {
        let cfg = CacheHierarchyConfig::tiny_for_tests(); // L1 = 1 KiB = 16 lines
        let mut h = CacheHierarchy::new(cfg);
        let ws = WorkingSet::from_bytes(2 * 1024); // 32 lines > L1, < L2
        h.touch_working_set(0, &ws);
        h.reset_stats();
        h.touch_working_set(0, &ws);
        let stats = h.stats();
        assert!(
            stats.memory_accesses == 0,
            "second pass should stay on chip"
        );
        assert!(stats.l2_hits > 0, "some lines must have been evicted to L2");
    }

    #[test]
    fn flush_makes_everything_cold_again() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig::tiny_for_tests());
        h.access(0, 0);
        h.flush();
        assert_eq!(h.access(0, 0).0, HitLevel::Memory);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_core_panics() {
        let mut h = CacheHierarchy::new(CacheHierarchyConfig::tiny_for_tests());
        h.access(99, 0);
    }

    #[test]
    fn touch_working_set_returns_total_latency() {
        let cfg = CacheHierarchyConfig::tiny_for_tests();
        let mut h = CacheHierarchy::new(cfg.clone());
        let ws = WorkingSet::from_bytes(4 * 64);
        let cold = h.touch_working_set(0, &ws);
        assert_eq!(cold, 4 * cfg.memory_latency_ns);
        let warm = h.touch_working_set(0, &ws);
        assert_eq!(warm, 4 * cfg.l1.hit_latency_ns);
    }
}
