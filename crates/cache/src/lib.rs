//! # spms-cache
//!
//! Multi-level cache hierarchy simulator and cache-related preemption /
//! migration delay (CRPD) model.
//!
//! The paper (§3, "cache" overhead) argues that on a chip with private L1/L2
//! caches and a *shared* L3 — the Intel Core-i7 used in the measurements —
//! the cache-related overhead of a task **migration** is of the same order of
//! magnitude as that of a **local context switch**, because in both cases the
//! preempted task's working space is evicted from the private caches and
//! survives in the shared L3; only tasks with working sets much smaller than
//! the private cache benefit from staying on the same core.
//!
//! This crate provides the substrate to reproduce that argument without the
//! physical machine:
//!
//! * [`Cache`] — a single set-associative LRU cache,
//! * [`CacheHierarchy`] — per-core private L1/L2 plus a shared L3 in front of
//!   memory, with per-level hit latencies,
//! * [`WorkingSet`] — a task's memory footprint,
//! * [`CrpdModel`] — both an *analytic* and a *simulated* estimate of the
//!   reload cost after a local preemption and after a cross-core migration.
//!
//! # Example
//!
//! ```
//! use spms_cache::{CacheHierarchyConfig, CrpdModel, WorkingSet};
//!
//! let model = CrpdModel::new(CacheHierarchyConfig::core_i7_4core());
//! let small = model.analytic(WorkingSet::from_bytes(8 * 1024), WorkingSet::from_bytes(8 * 1024));
//! // A tiny working set survives in the private cache after a local
//! // preemption, so migrating is much more expensive than staying local.
//! assert!(small.migration_ns > 4 * small.local_preemption_ns.max(1));
//!
//! let large = model.analytic(WorkingSet::from_bytes(2 * 1024 * 1024), WorkingSet::from_bytes(2 * 1024 * 1024));
//! // A large working set is evicted from the private levels either way:
//! // migration and local preemption cost the same order of magnitude.
//! assert!(large.migration_ns < 3 * large.local_preemption_ns);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod crpd;
mod hierarchy;
mod working_set;

pub use cache::{AccessResult, Cache};
pub use config::{CacheHierarchyConfig, CacheLevelConfig};
pub use crpd::{CrpdEstimate, CrpdModel};
pub use hierarchy::{CacheHierarchy, HierarchyStats, HitLevel};
pub use working_set::WorkingSet;
