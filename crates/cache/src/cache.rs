//! A single set-associative cache with LRU replacement.

use std::fmt;

use crate::CacheLevelConfig;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was already resident.
    Hit,
    /// The line was not resident and has been installed (possibly evicting
    /// the least-recently-used line of its set).
    Miss {
        /// The line address that was evicted to make room, if the set was full.
        evicted: Option<u64>,
    },
}

impl AccessResult {
    /// Whether the access hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessResult::Hit)
    }
}

/// A set-associative, LRU-replacement cache level.
///
/// Addresses are byte addresses; the cache operates on line granularity
/// internally. The structure only tracks residency (tags), not data, which is
/// all the CRPD model needs.
///
/// # Example
///
/// ```
/// use spms_cache::{Cache, CacheLevelConfig};
///
/// let mut l1 = Cache::new(CacheLevelConfig {
///     size_bytes: 1024,
///     associativity: 2,
///     line_bytes: 64,
///     hit_latency_ns: 1,
/// });
/// assert!(!l1.access(0x40).is_hit());
/// assert!(l1.access(0x40).is_hit());
/// ```
#[derive(Clone)]
pub struct Cache {
    config: CacheLevelConfig,
    /// One vector of resident line addresses per set, most recently used last.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheLevelConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.associativity as usize); config.sets() as usize];
        Cache {
            config,
            sets,
            hits: 0,
            misses: 0,
        }
    }

    /// The geometry this cache was created with.
    pub fn config(&self) -> &CacheLevelConfig {
        &self.config
    }

    /// Number of lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Total hits since creation or the last [`Cache::reset_stats`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses since creation or the last [`Cache::reset_stats`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Clears the hit/miss counters (but not the contents).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Flushes all contents.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Whether the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Accesses the byte address `addr`, updating LRU state and returning
    /// whether it hit and what was evicted on a miss.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        let line = self.line_of(addr);
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            // Move to MRU position.
            let l = set.remove(pos);
            set.push(l);
            self.hits += 1;
            return AccessResult::Hit;
        }
        self.misses += 1;
        let evicted = if set.len() == self.config.associativity as usize {
            Some(set.remove(0))
        } else {
            None
        };
        set.push(line);
        AccessResult::Miss { evicted }
    }

    /// Installs a line without counting it as a demand access (used when a
    /// lower level forwards an eviction upward is *not* modelled; this is for
    /// warm-up in tests).
    pub fn install(&mut self, addr: u64) {
        let _ = self.access(addr);
        self.hits = self.hits.saturating_sub(0);
    }

    /// Invalidates the line containing `addr` if resident, returning whether
    /// it was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set_idx = self.set_of(line);
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr / self.config.line_bytes
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.sets.len() as u64) as usize
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("size_bytes", &self.config.size_bytes)
            .field("resident_lines", &self.resident_lines())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheLevelConfig {
            size_bytes: 512,
            associativity: 2,
            line_bytes: 64,
            hit_latency_ns: 1,
        })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert!(!c.access(0).is_hit());
        assert!(c.access(0).is_hit());
        assert!(c.access(63).is_hit(), "same line as address 0");
        assert!(!c.access(64).is_hit(), "next line");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small(); // 4 sets x 2 ways; lines mapping to set 0: 0, 4, 8, ...
        let line = |i: u64| i * 64;
        assert!(!c.access(line(0)).is_hit());
        assert!(!c.access(line(4)).is_hit());
        // Touch line 0 so line 4 becomes LRU.
        assert!(c.access(line(0)).is_hit());
        // Installing line 8 evicts line 4 (the LRU way).
        match c.access(line(8)) {
            AccessResult::Miss { evicted: Some(e) } => assert_eq!(e, 4),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.contains(line(0)));
        assert!(!c.contains(line(4)));
    }

    #[test]
    fn capacity_matches_geometry() {
        let mut c = small();
        for i in 0..8u64 {
            c.access(i * 64);
        }
        assert_eq!(c.resident_lines(), 8);
        // Ninth distinct line forces an eviction somewhere.
        c.access(8 * 64);
        assert_eq!(c.resident_lines(), 8);
    }

    #[test]
    fn flush_and_invalidate() {
        let mut c = small();
        c.access(0);
        c.access(64);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(0));
        assert!(!c.contains(0));
        c.flush();
        assert_eq!(c.resident_lines(), 0);
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let mut c = small();
        c.access(0);
        c.access(0);
        c.reset_stats();
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.contains(0));
    }

    #[test]
    fn debug_output() {
        let c = small();
        assert!(format!("{c:?}").contains("Cache"));
    }
}
