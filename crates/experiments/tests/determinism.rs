//! Golden-snapshot guard for experiment output.
//!
//! The task-generation golden in `crates/task/tests/determinism.rs` pins the
//! RNG stream; this one pins everything layered on top of it — seed
//! derivation in the sweep runner, partitioning, acceptance analysis and
//! result assembly. If any of those intentionally changes, regenerate the
//! snapshot as described in the failure message; if the change was not
//! intentional, the experiment results of every downstream consumer just
//! silently shifted.

use spms_experiments::AcceptanceRatioExperiment;

fn pinned_experiment() -> AcceptanceRatioExperiment {
    AcceptanceRatioExperiment::new()
        .tasks_per_set(6)
        .sets_per_point(5)
        .utilization_points(vec![0.5, 0.9])
        .seed(0xDEAD_BEEF)
}

/// The exact bytes a fixed acceptance sweep produces, across runs, processes
/// and thread counts. To regenerate after an intentional change to the
/// generator, the seed derivation or the analysis:
/// `cargo run --release --bin spms -- acceptance --seed 3735928559 \
///  --sets-per-point 5 --tasks-per-set 6 --points 0.5,0.9 --format json`
/// and paste the `results` object into `determinism_golden.json`.
#[test]
fn acceptance_sweep_matches_the_golden_snapshot() {
    let golden = include_str!("determinism_golden.json").trim();
    for threads in [1, 4] {
        let actual = serde_json::to_string(&pinned_experiment().threads(threads).run()).unwrap();
        assert_eq!(
            actual, golden,
            "acceptance sweep (threads={threads}) drifted from the pinned golden output;\n\
             if this change is intentional, regenerate crates/experiments/tests/determinism_golden.json\n\
             (see the doc comment on this test)"
        );
    }
}
