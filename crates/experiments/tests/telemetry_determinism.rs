//! Property-based contracts of the telemetry layer (ISSUE 8):
//!
//! * the **deterministic section** (`spms_*` outcome plus `spms_mech_*`
//!   mechanism metrics) of a soak run is byte-identical across
//!   `--threads {1,2}` on the same trace grid;
//! * the **outcome section** (`spms_*` only) is additionally byte-identical
//!   across shard counts whenever the decision streams agree — and on a
//!   pinned gentle-load grid they do agree, unconditionally;
//! * timing-stripped snapshots **round-trip** both exposition formats
//!   (Prometheus text and JSON) without loss.
//!
//! The vendored proptest runner is deterministically seeded, so these
//! cases reproduce identically on every run.

use proptest::prelude::*;
use spms_experiments::{NullProgress, SoakExperiment, SoakRun};
use spms_telemetry::{Snapshot, SnapshotFilter};

/// A small soak grid exercising the full service path (sharding,
/// rebalancing, replay) in a few hundred milliseconds.
fn soak(seed: u64, utilization: f64, events: usize) -> SoakExperiment {
    SoakExperiment::new()
        .cores(4)
        .events_per_trace(events)
        .traces_per_point(2)
        .target_utilization(utilization)
        .seed(seed)
}

fn run(experiment: &SoakExperiment) -> SoakRun {
    experiment.run_full_with_progress(&NullProgress)
}

/// The deterministic section rendered as Prometheus text — the byte string
/// the invariants below compare.
fn deterministic_text(run: &SoakRun) -> String {
    run.metrics
        .snapshot(SnapshotFilter::Deterministic)
        .render_prometheus()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Worker threads only change who decides a grid cell, never what the
    /// merged registries contain: the deterministic section is
    /// byte-identical for `--threads 1` and `--threads 2`, per point and
    /// run-wide.
    #[test]
    fn deterministic_section_is_thread_invariant(
        seed in 0u64..1_000,
        utilization in 0.35f64..0.75,
        events in 80usize..240,
    ) {
        let serial = run(&soak(seed, utilization, events).threads(1));
        let parallel = run(&soak(seed, utilization, events).threads(2));
        prop_assert_eq!(deterministic_text(&serial), deterministic_text(&parallel));
        prop_assert_eq!(serial.point_metrics.len(), parallel.point_metrics.len());
        for (a, b) in serial.point_metrics.iter().zip(&parallel.point_metrics) {
            prop_assert_eq!(
                a.snapshot(SnapshotFilter::Deterministic).render_prometheus(),
                b.snapshot(SnapshotFilter::Deterministic).render_prometheus()
            );
        }
    }

    /// Whenever two shard counts produce the same decision stream (their
    /// digests agree), their outcome sections are byte-identical too: the
    /// `spms_*` metrics are derived from final decisions alone, never from
    /// shard layout.
    #[test]
    fn outcome_section_is_shard_invariant_when_decisions_agree(
        seed in 0u64..1_000,
        utilization in 0.3f64..0.6,
    ) {
        let run = run(&soak(seed, utilization, 160).shard_counts(vec![1, 2]));
        let points = run.results.points();
        prop_assert_eq!(points.len(), 2);
        if points[0].decisions_digest == points[1].decisions_digest {
            prop_assert_eq!(
                run.point_metrics[0].snapshot(SnapshotFilter::ShardInvariant).render_prometheus(),
                run.point_metrics[1].snapshot(SnapshotFilter::ShardInvariant).render_prometheus()
            );
        }
    }

    /// A timing-stripped snapshot survives `render_prometheus` →
    /// `from_prometheus` → `render_prometheus` byte-exactly, and the JSON
    /// round trip reproduces the snapshot value-for-value (buckets
    /// included — JSON is the lossless format).
    #[test]
    fn stripped_snapshots_round_trip_both_formats(
        seed in 0u64..1_000,
        utilization in 0.35f64..0.75,
    ) {
        let run = run(&soak(seed, utilization, 120));
        for filter in [SnapshotFilter::Deterministic, SnapshotFilter::ShardInvariant] {
            let snapshot = run.metrics.snapshot(filter);
            let text = snapshot.render_prometheus();
            let reparsed = Snapshot::from_prometheus(&text).expect("own output parses");
            prop_assert_eq!(&reparsed.render_prometheus(), &text);

            let json = serde_json::to_string(&snapshot).expect("snapshots serialize");
            let back: Snapshot = serde_json::from_str(&json).expect("snapshots deserialize");
            prop_assert_eq!(back, snapshot);
        }
    }
}

/// The unconditional pin: on this gentle-load grid the 1-shard and 2-shard
/// services decide identical streams, so the outcome sections must match
/// byte-for-byte — the same configuration CI's bench-smoke diff relies on.
#[test]
fn pinned_gentle_grid_is_shard_invariant_unconditionally() {
    let run = run(&soak(2011, 0.4, 300).shard_counts(vec![1, 2]));
    let points = run.results.points();
    assert_eq!(
        points[0].decisions_digest, points[1].decisions_digest,
        "the pinned grid no longer decides identical streams"
    );
    assert_eq!(
        run.point_metrics[0]
            .snapshot(SnapshotFilter::ShardInvariant)
            .render_prometheus(),
        run.point_metrics[1]
            .snapshot(SnapshotFilter::ShardInvariant)
            .render_prometheus()
    );
}

/// The full snapshot (timing included) also round-trips JSON losslessly —
/// histogram buckets and all — so `--metrics-format json` archives are
/// faithful.
#[test]
fn full_snapshot_round_trips_json_with_buckets() {
    let run = run(&soak(7, 0.5, 120));
    let snapshot = run.metrics.snapshot(SnapshotFilter::Full);
    let json = serde_json::to_string(&snapshot).expect("snapshots serialize");
    let back: Snapshot = serde_json::from_str(&json).expect("snapshots deserialize");
    assert_eq!(back, snapshot);
    assert!(
        snapshot.render_prometheus().contains("spms_timing_"),
        "the full snapshot should include the timing section"
    );
}
