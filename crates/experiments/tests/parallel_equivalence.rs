//! The `SweepRunner` contract, pinned for every experiment driver: under a
//! fixed seed, the serialized results of a parallel run are byte-identical
//! to a serial run — not merely approximately equal, but the same JSON.
//!
//! Seeds are derived purely from grid coordinates and per-point aggregation
//! happens on merged, ordered results, so nothing about worker scheduling
//! may leak into the output. A failure here means a refactor made results
//! depend on thread count.

use spms_experiments::{
    AcceptanceRatioExperiment, CacheCrossoverExperiment, CoreCountSweepExperiment,
    GlobalComparisonExperiment, OverheadSensitivityExperiment, RuntimeCostExperiment,
    SoakExperiment,
};
use spms_task::Time;

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("results serialize")
}

#[test]
fn acceptance_is_thread_count_invariant() {
    let base = AcceptanceRatioExperiment::new()
        .tasks_per_set(8)
        .sets_per_point(10)
        .utilization_points(vec![0.5, 0.8, 0.95])
        .seed(42);
    let serial = json(&base.clone().threads(1).run());
    for threads in [2, 4, 0] {
        assert_eq!(
            serial,
            json(&base.clone().threads(threads).run()),
            "threads={threads}"
        );
    }
}

#[test]
fn core_sweep_is_thread_count_invariant() {
    let base = CoreCountSweepExperiment::new()
        .core_counts(vec![2, 4])
        .sets_per_point(8)
        .seed(42);
    assert_eq!(
        json(&base.clone().threads(1).run()),
        json(&base.clone().threads(4).run())
    );
}

#[test]
fn global_comparison_is_thread_count_invariant() {
    let base = GlobalComparisonExperiment::new()
        .tasks_per_set(8)
        .sets_per_point(8)
        .utilization_points(vec![0.4, 0.9])
        .seed(42);
    assert_eq!(
        json(&base.clone().threads(1).run()),
        json(&base.clone().threads(4).run())
    );
}

#[test]
fn runtime_costs_are_thread_count_invariant() {
    // The runtime experiment accumulates floats (overhead fractions), so this
    // additionally pins that the accumulation order is the merged set order,
    // not worker completion order.
    let base = RuntimeCostExperiment::new()
        .tasks_per_set(8)
        .sets_per_point(4)
        .utilization_points(vec![0.6, 0.85])
        .simulation_window(Time::from_millis(300))
        .seed(42);
    assert_eq!(
        json(&base.clone().threads(1).run()),
        json(&base.clone().threads(4).run())
    );
}

#[test]
fn sensitivity_is_thread_count_invariant() {
    let base = OverheadSensitivityExperiment::new()
        .scales(vec![0.0, 1.0, 20.0])
        .tasks_per_set(8)
        .sets_per_scale(8)
        .seed(42);
    assert_eq!(
        json(&base.clone().threads(1).run()),
        json(&base.clone().threads(4).run())
    );
}

#[test]
fn cache_crossover_is_thread_count_invariant() {
    let base = CacheCrossoverExperiment::new()
        .hierarchy(spms_cache::CacheHierarchyConfig::tiny_for_tests())
        .working_set_sizes(vec![512, 2 * 1024, 16 * 1024]);
    assert_eq!(
        json(&base.clone().threads(1).run()),
        json(&base.clone().threads(3).run())
    );
}

#[test]
fn soak_deterministic_half_is_thread_count_invariant() {
    // The soak results carry a wall-clock `timing` array by design, so the
    // invariance contract covers the deterministic half: per-shard-count
    // points (with their event and decision digests) and the stream
    // invariant / replay-miss verdicts.
    let base = SoakExperiment::new()
        .cores(4)
        .shard_counts(vec![1, 2])
        .events_per_trace(150)
        .traces_per_point(3)
        .replay_sample_every(40)
        .seed(42);
    let serial = base.clone().threads(1).run();
    for threads in [2, 4, 0] {
        let parallel = base.clone().threads(threads).run();
        assert_eq!(
            json(&serial.points().to_vec()),
            json(&parallel.points().to_vec()),
            "threads={threads}"
        );
        assert_eq!(
            serial.event_stream_shard_invariant,
            parallel.event_stream_shard_invariant
        );
        assert_eq!(serial.replay_misses, parallel.replay_misses);
    }
}
