//! Preemption anatomy (E3): the timeline of the paper's Figure 1.
//!
//! Figure 1 walks through one preemption: a low-priority task τ2 is running;
//! a high-priority task τ1 is released at time *b*; the scheduler pays the
//! release overhead (`rls`), the scheduling decision (`sch`) and the first
//! context-switch half (`cnt1`); τ1 runs, finishes at *f*, and the scheduler
//! pays `sch` and `cnt2` again before τ2 resumes at *i*, at which point τ2
//! additionally re-loads its evicted working set (`cache`).
//!
//! This experiment reconstructs exactly that scenario in the simulator with
//! tracing enabled, and reports both the annotated timeline and the total
//! overhead paid around the preemption.

use serde::{Deserialize, Serialize};
use spms_analysis::OverheadModel;
use spms_core::CoreId;
use spms_sim::{Chain, PieceSpec, SimulationConfig, Simulator, TraceEventKind};
use spms_task::{Priority, TaskId, Time};

use crate::runner::SweepRunner;

/// The reconstructed Figure 1 data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptionAnatomyReport {
    /// The rendered, human-readable timeline.
    pub timeline: String,
    /// Number of preemptions observed (expected: one per period of τ1 that
    /// lands inside τ2's execution).
    pub preemptions: u64,
    /// Total scheduler overhead charged across the run.
    pub total_overhead: Time,
    /// Overhead charged around a single release-preempt-resume episode
    /// (release + two dispatches), the quantity Figure 1 decomposes.
    pub per_preemption_overhead: Time,
    /// The response time of the first job of the preempted task τ2.
    pub tau2_first_response: Option<Time>,
}

impl PreemptionAnatomyReport {
    /// Renders the annotated timeline plus a summary table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("```\n");
        out.push_str(&self.timeline);
        if !self.timeline.ends_with('\n') {
            out.push('\n');
        }
        out.push_str("```\n\n| metric | value |\n|---|---|\n");
        out.push_str(&format!("| preemptions | {} |\n", self.preemptions));
        out.push_str(&format!("| total overhead | {} |\n", self.total_overhead));
        out.push_str(&format!(
            "| per-preemption overhead | {} |\n",
            self.per_preemption_overhead
        ));
        if let Some(r) = self.tau2_first_response {
            out.push_str(&format!("| tau2 first response | {r} |\n"));
        }
        out
    }

    /// Renders the summary metrics as `metric,value` CSV, units spelled out
    /// per row (the timeline is a multi-line rendering and is omitted; use
    /// the JSON format for it).
    pub fn render_csv(&self) -> String {
        let mut out = String::from("metric,value\n");
        out.push_str(&format!("preemptions,{}\n", self.preemptions));
        out.push_str(&format!(
            "total_overhead_ns,{}\n",
            self.total_overhead.as_nanos()
        ));
        out.push_str(&format!(
            "per_preemption_overhead_ns,{}\n",
            self.per_preemption_overhead.as_nanos()
        ));
        out.push_str(&format!(
            "tau2_first_response_ns,{}\n",
            self.tau2_first_response
                .map(|t| t.as_nanos().to_string())
                .unwrap_or_default()
        ));
        out
    }
}

/// The experiment driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptionAnatomy {
    /// Execution time of the high-priority task τ1.
    pub tau1_wcet: Time,
    /// Period of τ1.
    pub tau1_period: Time,
    /// Execution time of the low-priority task τ2.
    pub tau2_wcet: Time,
    /// Period of τ2.
    pub tau2_period: Time,
    /// Overheads injected by the simulator.
    pub overhead: OverheadModel,
    /// How long to simulate.
    pub duration: Time,
}

impl Default for PreemptionAnatomy {
    fn default() -> Self {
        PreemptionAnatomy {
            tau1_wcet: Time::from_millis(1),
            tau1_period: Time::from_millis(5),
            tau2_wcet: Time::from_millis(6),
            tau2_period: Time::from_millis(20),
            overhead: OverheadModel::paper_n4(),
            duration: Time::from_millis(20),
        }
    }
}

impl PreemptionAnatomy {
    /// The default two-task scenario (τ1 preempts τ2 during every job of τ2)
    /// with the paper's measured overheads.
    pub fn new() -> Self {
        PreemptionAnatomy::default()
    }

    /// Sets the injected overhead model.
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Runs the scenario and reconstructs the Figure 1 data.
    ///
    /// The scenario is a single deterministic simulation, so the sweep grid
    /// is degenerate (1 × 1 cell); it still goes through [`SweepRunner`] so
    /// every experiment shares one execution path.
    pub fn run(&self) -> PreemptionAnatomyReport {
        SweepRunner::new()
            .run_grid(0, 1, 1, |_| Some(self.evaluate()))
            .into_iter()
            .flatten()
            .next()
            .expect("the single grid cell always produces a report")
    }

    fn evaluate(&self) -> PreemptionAnatomyReport {
        let chains = vec![
            Chain {
                parent: TaskId(1),
                period: self.tau1_period,
                deadline: self.tau1_period,
                pieces: vec![PieceSpec {
                    core: CoreId(0),
                    budget: self.tau1_wcet,
                    priority: Priority::new(0),
                    is_body: false,
                }],
            },
            Chain {
                parent: TaskId(2),
                period: self.tau2_period,
                deadline: self.tau2_period,
                pieces: vec![PieceSpec {
                    core: CoreId(0),
                    budget: self.tau2_wcet,
                    priority: Priority::new(1),
                    is_body: false,
                }],
            },
        ];
        let report = Simulator::from_chains(
            chains,
            1,
            SimulationConfig::new(self.duration)
                .with_overhead(self.overhead)
                .with_trace(),
        )
        .run();

        let tau2_first_response = report
            .trace
            .of_task(TaskId(2))
            .find(|e| e.kind == TraceEventKind::Complete)
            .map(|e| e.time);

        // The overhead decomposed by Figure 1: the release path of τ1, the
        // dispatch of τ1 (sch + cnt1), and the re-dispatch of τ2 (sch + cnt2 +
        // cache reload).
        let o = &self.overhead;
        let per_preemption_overhead = (o.release + o.sleep_queue_delete + o.ready_queue_add_local)
            + (o.schedule + o.context_switch + o.ready_queue_delete)
            + (o.schedule + o.context_switch + o.ready_queue_delete + o.cache_reload_local)
            + o.ready_queue_add_local;

        PreemptionAnatomyReport {
            timeline: report.trace.render_timeline(),
            preemptions: report.preemptions,
            total_overhead: report.overhead_time,
            per_preemption_overhead,
            tau2_first_response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_figure_1_scenario_preempts_tau2() {
        let report = PreemptionAnatomy::new().run();
        assert!(report.preemptions >= 1);
        assert!(report.timeline.contains("preempt"));
        assert!(report.timeline.contains("overhead"));
        assert!(report.total_overhead > Time::ZERO);
    }

    #[test]
    fn response_time_includes_the_overhead() {
        let without = PreemptionAnatomy::new()
            .overhead(OverheadModel::zero())
            .run();
        let with = PreemptionAnatomy::new().run();
        let r_without = without.tau2_first_response.expect("completes");
        let r_with = with.tau2_first_response.expect("completes");
        assert!(r_with > r_without);
        // The gap is a small number of scheduler invocations, i.e. tens of
        // microseconds — not milliseconds.
        assert!(r_with - r_without < Time::from_millis(1));
    }

    #[test]
    fn per_preemption_overhead_matches_the_component_sum() {
        let anatomy = PreemptionAnatomy::new();
        let report = anatomy.run();
        let o = OverheadModel::paper_n4();
        assert!(report.per_preemption_overhead > o.cache_reload_local);
        assert!(report.per_preemption_overhead < Time::from_millis(1));
    }

    #[test]
    fn zero_overhead_scenario_has_zero_total_overhead() {
        let report = PreemptionAnatomy::new()
            .overhead(OverheadModel::zero())
            .run();
        assert_eq!(report.total_overhead, Time::ZERO);
        assert!(report.preemptions >= 1);
    }
}
