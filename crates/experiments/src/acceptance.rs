//! The acceptance-ratio experiment (paper §4, experiment E5).
//!
//! For every point of a normalized-utilization sweep, generate many random
//! task sets with UUniFast-discard, run each partitioning algorithm on them
//! and record the fraction of sets each algorithm accepts ("acceptance
//! ratio"). The paper's claim is that FP-TS keeps a clearly higher acceptance
//! ratio than FFD and WFD even after the measured overheads are folded in.

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_task::{PeriodDistribution, TaskSetGenerator, Time, UtilizationDistribution};

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::SweepRunner;
use crate::{same_point, AlgorithmKind};

/// One point of the sweep: the acceptance ratio of every algorithm at one
/// normalized utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceptancePoint {
    /// Normalized utilization (total utilization divided by core count).
    pub normalized_utilization: f64,
    /// `(algorithm, accepted fraction in [0, 1])` pairs, in lineup order.
    pub ratios: Vec<(AlgorithmKind, f64)>,
}

impl AcceptancePoint {
    /// The acceptance ratio of one algorithm at this point.
    pub fn ratio(&self, algorithm: AlgorithmKind) -> Option<f64> {
        self.ratios
            .iter()
            .find(|(a, _)| *a == algorithm)
            .map(|(_, r)| *r)
    }
}

/// Results of an acceptance-ratio sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AcceptanceRatioResults {
    points: Vec<AcceptancePoint>,
    algorithms: Vec<AlgorithmKind>,
}

impl AcceptanceRatioResults {
    /// All sweep points, in increasing utilization order.
    pub fn points(&self) -> &[AcceptancePoint] {
        &self.points
    }

    /// The algorithms that were compared.
    pub fn algorithms(&self) -> &[AlgorithmKind] {
        &self.algorithms
    }

    /// The acceptance ratio of `algorithm` at the sweep point matching
    /// `normalized_utilization` (within a 1e-9 tolerance, so points computed
    /// as `i as f64 * 0.05` still match the literal `0.7`). Returns `None`
    /// when no sweep point lies within the tolerance.
    pub fn ratio_at(&self, normalized_utilization: f64, algorithm: AlgorithmKind) -> Option<f64> {
        self.points
            .iter()
            .find(|p| same_point(p.normalized_utilization, normalized_utilization))
            .and_then(|p| p.ratio(algorithm))
    }

    /// Area under the acceptance-ratio curve (the usual scalar summary of
    /// these plots: higher is better).
    pub fn weighted_acceptance(&self, algorithm: AlgorithmKind) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.points.iter().filter_map(|p| p.ratio(algorithm)).sum();
        sum / self.points.len() as f64
    }

    /// Renders a markdown table: one row per utilization point, one column
    /// per algorithm.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("| U / m |");
        for a in &self.algorithms {
            out.push_str(&format!(" {a} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.algorithms {
            out.push_str("---|");
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("| {:.2} |", p.normalized_utilization));
            for a in &self.algorithms {
                match p.ratio(*a) {
                    Some(r) => out.push_str(&format!(" {:.2} |", r)),
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a CSV with a header row, suitable for plotting.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("normalized_utilization");
        for a in &self.algorithms {
            out.push(',');
            out.push_str(a.name());
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:.4}", p.normalized_utilization));
            for a in &self.algorithms {
                out.push_str(&format!(",{:.4}", p.ratio(*a).unwrap_or(f64::NAN)));
            }
            out.push('\n');
        }
        out
    }
}

/// The acceptance-ratio experiment driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceptanceRatioExperiment {
    cores: usize,
    tasks_per_set: usize,
    utilization_points: Vec<f64>,
    sets_per_point: usize,
    algorithms: Vec<AlgorithmKind>,
    test: UniprocessorTest,
    overhead: OverheadModel,
    period_min: Time,
    period_max: Time,
    seed: u64,
    threads: usize,
}

impl Default for AcceptanceRatioExperiment {
    fn default() -> Self {
        AcceptanceRatioExperiment {
            cores: 4,
            tasks_per_set: 16,
            utilization_points: (10..=20).map(|i| i as f64 * 0.05).collect(),
            sets_per_point: 100,
            algorithms: AlgorithmKind::paper_lineup(),
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
            period_min: Time::from_millis(10),
            period_max: Time::from_secs(1),
            seed: 0,
            threads: 1,
        }
    }
}

impl AcceptanceRatioExperiment {
    /// A driver with the paper's defaults: 4 cores, 16 tasks per set,
    /// normalized utilizations 0.50 … 1.00, 100 sets per point, FP-TS vs FFD
    /// vs WFD with exact RTA and no overhead.
    pub fn new() -> Self {
        AcceptanceRatioExperiment::default()
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the number of tasks per generated set.
    pub fn tasks_per_set(mut self, n: usize) -> Self {
        self.tasks_per_set = n;
        self
    }

    /// Sets the normalized-utilization sweep points (each is total
    /// utilization divided by core count).
    pub fn utilization_points(mut self, points: Vec<f64>) -> Self {
        self.utilization_points = points;
        self
    }

    /// Sets how many task sets are generated per sweep point.
    pub fn sets_per_point(mut self, sets: usize) -> Self {
        self.sets_per_point = sets;
        self
    }

    /// Sets the algorithms to compare.
    pub fn algorithms(mut self, algorithms: Vec<AlgorithmKind>) -> Self {
        self.algorithms = algorithms;
        self
    }

    /// Sets the per-core acceptance test used by every algorithm.
    pub fn test(mut self, test: UniprocessorTest) -> Self {
        self.test = test;
        self
    }

    /// Sets the overhead model folded into every algorithm's analysis.
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the RNG seed for task-set generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads the sweep fans out across
    /// (`0` = one per available core). Results are identical for every
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Number of grid cells one run evaluates (for progress re-basing by
    /// drivers that chain several sweeps).
    pub(crate) fn grid_cells(&self) -> usize {
        self.utilization_points.len() * self.sets_per_point
    }

    /// Runs the sweep.
    ///
    /// Task sets whose generation fails for a point (e.g. the utilization
    /// target is unreachable with the configured task count) are skipped;
    /// every algorithm sees exactly the same sets.
    pub fn run(&self) -> AcceptanceRatioResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> AcceptanceRatioResults {
        let partitioners: Vec<(AlgorithmKind, Box<dyn spms_core::Partitioner + Send + Sync>)> =
            self.algorithms
                .iter()
                .map(|a| (*a, a.build(self.test, self.overhead)))
                .collect();
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(
                self.seed,
                self.utilization_points.len(),
                self.sets_per_point,
                progress,
                |cell| {
                    let normalized = self.utilization_points[cell.point_idx];
                    let generator = TaskSetGenerator::new()
                        .task_count(self.tasks_per_set)
                        .total_utilization(normalized * self.cores as f64)
                        .utilization_distribution(UtilizationDistribution::UUniFastDiscard {
                            max_task_utilization: 1.0,
                        })
                        .period_distribution(PeriodDistribution::LogUniform {
                            min: self.period_min,
                            max: self.period_max,
                        })
                        .seed(cell.seed);
                    let tasks = generator.generate().ok()?;
                    Some(
                        partitioners
                            .iter()
                            .map(|(_, partitioner)| {
                                partitioner
                                    .partition(&tasks, self.cores)
                                    .expect("valid generated task set")
                                    .is_schedulable()
                            })
                            .collect::<Vec<bool>>(),
                    )
                },
            );
        let kinds: Vec<AlgorithmKind> = partitioners.iter().map(|(kind, _)| *kind).collect();
        let points = self
            .utilization_points
            .iter()
            .zip(grid)
            .map(|(&normalized, verdicts)| AcceptancePoint {
                normalized_utilization: normalized,
                ratios: crate::runner::acceptance_ratios(&kinds, &verdicts),
            })
            .collect();
        AcceptanceRatioResults {
            points,
            algorithms: self.algorithms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> AcceptanceRatioExperiment {
        AcceptanceRatioExperiment::new()
            .tasks_per_set(8)
            .sets_per_point(12)
            .utilization_points(vec![0.5, 0.8, 0.95])
            .seed(7)
    }

    #[test]
    fn ratios_are_probabilities_and_points_are_ordered() {
        let results = quick().run();
        assert_eq!(results.points().len(), 3);
        for p in results.points() {
            for (_, r) in &p.ratios {
                assert!((0.0..=1.0).contains(r));
            }
        }
    }

    #[test]
    fn low_utilization_is_always_accepted() {
        let results = quick().run();
        for algo in AlgorithmKind::paper_lineup() {
            assert_eq!(results.ratio_at(0.5, algo), Some(1.0), "{algo}");
        }
    }

    #[test]
    fn fpts_beats_the_partitioned_baselines_at_high_utilization() {
        let results = AcceptanceRatioExperiment::new()
            .tasks_per_set(12)
            .sets_per_point(20)
            .utilization_points(vec![0.92])
            .seed(11)
            .run();
        let fpts = results.ratio_at(0.92, AlgorithmKind::FpTs).unwrap();
        let ffd = results.ratio_at(0.92, AlgorithmKind::Ffd).unwrap();
        let wfd = results.ratio_at(0.92, AlgorithmKind::Wfd).unwrap();
        assert!(fpts >= ffd, "FP-TS {fpts} vs FFD {ffd}");
        assert!(fpts > wfd, "FP-TS {fpts} vs WFD {wfd}");
    }

    #[test]
    fn overhead_changes_acceptance_only_slightly() {
        let base = quick().run();
        let with_overhead = quick().overhead(OverheadModel::paper_n4()).run();
        for algo in AlgorithmKind::paper_lineup() {
            let a = base.weighted_acceptance(algo);
            let b = with_overhead.weighted_acceptance(algo);
            assert!(b <= a + 1e-9);
            assert!(a - b < 0.2, "{algo}: overhead cost {a} -> {b}");
        }
    }

    #[test]
    fn rendering_contains_every_algorithm_and_point() {
        let results = quick().run();
        let md = results.render_markdown();
        let csv = results.render_csv();
        for algo in AlgorithmKind::paper_lineup() {
            assert!(md.contains(algo.name()));
            assert!(csv.contains(algo.name()));
        }
        assert!(md.contains("0.95"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
    }

    #[test]
    fn runs_are_reproducible() {
        let a = quick().run();
        let b = quick().run();
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let serial = quick().run();
        let parallel = quick().threads(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn ratio_at_tolerates_float_noise_in_the_query() {
        // `14 * 0.05` and the literal `0.7` differ in the last bit — an exact
        // `==` lookup on computed grids silently returns the wrong point (or
        // nothing). The lookup must match within an epsilon instead.
        let grid: Vec<f64> = (10..=20).map(|i| i as f64 * 0.05).collect();
        // The trap this guards against: the computed grid point near 0.7 is
        // not bit-equal to the literal 0.7.
        assert!(!grid.contains(&0.7));
        let results = AcceptanceRatioExperiment::new()
            .tasks_per_set(8)
            .sets_per_point(3)
            .utilization_points(grid)
            .seed(7)
            .run();
        for algo in AlgorithmKind::paper_lineup() {
            assert!(results.ratio_at(0.7, algo).is_some(), "{algo} at 0.7");
            assert!(results.ratio_at(0.55, algo).is_some(), "{algo} at 0.55");
        }
    }

    #[test]
    fn ratio_at_rejects_points_outside_the_grid() {
        let results = quick().run();
        assert_eq!(results.ratio_at(0.72, AlgorithmKind::FpTs), None);
        assert_eq!(results.ratio_at(2.0, AlgorithmKind::FpTs), None);
    }
}
