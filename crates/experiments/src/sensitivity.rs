//! Overhead-sensitivity experiment (E6): how quickly does the acceptance
//! ratio of FP-TS degrade as the overhead magnitude grows?
//!
//! The paper concludes that the *measured* overheads are small enough that
//! their effect on schedulability "is very small". This experiment makes
//! that statement quantitative by scaling the measured overhead model by
//! ×0, ×1, ×5, ×20 (and anything else the caller asks for) and recording the
//! acceptance ratio at a fixed, high normalized utilization.

use serde::{Deserialize, Serialize};
use spms_analysis::OverheadModel;

use crate::progress::{NullProgress, ProgressSink, ShiftedProgress};
use crate::{same_point, AcceptanceRatioExperiment, AlgorithmKind};

/// One scaling factor's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Factor the baseline overhead model was multiplied by.
    pub overhead_scale: f64,
    /// `(algorithm, acceptance ratio)` pairs.
    pub ratios: Vec<(AlgorithmKind, f64)>,
}

/// Results of the sensitivity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SensitivityResults {
    points: Vec<SensitivityPoint>,
    normalized_utilization: f64,
}

impl SensitivityResults {
    /// All measured points in increasing scale order.
    pub fn points(&self) -> &[SensitivityPoint] {
        &self.points
    }

    /// The normalized utilization the sweep was run at.
    pub fn normalized_utilization(&self) -> f64 {
        self.normalized_utilization
    }

    /// The acceptance ratio of an algorithm at a given scale (matched within
    /// a 1e-9 tolerance).
    pub fn ratio(&self, scale: f64, algorithm: AlgorithmKind) -> Option<f64> {
        self.points
            .iter()
            .find(|p| same_point(p.overhead_scale, scale))
            .and_then(|p| {
                p.ratios
                    .iter()
                    .find(|(a, _)| *a == algorithm)
                    .map(|(_, r)| *r)
            })
    }

    /// The acceptance-ratio loss of an algorithm between ×0 and ×1 overhead —
    /// the paper's "effect of the measured overhead".
    pub fn measured_overhead_cost(&self, algorithm: AlgorithmKind) -> Option<f64> {
        Some(self.ratio(0.0, algorithm)? - self.ratio(1.0, algorithm)?)
    }

    /// Renders a markdown table (rows = scales, columns = algorithms).
    pub fn render_markdown(&self) -> String {
        let algorithms: Vec<AlgorithmKind> = self
            .points
            .first()
            .map(|p| p.ratios.iter().map(|(a, _)| *a).collect())
            .unwrap_or_default();
        let mut out = String::from("| overhead scale |");
        for a in &algorithms {
            out.push_str(&format!(" {a} |"));
        }
        out.push_str("\n|---|");
        for _ in &algorithms {
            out.push_str("---|");
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("| x{:.0} |", p.overhead_scale));
            for (_, r) in &p.ratios {
                out.push_str(&format!(" {:.2} |", r));
            }
            out.push('\n');
        }
        out
    }

    /// Renders a CSV with a header row, suitable for plotting.
    pub fn render_csv(&self) -> String {
        let algorithms: Vec<AlgorithmKind> = self
            .points
            .first()
            .map(|p| p.ratios.iter().map(|(a, _)| *a).collect())
            .unwrap_or_default();
        let mut out = String::from("overhead_scale");
        for a in &algorithms {
            out.push(',');
            out.push_str(a.name());
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:.4}", p.overhead_scale));
            for a in &algorithms {
                let ratio = p
                    .ratios
                    .iter()
                    .find(|(b, _)| b == a)
                    .map(|(_, r)| *r)
                    .unwrap_or(f64::NAN);
                out.push_str(&format!(",{ratio:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

/// The overhead-sensitivity experiment driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadSensitivityExperiment {
    scales: Vec<f64>,
    normalized_utilization: f64,
    baseline: OverheadModel,
    acceptance: AcceptanceRatioExperiment,
}

impl Default for OverheadSensitivityExperiment {
    fn default() -> Self {
        OverheadSensitivityExperiment {
            scales: vec![0.0, 1.0, 5.0, 20.0],
            normalized_utilization: 0.9,
            baseline: OverheadModel::paper_n4(),
            acceptance: AcceptanceRatioExperiment::new()
                .tasks_per_set(12)
                .sets_per_point(50),
        }
    }
}

impl OverheadSensitivityExperiment {
    /// The default sweep: scales ×0/×1/×5/×20 of the paper's N = 4 overheads
    /// at a normalized utilization of 0.9.
    pub fn new() -> Self {
        OverheadSensitivityExperiment::default()
    }

    /// Sets the scaling factors to sweep.
    pub fn scales(mut self, scales: Vec<f64>) -> Self {
        self.scales = scales;
        self
    }

    /// Sets the normalized utilization the sweep runs at.
    pub fn normalized_utilization(mut self, u: f64) -> Self {
        self.normalized_utilization = u;
        self
    }

    /// Sets the baseline overhead model that gets scaled.
    pub fn baseline(mut self, baseline: OverheadModel) -> Self {
        self.baseline = baseline;
        self
    }

    /// Sets how many task sets are generated per scale.
    pub fn sets_per_scale(mut self, sets: usize) -> Self {
        self.acceptance = self.acceptance.sets_per_point(sets);
        self
    }

    /// Sets how many tasks each generated set contains.
    pub fn tasks_per_set(mut self, n: usize) -> Self {
        self.acceptance = self.acceptance.tasks_per_set(n);
        self
    }

    /// Sets the RNG seed used for task-set generation (every scale sees the
    /// same task sets regardless of the seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.acceptance = self.acceptance.seed(seed);
        self
    }

    /// Sets the number of worker threads each scale's acceptance sweep fans
    /// out across (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.acceptance = self.acceptance.threads(threads);
        self
    }

    /// Runs the sweep.
    pub fn run(&self) -> SensitivityResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    ///
    /// The scale axis reconfigures the overhead model, so each scale runs as
    /// its own [`SweepRunner`](crate::SweepRunner) grid (through the inner
    /// acceptance experiment); the task sets within a scale fan out across
    /// the configured threads, and every scale sees identical task sets.
    /// Progress is reported against the whole run (`scales × sets`), not
    /// per grid, so the count rises monotonically across scale boundaries.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> SensitivityResults {
        let mut points = Vec::with_capacity(self.scales.len());
        for (scale_idx, &scale) in self.scales.iter().enumerate() {
            let acceptance = self
                .acceptance
                .clone()
                .utilization_points(vec![self.normalized_utilization])
                .overhead(self.baseline.scaled(scale));
            let shifted = ShiftedProgress::new(
                progress,
                scale_idx * acceptance.grid_cells(),
                self.scales.len() * acceptance.grid_cells(),
            );
            let results = acceptance.run_with_progress(&shifted);
            let ratios = results
                .algorithms()
                .iter()
                .map(|a| {
                    (
                        *a,
                        results
                            .ratio_at(self.normalized_utilization, *a)
                            .unwrap_or(0.0),
                    )
                })
                .collect();
            points.push(SensitivityPoint {
                overhead_scale: scale,
                ratios,
            });
        }
        SensitivityResults {
            points,
            normalized_utilization: self.normalized_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OverheadSensitivityExperiment {
        OverheadSensitivityExperiment::new()
            .scales(vec![0.0, 1.0, 20.0])
            .tasks_per_set(8)
            .sets_per_scale(10)
    }

    #[test]
    fn acceptance_degrades_monotonically_with_scale() {
        let results = quick().run();
        assert_eq!(results.points().len(), 3);
        let fpts_0 = results.ratio(0.0, AlgorithmKind::FpTs).unwrap();
        let fpts_1 = results.ratio(1.0, AlgorithmKind::FpTs).unwrap();
        let fpts_20 = results.ratio(20.0, AlgorithmKind::FpTs).unwrap();
        assert!(fpts_0 >= fpts_1);
        assert!(fpts_1 >= fpts_20);
    }

    #[test]
    fn measured_overhead_cost_is_small() {
        let results = quick().run();
        let cost = results.measured_overhead_cost(AlgorithmKind::FpTs).unwrap();
        // The paper's claim: the real overhead costs only a small slice of
        // acceptance ratio.
        assert!(cost <= 0.3, "overhead cost {cost}");
        assert!(cost >= 0.0);
    }

    #[test]
    fn markdown_contains_scales() {
        let md = quick().run().render_markdown();
        assert!(md.contains("x0"));
        assert!(md.contains("x20"));
        assert!(md.contains("FP-TS"));
    }

    #[test]
    fn csv_contains_header_and_every_scale() {
        let results = quick().run();
        let csv = results.render_csv();
        assert!(csv.starts_with("overhead_scale"));
        assert!(csv.contains("FP-TS"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        assert_eq!(quick().run(), quick().threads(4).run());
    }
}
