//! Overhead-sensitivity experiment (E6): how quickly does the acceptance
//! ratio of FP-TS degrade as the overhead magnitude grows?
//!
//! The paper concludes that the *measured* overheads are small enough that
//! their effect on schedulability "is very small". This experiment makes
//! that statement quantitative by scaling the measured overhead model by
//! ×0, ×1, ×5, ×20 (and anything else the caller asks for) and recording the
//! acceptance ratio at a fixed, high normalized utilization.

use serde::{Deserialize, Serialize};
use spms_analysis::OverheadModel;

use crate::{AcceptanceRatioExperiment, AlgorithmKind};

/// One scaling factor's result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Factor the baseline overhead model was multiplied by.
    pub overhead_scale: f64,
    /// `(algorithm, acceptance ratio)` pairs.
    pub ratios: Vec<(AlgorithmKind, f64)>,
}

/// Results of the sensitivity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SensitivityResults {
    points: Vec<SensitivityPoint>,
    normalized_utilization: f64,
}

impl SensitivityResults {
    /// All measured points in increasing scale order.
    pub fn points(&self) -> &[SensitivityPoint] {
        &self.points
    }

    /// The normalized utilization the sweep was run at.
    pub fn normalized_utilization(&self) -> f64 {
        self.normalized_utilization
    }

    /// The acceptance ratio of an algorithm at a given scale.
    pub fn ratio(&self, scale: f64, algorithm: AlgorithmKind) -> Option<f64> {
        self.points
            .iter()
            .find(|p| (p.overhead_scale - scale).abs() < 1e-9)
            .and_then(|p| {
                p.ratios
                    .iter()
                    .find(|(a, _)| *a == algorithm)
                    .map(|(_, r)| *r)
            })
    }

    /// The acceptance-ratio loss of an algorithm between ×0 and ×1 overhead —
    /// the paper's "effect of the measured overhead".
    pub fn measured_overhead_cost(&self, algorithm: AlgorithmKind) -> Option<f64> {
        Some(self.ratio(0.0, algorithm)? - self.ratio(1.0, algorithm)?)
    }

    /// Renders a markdown table (rows = scales, columns = algorithms).
    pub fn render_markdown(&self) -> String {
        let algorithms: Vec<AlgorithmKind> = self
            .points
            .first()
            .map(|p| p.ratios.iter().map(|(a, _)| *a).collect())
            .unwrap_or_default();
        let mut out = String::from("| overhead scale |");
        for a in &algorithms {
            out.push_str(&format!(" {a} |"));
        }
        out.push_str("\n|---|");
        for _ in &algorithms {
            out.push_str("---|");
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("| x{:.0} |", p.overhead_scale));
            for (_, r) in &p.ratios {
                out.push_str(&format!(" {:.2} |", r));
            }
            out.push('\n');
        }
        out
    }
}

/// The overhead-sensitivity experiment driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadSensitivityExperiment {
    scales: Vec<f64>,
    normalized_utilization: f64,
    baseline: OverheadModel,
    acceptance: AcceptanceRatioExperiment,
}

impl Default for OverheadSensitivityExperiment {
    fn default() -> Self {
        OverheadSensitivityExperiment {
            scales: vec![0.0, 1.0, 5.0, 20.0],
            normalized_utilization: 0.9,
            baseline: OverheadModel::paper_n4(),
            acceptance: AcceptanceRatioExperiment::new()
                .tasks_per_set(12)
                .sets_per_point(50),
        }
    }
}

impl OverheadSensitivityExperiment {
    /// The default sweep: scales ×0/×1/×5/×20 of the paper's N = 4 overheads
    /// at a normalized utilization of 0.9.
    pub fn new() -> Self {
        OverheadSensitivityExperiment::default()
    }

    /// Sets the scaling factors to sweep.
    pub fn scales(mut self, scales: Vec<f64>) -> Self {
        self.scales = scales;
        self
    }

    /// Sets the normalized utilization the sweep runs at.
    pub fn normalized_utilization(mut self, u: f64) -> Self {
        self.normalized_utilization = u;
        self
    }

    /// Sets the baseline overhead model that gets scaled.
    pub fn baseline(mut self, baseline: OverheadModel) -> Self {
        self.baseline = baseline;
        self
    }

    /// Sets how many task sets are generated per scale.
    pub fn sets_per_scale(mut self, sets: usize) -> Self {
        self.acceptance = self.acceptance.sets_per_point(sets);
        self
    }

    /// Sets how many tasks each generated set contains.
    pub fn tasks_per_set(mut self, n: usize) -> Self {
        self.acceptance = self.acceptance.tasks_per_set(n);
        self
    }

    /// Runs the sweep.
    pub fn run(&self) -> SensitivityResults {
        let mut points = Vec::with_capacity(self.scales.len());
        for &scale in &self.scales {
            let results = self
                .acceptance
                .clone()
                .utilization_points(vec![self.normalized_utilization])
                .overhead(self.baseline.scaled(scale))
                .run();
            let ratios = results
                .algorithms()
                .iter()
                .map(|a| {
                    (
                        *a,
                        results
                            .ratio_at(self.normalized_utilization, *a)
                            .unwrap_or(0.0),
                    )
                })
                .collect();
            points.push(SensitivityPoint {
                overhead_scale: scale,
                ratios,
            });
        }
        SensitivityResults {
            points,
            normalized_utilization: self.normalized_utilization,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OverheadSensitivityExperiment {
        OverheadSensitivityExperiment::new()
            .scales(vec![0.0, 1.0, 20.0])
            .tasks_per_set(8)
            .sets_per_scale(10)
    }

    #[test]
    fn acceptance_degrades_monotonically_with_scale() {
        let results = quick().run();
        assert_eq!(results.points().len(), 3);
        let fpts_0 = results.ratio(0.0, AlgorithmKind::FpTs).unwrap();
        let fpts_1 = results.ratio(1.0, AlgorithmKind::FpTs).unwrap();
        let fpts_20 = results.ratio(20.0, AlgorithmKind::FpTs).unwrap();
        assert!(fpts_0 >= fpts_1);
        assert!(fpts_1 >= fpts_20);
    }

    #[test]
    fn measured_overhead_cost_is_small() {
        let results = quick().run();
        let cost = results.measured_overhead_cost(AlgorithmKind::FpTs).unwrap();
        // The paper's claim: the real overhead costs only a small slice of
        // acceptance ratio.
        assert!(cost <= 0.3, "overhead cost {cost}");
        assert!(cost >= 0.0);
    }

    #[test]
    fn markdown_contains_scales() {
        let md = quick().run().render_markdown();
        assert!(md.contains("x0"));
        assert!(md.contains("x20"));
        assert!(md.contains("FP-TS"));
    }
}
