//! Cache-crossover experiment (E4): local context switch vs. migration
//! reload cost as a function of working-set size.
//!
//! Reproduces the paper's §3 "cache" discussion: for realistic working sets
//! the two costs are of the same order of magnitude (both are L3 refills),
//! while very small working sets — smaller than the private L1/L2 — benefit
//! substantially from staying on the same core.

use serde::{Deserialize, Serialize};
use spms_cache::{CacheHierarchyConfig, CrpdEstimate, CrpdModel, WorkingSet};

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::SweepRunner;

/// One working-set size's measured/estimated delays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CrossoverPoint {
    /// Working-set size in bytes.
    pub working_set_bytes: u64,
    /// Analytic estimate.
    pub analytic: CrpdEstimate,
    /// Cache-simulation estimate.
    pub simulated: CrpdEstimate,
}

/// Results of the crossover sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CacheCrossoverResults {
    points: Vec<CrossoverPoint>,
}

impl CacheCrossoverResults {
    /// All sweep points in increasing working-set order.
    pub fn points(&self) -> &[CrossoverPoint] {
        &self.points
    }

    /// The largest working-set size for which the simulated migration cost is
    /// at least `factor` times the local cost — i.e. where migrating still
    /// hurts noticeably. Returns `None` if it never does.
    pub fn crossover_bytes(&self, factor: f64) -> Option<u64> {
        self.points
            .iter()
            .filter(|p| p.simulated.migration_penalty_ratio() >= factor)
            .map(|p| p.working_set_bytes)
            .max()
    }

    /// Renders a markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| working set | local (analytic) | migration (analytic) | local (simulated) | migration (simulated) |\n|---|---|---|---|---|\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "| {} KiB | {:.1} us | {:.1} us | {:.1} us | {:.1} us |\n",
                p.working_set_bytes / 1024,
                p.analytic.local_preemption_ns as f64 / 1_000.0,
                p.analytic.migration_ns as f64 / 1_000.0,
                p.simulated.local_preemption_ns as f64 / 1_000.0,
                p.simulated.migration_ns as f64 / 1_000.0,
            ));
        }
        out
    }

    /// Renders a CSV for plotting.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "working_set_bytes,analytic_local_ns,analytic_migration_ns,simulated_local_ns,simulated_migration_ns\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{}\n",
                p.working_set_bytes,
                p.analytic.local_preemption_ns,
                p.analytic.migration_ns,
                p.simulated.local_preemption_ns,
                p.simulated.migration_ns,
            ));
        }
        out
    }
}

/// The cache-crossover experiment driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheCrossoverExperiment {
    config: CacheHierarchyConfig,
    working_set_sizes: Vec<u64>,
    threads: usize,
}

impl Default for CacheCrossoverExperiment {
    fn default() -> Self {
        CacheCrossoverExperiment {
            config: CacheHierarchyConfig::core_i7_4core(),
            working_set_sizes: vec![
                4 * 1024,
                16 * 1024,
                64 * 1024,
                256 * 1024,
                1024 * 1024,
                4 * 1024 * 1024,
            ],
            threads: 1,
        }
    }
}

impl CacheCrossoverExperiment {
    /// The default sweep on the paper's Core-i7-like hierarchy
    /// (4 KiB … 4 MiB working sets).
    pub fn new() -> Self {
        CacheCrossoverExperiment::default()
    }

    /// Uses a different cache hierarchy.
    pub fn hierarchy(mut self, config: CacheHierarchyConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the working-set sizes to sweep.
    pub fn working_set_sizes(mut self, sizes: Vec<u64>) -> Self {
        self.working_set_sizes = sizes;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the sweep.
    pub fn run(&self) -> CacheCrossoverResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    ///
    /// This sweep is deterministic (no task-set generation), so the grid is
    /// `working_set_sizes × 1` and the root seed is irrelevant; the cache
    /// simulations of the individual sizes still fan out across threads.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> CacheCrossoverResults {
        let model = CrpdModel::new(self.config.clone());
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(0, self.working_set_sizes.len(), 1, progress, |cell| {
                let bytes = self.working_set_sizes[cell.point_idx];
                let ws = WorkingSet::from_bytes(bytes);
                let preemptor = WorkingSet::from_bytes(bytes).with_base(1 << 32);
                Some(CrossoverPoint {
                    working_set_bytes: bytes,
                    analytic: model.analytic(ws, preemptor),
                    simulated: model.simulated(ws, preemptor),
                })
            });
        CacheCrossoverResults {
            points: grid.into_iter().flatten().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CacheCrossoverExperiment {
        // The tiny hierarchy keeps the cache simulation fast in tests.
        CacheCrossoverExperiment::new()
            .hierarchy(CacheHierarchyConfig::tiny_for_tests())
            .working_set_sizes(vec![512, 2 * 1024, 16 * 1024])
    }

    #[test]
    fn produces_one_point_per_size() {
        let results = quick().run();
        assert_eq!(results.points().len(), 3);
        for p in results.points() {
            assert!(p.analytic.migration_ns >= p.analytic.local_preemption_ns);
            assert!(p.simulated.migration_ns >= p.simulated.local_preemption_ns);
        }
    }

    #[test]
    fn small_working_sets_benefit_from_locality() {
        let results = quick().run();
        let small = &results.points()[0];
        let large = results.points().last().unwrap();
        assert!(
            small.simulated.migration_penalty_ratio() > large.simulated.migration_penalty_ratio()
        );
        // The crossover lies somewhere at or above the smallest size.
        assert!(results.crossover_bytes(2.0).is_some());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        assert_eq!(quick().run(), quick().threads(3).run());
    }

    #[test]
    fn rendering_includes_every_size() {
        let results = quick().run();
        let md = results.render_markdown();
        let csv = results.render_csv();
        assert!(md.contains("16 KiB"));
        assert!(csv.contains("16384"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
    }
}
