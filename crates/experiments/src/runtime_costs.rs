//! Simulated run-time cost of semi-partitioned vs. partitioned scheduling
//! (experiment E8).
//!
//! The paper's core empirical claim is that the *extra* overhead caused by
//! task splitting is very low. The acceptance-ratio experiments quantify the
//! analytical side of that claim; this experiment quantifies the run-time
//! side: for every task set accepted by an algorithm, the resulting partition
//! is executed in the discrete-event simulator with the measured overheads
//! injected, and the preemption count, migration count and the fraction of
//! processor time spent inside the scheduler are recorded.

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_sim::{SimulationConfig, Simulator};
use spms_task::{PeriodDistribution, TaskSetGenerator, Time, UtilizationDistribution};

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::SweepRunner;
use crate::{same_point, AlgorithmKind};

/// Aggregated run-time costs of one algorithm at one utilization point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeCostSample {
    /// The algorithm the sample belongs to.
    pub algorithm: AlgorithmKind,
    /// Normalized utilization of the point.
    pub normalized_utilization: f64,
    /// Number of accepted (and therefore simulated) task sets.
    pub accepted_sets: usize,
    /// Average number of split tasks per accepted set.
    pub avg_split_tasks: f64,
    /// Average preemptions per 1000 released jobs.
    pub preemptions_per_kjob: f64,
    /// Average cross-core migrations per 1000 released jobs.
    pub migrations_per_kjob: f64,
    /// Average fraction of processor time spent on scheduler overhead.
    pub overhead_fraction: f64,
    /// Fraction of simulated sets that missed at least one deadline (expected
    /// to be zero: every simulated set was accepted by the overhead-aware
    /// analysis).
    pub miss_fraction: f64,
}

/// Results of the run-time cost experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RuntimeCostResults {
    samples: Vec<RuntimeCostSample>,
}

impl RuntimeCostResults {
    /// All samples, grouped by utilization point and algorithm.
    pub fn samples(&self) -> &[RuntimeCostSample] {
        &self.samples
    }

    /// The sample of one algorithm at the point matching `utilization`
    /// within a 1e-9 tolerance (`None` when no point lies within it).
    pub fn sample(&self, utilization: f64, algorithm: AlgorithmKind) -> Option<&RuntimeCostSample> {
        self.samples
            .iter()
            .find(|s| s.algorithm == algorithm && same_point(s.normalized_utilization, utilization))
    }

    /// Renders a markdown table with one row per (utilization, algorithm).
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| U / m | algorithm | accepted | splits | preempt/kjob | migr/kjob | overhead % | misses |\n|---|---|---|---|---|---|---|---|\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "| {:.2} | {} | {} | {:.2} | {:.1} | {:.1} | {:.3} | {:.2} |\n",
                s.normalized_utilization,
                s.algorithm,
                s.accepted_sets,
                s.avg_split_tasks,
                s.preemptions_per_kjob,
                s.migrations_per_kjob,
                s.overhead_fraction * 100.0,
                s.miss_fraction,
            ));
        }
        out
    }

    /// Renders a CSV with a header row.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "normalized_utilization,algorithm,accepted_sets,avg_split_tasks,preemptions_per_kjob,migrations_per_kjob,overhead_fraction,miss_fraction\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{:.4},{},{},{:.4},{:.4},{:.4},{:.6},{:.4}\n",
                s.normalized_utilization,
                s.algorithm.name(),
                s.accepted_sets,
                s.avg_split_tasks,
                s.preemptions_per_kjob,
                s.migrations_per_kjob,
                s.overhead_fraction,
                s.miss_fraction,
            ));
        }
        out
    }
}

/// Driver for the run-time cost experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuntimeCostExperiment {
    cores: usize,
    tasks_per_set: usize,
    utilization_points: Vec<f64>,
    sets_per_point: usize,
    algorithms: Vec<AlgorithmKind>,
    test: UniprocessorTest,
    overhead: OverheadModel,
    simulation_window: Time,
    seed: u64,
    threads: usize,
}

/// What one accepted task set contributed to an algorithm's aggregates.
struct CellSample {
    split_tasks: usize,
    preemptions: u64,
    migrations: u64,
    jobs: u64,
    overhead_fraction: f64,
    missed: bool,
}

impl Default for RuntimeCostExperiment {
    fn default() -> Self {
        RuntimeCostExperiment {
            cores: 4,
            tasks_per_set: 12,
            utilization_points: vec![0.6, 0.75, 0.9],
            sets_per_point: 20,
            algorithms: vec![
                AlgorithmKind::FpTs,
                AlgorithmKind::FpTsNextFit,
                AlgorithmKind::Ffd,
            ],
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::paper_n4(),
            simulation_window: Time::from_secs(1),
            seed: 0,
            threads: 1,
        }
    }
}

impl RuntimeCostExperiment {
    /// A driver with the defaults: 4 cores, 12 tasks per set, the paper's
    /// N = 4 overheads, FP-TS vs FP-TS/NF vs FFD, one simulated second per
    /// accepted set.
    pub fn new() -> Self {
        RuntimeCostExperiment::default()
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the number of tasks per generated set.
    pub fn tasks_per_set(mut self, n: usize) -> Self {
        self.tasks_per_set = n;
        self
    }

    /// Sets the normalized-utilization points.
    pub fn utilization_points(mut self, points: Vec<f64>) -> Self {
        self.utilization_points = points;
        self
    }

    /// Sets how many task sets are generated per point.
    pub fn sets_per_point(mut self, sets: usize) -> Self {
        self.sets_per_point = sets;
        self
    }

    /// Sets the algorithms to compare.
    pub fn algorithms(mut self, algorithms: Vec<AlgorithmKind>) -> Self {
        self.algorithms = algorithms;
        self
    }

    /// Sets the overhead model used for both the analysis and the simulation.
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the simulated window per accepted set.
    pub fn simulation_window(mut self, window: Time) -> Self {
        self.simulation_window = window;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the experiment.
    pub fn run(&self) -> RuntimeCostResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    ///
    /// Each grid cell generates its task set once and pushes it through
    /// every algorithm (partition + simulate), so all algorithms see the
    /// same sets; the per-algorithm aggregates are folded afterwards in set
    /// order, keeping the floating-point accumulation identical to a serial
    /// run.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> RuntimeCostResults {
        let partitioners: Vec<(AlgorithmKind, Box<dyn spms_core::Partitioner + Send + Sync>)> =
            self.algorithms
                .iter()
                .map(|a| (*a, a.build(self.test, self.overhead)))
                .collect();
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(
                self.seed,
                self.utilization_points.len(),
                self.sets_per_point,
                progress,
                |cell| {
                    let normalized = self.utilization_points[cell.point_idx];
                    let generator = TaskSetGenerator::new()
                        .task_count(self.tasks_per_set)
                        .total_utilization(normalized * self.cores as f64)
                        .utilization_distribution(UtilizationDistribution::UUniFastDiscard {
                            max_task_utilization: 1.0,
                        })
                        .period_distribution(PeriodDistribution::LogUniform {
                            min: Time::from_millis(10),
                            max: Time::from_secs(1),
                        })
                        .seed(cell.seed);
                    let tasks = generator.generate().ok()?;
                    Some(
                        partitioners
                            .iter()
                            .map(|(_, partitioner)| {
                                let partition = partitioner
                                    .partition(&tasks, self.cores)
                                    .expect("valid generated task set")
                                    .into_partition()?;
                                let report = Simulator::new(
                                    &partition,
                                    SimulationConfig::new(self.simulation_window)
                                        .with_overhead(self.overhead),
                                )
                                .run();
                                Some(CellSample {
                                    split_tasks: partition.split_count(),
                                    preemptions: report.preemptions,
                                    migrations: report.migrations,
                                    jobs: report.jobs_released,
                                    overhead_fraction: report.overhead_fraction(),
                                    missed: !report.no_deadline_misses(),
                                })
                            })
                            .collect::<Vec<Option<CellSample>>>(),
                    )
                },
            );
        let mut samples = Vec::new();
        for (cells, &normalized) in grid.iter().zip(&self.utilization_points) {
            for (i, (kind, _)) in partitioners.iter().enumerate() {
                let mut accepted_sets = 0usize;
                let mut split_tasks = 0usize;
                let mut preemptions = 0u64;
                let mut migrations = 0u64;
                let mut jobs = 0u64;
                let mut overhead_fraction = 0.0f64;
                let mut missed_sets = 0usize;
                for sample in cells.iter().filter_map(|cell| cell[i].as_ref()) {
                    accepted_sets += 1;
                    split_tasks += sample.split_tasks;
                    preemptions += sample.preemptions;
                    migrations += sample.migrations;
                    jobs += sample.jobs;
                    overhead_fraction += sample.overhead_fraction;
                    if sample.missed {
                        missed_sets += 1;
                    }
                }
                let divisor = accepted_sets.max(1) as f64;
                let kjobs = (jobs as f64 / 1000.0).max(f64::MIN_POSITIVE);
                samples.push(RuntimeCostSample {
                    algorithm: *kind,
                    normalized_utilization: normalized,
                    accepted_sets,
                    avg_split_tasks: split_tasks as f64 / divisor,
                    preemptions_per_kjob: preemptions as f64 / kjobs,
                    migrations_per_kjob: migrations as f64 / kjobs,
                    overhead_fraction: overhead_fraction / divisor,
                    miss_fraction: missed_sets as f64 / divisor,
                });
            }
        }
        RuntimeCostResults { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RuntimeCostExperiment {
        RuntimeCostExperiment::new()
            .tasks_per_set(8)
            .sets_per_point(5)
            .utilization_points(vec![0.6, 0.85])
            .simulation_window(Time::from_millis(400))
            .seed(5)
    }

    #[test]
    fn produces_one_sample_per_point_and_algorithm() {
        let results = quick().run();
        assert_eq!(results.samples().len(), 2 * 3);
    }

    #[test]
    fn accepted_sets_never_miss_deadlines() {
        // The paper's soundness story: sets accepted by the overhead-aware
        // analysis keep their deadlines when simulated with the same
        // overheads injected.
        let results = quick().run();
        for s in results.samples() {
            assert_eq!(
                s.miss_fraction, 0.0,
                "{} at {}",
                s.algorithm, s.normalized_utilization
            );
        }
    }

    #[test]
    fn partitioned_baseline_never_migrates() {
        let results = quick().run();
        for s in results.samples() {
            if s.algorithm == AlgorithmKind::Ffd {
                assert_eq!(s.migrations_per_kjob, 0.0);
                assert_eq!(s.avg_split_tasks, 0.0);
            }
        }
    }

    #[test]
    fn scheduler_overhead_stays_small() {
        // The headline claim: with millisecond-scale periods the measured
        // microsecond-scale overheads consume a tiny fraction of the
        // processor.
        let results = quick().run();
        for s in results.samples() {
            assert!(
                s.overhead_fraction < 0.05,
                "{} spends {:.1}% on overhead",
                s.algorithm,
                s.overhead_fraction * 100.0
            );
        }
    }

    #[test]
    fn next_fit_splitting_migrates_at_least_as_much_as_first_fit() {
        let results = quick().run();
        for &u in &[0.6, 0.85] {
            let ff = results.sample(u, AlgorithmKind::FpTs).unwrap();
            let nf = results.sample(u, AlgorithmKind::FpTsNextFit).unwrap();
            assert!(
                nf.avg_split_tasks >= ff.avg_split_tasks,
                "next-fit should split at least as often at U/m = {u}"
            );
        }
    }

    #[test]
    fn rendering_mentions_every_algorithm() {
        let results = quick().run();
        let md = results.render_markdown();
        let csv = results.render_csv();
        for kind in [
            AlgorithmKind::FpTs,
            AlgorithmKind::FpTsNextFit,
            AlgorithmKind::Ffd,
        ] {
            assert!(md.contains(kind.name()));
            assert!(csv.contains(kind.name()));
        }
    }

    #[test]
    fn runs_are_reproducible() {
        assert_eq!(quick().run(), quick().run());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        assert_eq!(quick().run(), quick().threads(4).run());
    }
}
