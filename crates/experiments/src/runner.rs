//! The shared parallel sweep engine behind every experiment driver.
//!
//! Every experiment in this crate walks the same shape of computation: a
//! grid of *points* (utilization levels, core counts, overhead scales,
//! working-set sizes) times a number of independently generated *task sets*
//! per point. The cells of that grid are embarrassingly parallel — each one
//! generates its own task set from a seed derived purely from the cell's
//! coordinates — so [`SweepRunner`] fans them out across a configurable
//! number of worker threads and re-assembles the per-point results in a
//! fixed order.
//!
//! # Determinism
//!
//! The output is **bit-identical regardless of thread count**:
//!
//! * the RNG seed of each cell is [`derive_seed`]`(root, point, set)` — a
//!   pure function of the grid coordinates, never of scheduling order;
//! * workers pull cells from a shared atomic counter but deposit each result
//!   into the slot owned by its cell index, so the merge step walks the grid
//!   in row-major order no matter which worker produced which cell;
//! * per-point aggregation (including floating-point accumulation) always
//!   happens on the merged, ordered results, never inside the workers.
//!
//! The `serial_parallel_equivalence` suites in `crates/experiments/tests`
//! and `tests/` pin this property for every experiment and for the `spms`
//! CLI respectively.

use crate::progress::{NullProgress, ProgressSink};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Derives the RNG seed of one `(point, set)` grid cell from the sweep's
/// root seed.
///
/// The high half of the offset encodes the point index and the low half the
/// set index, so that every cell of a realistic grid (≤ 2³² sets per point)
/// sees a distinct, stable seed and inserting new points never reshuffles
/// the seeds of existing ones.
pub fn derive_seed(root: u64, point_idx: usize, set_idx: usize) -> u64 {
    root.wrapping_add((point_idx as u64) << 32)
        .wrapping_add(set_idx as u64)
}

/// One cell of a sweep grid: the coordinates plus the derived RNG seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridCell {
    /// Index into the sweep's point axis.
    pub point_idx: usize,
    /// Index of the task-set replication within the point.
    pub set_idx: usize,
    /// RNG seed for this cell, from [`derive_seed`].
    pub seed: u64,
}

/// Fans the independent cells of a `points × sets_per_point` grid across a
/// thread pool and merges the results back in grid order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepRunner {
    threads: usize,
}

impl Default for SweepRunner {
    fn default() -> Self {
        SweepRunner { threads: 1 }
    }
}

impl SweepRunner {
    /// A serial runner (one thread). Use [`threads`](Self::threads) to widen.
    pub fn new() -> Self {
        SweepRunner::default()
    }

    /// Sets the number of worker threads. `0` means "one per available
    /// core" (`std::thread::available_parallelism`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The configured thread count with `0` resolved to the host parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Evaluates `eval` on every cell of the grid and groups the successful
    /// results by point, preserving set order within each point.
    ///
    /// `eval` returning `None` models a skipped cell (e.g. task-set
    /// generation failed for an unreachable utilization target); skipped
    /// cells are simply absent from the point's result vector, exactly as a
    /// serial `continue` would leave them.
    pub fn run_grid<T, F>(
        &self,
        root_seed: u64,
        points: usize,
        sets_per_point: usize,
        eval: F,
    ) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(GridCell) -> Option<T> + Sync,
    {
        self.run_grid_with_progress(root_seed, points, sets_per_point, &NullProgress, eval)
    }

    /// [`run_grid`](Self::run_grid) with per-cell completion reported to
    /// `progress`.
    pub fn run_grid_with_progress<T, F>(
        &self,
        root_seed: u64,
        points: usize,
        sets_per_point: usize,
        progress: &dyn ProgressSink,
        eval: F,
    ) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(GridCell) -> Option<T> + Sync,
    {
        let total = points * sets_per_point;
        let workers = self.effective_threads().min(total.max(1));
        let cell = |index: usize| {
            let point_idx = index / sets_per_point;
            let set_idx = index % sets_per_point;
            GridCell {
                point_idx,
                set_idx,
                seed: derive_seed(root_seed, point_idx, set_idx),
            }
        };

        let slots: Vec<Option<T>> = if workers <= 1 {
            (0..total)
                .map(|i| {
                    let result = eval(cell(i));
                    progress.cell_done(i + 1, total);
                    result
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let done = AtomicUsize::new(0);
            let mut slots: Vec<Option<T>> = (0..total).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let next = &next;
                        let done = &done;
                        let eval = &eval;
                        scope.spawn(move || {
                            let mut produced = Vec::new();
                            loop {
                                let index = next.fetch_add(1, Ordering::Relaxed);
                                if index >= total {
                                    break;
                                }
                                produced.push((index, eval(cell(index))));
                                let completed = done.fetch_add(1, Ordering::Relaxed) + 1;
                                progress.cell_done(completed, total);
                            }
                            produced
                        })
                    })
                    .collect();
                for handle in handles {
                    for (index, result) in handle.join().expect("sweep worker panicked") {
                        slots[index] = result;
                    }
                }
            });
            slots
        };

        let mut grouped: Vec<Vec<T>> = (0..points).map(|_| Vec::new()).collect();
        for (index, slot) in slots.into_iter().enumerate() {
            if let Some(result) = slot {
                grouped[index / sets_per_point].push(result);
            }
        }
        grouped
    }
}

/// Folds one sweep point's per-set accept/reject verdicts (one `Vec<bool>`
/// per successfully generated task set, indexed like `keys`) into
/// `(key, acceptance ratio)` pairs. A point where every generation attempt
/// failed reports 0.0 for every key.
pub(crate) fn acceptance_ratios<K: Copy>(keys: &[K], verdicts: &[Vec<bool>]) -> Vec<(K, f64)> {
    let generated = verdicts.len();
    keys.iter()
        .enumerate()
        .map(|(i, key)| {
            let accepted = verdicts.iter().filter(|v| v[i]).count();
            let ratio = if generated == 0 {
                0.0
            } else {
                accepted as f64 / generated as f64
            };
            (*key, ratio)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::test_support::RecordingProgress;

    #[test]
    fn seeds_depend_only_on_coordinates() {
        assert_eq!(derive_seed(7, 0, 0), 7);
        assert_eq!(derive_seed(7, 0, 3), 10);
        assert_eq!(derive_seed(7, 2, 3), 7 + (2u64 << 32) + 3);
        assert_ne!(derive_seed(7, 1, 0), derive_seed(7, 0, 1));
    }

    #[test]
    fn serial_and_parallel_grids_are_identical() {
        let eval = |c: GridCell| Some((c.point_idx, c.set_idx, c.seed));
        let serial = SweepRunner::new().run_grid(42, 5, 7, eval);
        let parallel = SweepRunner::new().threads(4).run_grid(42, 5, 7, eval);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 5);
        assert!(serial.iter().all(|point| point.len() == 7));
    }

    #[test]
    fn skipped_cells_are_dropped_in_place() {
        let eval = |c: GridCell| c.set_idx.is_multiple_of(2).then_some(c.set_idx);
        for threads in [1, 3] {
            let grid = SweepRunner::new().threads(threads).run_grid(0, 2, 5, eval);
            assert_eq!(grid, vec![vec![0, 2, 4], vec![0, 2, 4]]);
        }
    }

    #[test]
    fn zero_threads_resolves_to_host_parallelism() {
        let runner = SweepRunner::new().threads(0);
        assert!(runner.effective_threads() >= 1);
        let grid = runner.run_grid(1, 3, 2, |c| Some(c.seed));
        assert_eq!(grid, SweepRunner::new().run_grid(1, 3, 2, |c| Some(c.seed)));
    }

    #[test]
    fn empty_grids_are_fine() {
        let grid = SweepRunner::new()
            .threads(8)
            .run_grid(0, 0, 10, |_| Some(1));
        assert!(grid.is_empty());
        let grid = SweepRunner::new().threads(8).run_grid(0, 3, 0, |_| Some(1));
        assert_eq!(grid, vec![Vec::<i32>::new(); 3]);
    }

    #[test]
    fn progress_sees_every_cell_exactly_once() {
        for threads in [1, 4] {
            let sink = RecordingProgress::default();
            SweepRunner::new()
                .threads(threads)
                .run_grid_with_progress(0, 3, 4, &sink, |c| Some(c.seed));
            let mut calls = sink.calls.lock().unwrap().clone();
            calls.sort_unstable();
            assert_eq!(calls, (1..=12).map(|i| (i, 12)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn workers_never_exceed_the_grid() {
        // 64 threads on a 4-cell grid must still produce every cell once.
        let grid = SweepRunner::new()
            .threads(64)
            .run_grid(9, 2, 2, |c| Some(c.seed));
        assert_eq!(
            grid,
            vec![
                vec![derive_seed(9, 0, 0), derive_seed(9, 0, 1)],
                vec![derive_seed(9, 1, 0), derive_seed(9, 1, 1)],
            ]
        );
    }
}
