//! The online-churn experiment: acceptance ratio under task churn as the
//! offered load grows.
//!
//! For every point of a target-utilization sweep, generate many independent
//! churn traces (Poisson arrivals, log-uniform lifetimes) and drive the
//! online [`AdmissionController`] over each, recording how many arrivals it
//! admits, which decision paths it takes, how many already-placed tasks its
//! decisions migrate, and — when replay is enabled — whether every admitted
//! epoch simulates without deadline misses.
//!
//! The sweep runs on the shared [`SweepRunner`] grid, so results are
//! bit-identical for every `--threads` value under a fixed seed.

use serde::{Deserialize, Serialize};
use spms_analysis::{rta, OverheadModel};
use spms_online::{
    run_trace, AdmissionController, ChurnFamily, ChurnGenerator, OnlineConfig, ReplayConfig,
    ReplayOutcome,
};
use spms_overhead::CostModelSpec;
use spms_task::Time;
use spms_telemetry::Registry;

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::SweepRunner;
use crate::same_point;

/// Aggregated controller behaviour at one target-utilization point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnPoint {
    /// Target normalized utilization of the churn process.
    pub normalized_utilization: f64,
    /// Arrival events across all traces of this point.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Fraction of arrivals admitted.
    pub acceptance_ratio: f64,
    /// Fraction of admissions decided on a fast path (whole or split).
    pub fast_path_ratio: f64,
    /// Fraction of admissions that needed bounded repair.
    pub repair_ratio: f64,
    /// Fraction of admissions that needed a full repartition.
    pub fallback_ratio: f64,
    /// Already-placed tasks relocated per admission, on average.
    pub migrations_per_admission: f64,
    /// Microseconds of migration-cost WCET inflation charged per admission,
    /// on average (0 under the free [`CostModelSpec::Zero`] model).
    pub inflation_us_per_admission: f64,
    /// Epochs replayed through the simulator (0 when replay is disabled).
    pub replayed_epochs: u64,
    /// Deadline misses across all replayed epochs (must stay 0).
    pub replay_misses: u64,
    /// How often the RTA fixed-point iteration cap was exhausted while
    /// deciding this point's traces. A time-out is a conservative
    /// rejection, not a proof — a non-zero count flags configurations whose
    /// rejections deserve scrutiny (see `spms_analysis::rta::cap_exhaustions`).
    pub rta_cap_exhaustions: u64,
}

/// Everything a churn sweep produces: the serializable [`ChurnResults`]
/// artifact plus the run-wide telemetry registry (per-cell controller
/// registries merged in grid order, so the deterministic section is
/// identical for every `--threads` value).
#[derive(Debug, Clone)]
pub struct ChurnRun {
    /// The serializable sweep artifact.
    pub results: ChurnResults,
    /// Every grid cell's controller registry, merged in grid order.
    pub metrics: Registry,
}

/// Results of an online-churn sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ChurnResults {
    points: Vec<ChurnPoint>,
}

impl ChurnResults {
    /// All sweep points, in increasing target-utilization order.
    pub fn points(&self) -> &[ChurnPoint] {
        &self.points
    }

    /// The point matching `normalized_utilization` within the shared sweep
    /// tolerance.
    pub fn point_at(&self, normalized_utilization: f64) -> Option<&ChurnPoint> {
        self.points
            .iter()
            .find(|p| same_point(p.normalized_utilization, normalized_utilization))
    }

    /// Total deadline misses across every replayed epoch of the sweep.
    pub fn total_replay_misses(&self) -> u64 {
        self.points.iter().map(|p| p.replay_misses).sum()
    }

    /// Renders a markdown table, one row per target-utilization point.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| U / m | accepted | fast path | repair | repartition | moves/admit | inflate µs/admit | replay misses | RTA cap hits |\n\
             |---|---|---|---|---|---|---|---|---|\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "| {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} | {:.1} | {} | {} |\n",
                p.normalized_utilization,
                p.acceptance_ratio,
                p.fast_path_ratio,
                p.repair_ratio,
                p.fallback_ratio,
                p.migrations_per_admission,
                p.inflation_us_per_admission,
                p.replay_misses,
                p.rta_cap_exhaustions,
            ));
        }
        out
    }

    /// Renders a CSV with a header row, suitable for plotting.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "normalized_utilization,arrivals,admitted,acceptance_ratio,fast_path_ratio,\
             repair_ratio,fallback_ratio,migrations_per_admission,inflation_us_per_admission,\
             replayed_epochs,replay_misses,rta_cap_exhaustions\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{:.4},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{},{},{}\n",
                p.normalized_utilization,
                p.arrivals,
                p.admitted,
                p.acceptance_ratio,
                p.fast_path_ratio,
                p.repair_ratio,
                p.fallback_ratio,
                p.migrations_per_admission,
                p.inflation_us_per_admission,
                p.replayed_epochs,
                p.replay_misses,
                p.rta_cap_exhaustions,
            ));
        }
        out
    }
}

/// The online-churn experiment driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnExperiment {
    cores: usize,
    events_per_trace: usize,
    traces_per_point: usize,
    utilization_points: Vec<f64>,
    max_repair_moves: usize,
    overhead: OverheadModel,
    cost_model: CostModelSpec,
    mean_interarrival: Option<Time>,
    lifetime_range: Option<(Time, Time)>,
    churn_family: ChurnFamily,
    replay_duration: Option<Time>,
    release_jitter: Time,
    seed: u64,
    threads: usize,
}

impl Default for ChurnExperiment {
    fn default() -> Self {
        ChurnExperiment {
            cores: 4,
            events_per_trace: 120,
            traces_per_point: 20,
            utilization_points: vec![0.5, 0.6, 0.7, 0.8, 0.9],
            max_repair_moves: 2,
            overhead: OverheadModel::zero(),
            cost_model: CostModelSpec::Zero,
            mean_interarrival: None,
            lifetime_range: None,
            churn_family: ChurnFamily::Poisson,
            replay_duration: Some(Time::from_millis(50)),
            release_jitter: Time::ZERO,
            seed: 0,
            threads: 1,
        }
    }
}

impl ChurnExperiment {
    /// A driver with the default churn grid: 4 cores, 120 events per trace,
    /// 20 traces per point, targets 0.5 … 0.9, repair bound 2, 50 ms epoch
    /// replay.
    pub fn new() -> Self {
        ChurnExperiment::default()
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets how many events each churn trace contains.
    pub fn events_per_trace(mut self, events: usize) -> Self {
        self.events_per_trace = events;
        self
    }

    /// Sets how many traces are generated per sweep point.
    pub fn traces_per_point(mut self, traces: usize) -> Self {
        self.traces_per_point = traces;
        self
    }

    /// Sets the target normalized-utilization sweep points.
    pub fn utilization_points(mut self, points: Vec<f64>) -> Self {
        self.utilization_points = points;
        self
    }

    /// Sets the repair bound `k` of the controller.
    pub fn max_repair_moves(mut self, k: usize) -> Self {
        self.max_repair_moves = k;
        self
    }

    /// Sets the overhead model folded into the admission analysis.
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the migration cost model the controller charges: every split
    /// piece and repair relocation inflates the affected task's analysis
    /// WCET by the model's per-job migration charge.
    pub fn cost_model(mut self, model: CostModelSpec) -> Self {
        self.cost_model = model;
        self
    }

    /// Sets the mean inter-arrival time of the churn process (`None` keeps
    /// the generator default). Longer inter-arrivals shrink the concurrent
    /// task population, concentrating the offered load in heavier tasks.
    pub fn mean_interarrival(mut self, mean: Time) -> Self {
        self.mean_interarrival = Some(mean);
        self
    }

    /// Sets the log-uniform task lifetime range (`None` keeps the
    /// generator default).
    pub fn lifetime_range(mut self, min: Time, max: Time) -> Self {
        self.lifetime_range = Some((min, max));
        self
    }

    /// Selects the churn-process family driving every trace (Poisson by
    /// default; `Bursty` modulates arrivals through a two-state Markov
    /// chain at the same long-run rate).
    pub fn churn_family(mut self, family: ChurnFamily) -> Self {
        self.churn_family = family;
        self
    }

    /// Sets the per-epoch replay duration; `None` disables replay.
    pub fn replay_duration(mut self, duration: Option<Time>) -> Self {
        self.replay_duration = duration;
        self
    }

    /// Sets the maximum sporadic release jitter the epoch replay injects
    /// per job (seeded per grid cell, so the sweep stays deterministic and
    /// thread-count invariant). Zero replays synchronous-periodic.
    pub fn release_jitter(mut self, jitter: Time) -> Self {
        self.release_jitter = jitter;
        self
    }

    /// Sets the RNG seed for trace generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads the sweep fans out across
    /// (`0` = one per available core). Results are identical for every
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the sweep.
    pub fn run(&self) -> ChurnResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> ChurnResults {
        self.run_full_with_progress(progress).results
    }

    /// The full sweep: results plus the merged telemetry registry the
    /// CLI's `--metrics` flag writes.
    pub fn run_full_with_progress(&self, progress: &dyn ProgressSink) -> ChurnRun {
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(
                self.seed,
                self.utilization_points.len(),
                self.traces_per_point,
                progress,
                |cell| {
                    let target = self.utilization_points[cell.point_idx];
                    let mut generator = ChurnGenerator::new()
                        .cores(self.cores)
                        .target_normalized_utilization(target)
                        .events(self.events_per_trace)
                        .family(self.churn_family)
                        .seed(cell.seed);
                    if let Some(mean) = self.mean_interarrival {
                        generator = generator.mean_interarrival(mean);
                    }
                    if let Some((min, max)) = self.lifetime_range {
                        generator = generator.lifetime_range(min, max);
                    }
                    let events = generator.generate().ok()?;
                    let config = OnlineConfig::builder()
                        .cores(self.cores)
                        .overhead(self.overhead)
                        .max_repair_moves(self.max_repair_moves)
                        .cost_model(self.cost_model.clone())
                        .build();
                    let mut controller = AdmissionController::new(config).ok()?;
                    // Replay injects the same overheads the admission
                    // analysis charges (a miss flags an analysis that
                    // under-charges them), plus the optional sporadic
                    // release jitter, seeded per cell for determinism.
                    let replay = self.replay_duration.map(|duration| {
                        ReplayConfig::new(duration)
                            .with_overhead(self.overhead)
                            .with_release_jitter(self.release_jitter, cell.seed)
                    });
                    // Grid cells run wholly on one worker thread, so the
                    // thread-local delta is exactly this cell's count.
                    let exhaustions_before = rta::thread_cap_exhaustions();
                    let (_, replay_outcome) = run_trace(&mut controller, &events, replay.as_ref());
                    let cap_exhaustions = rta::thread_cap_exhaustions() - exhaustions_before;
                    let registry = controller.metrics().registry().clone();
                    Some((
                        *controller.stats(),
                        replay_outcome,
                        cap_exhaustions,
                        registry,
                    ))
                },
            );
        let points = self
            .utilization_points
            .iter()
            .zip(&grid)
            .map(|(&target, traces)| aggregate_point(target, traces))
            .collect();
        let mut metrics = Registry::new();
        for cell in grid.iter().flatten() {
            metrics.merge(&cell.3);
        }
        ChurnRun {
            results: ChurnResults { points },
            metrics,
        }
    }
}

/// One grid cell's outcome: controller stats, replay tallies, the cell's
/// RTA cap-exhaustion delta, and its telemetry registry.
type ChurnCell = (spms_online::ControllerStats, ReplayOutcome, u64, Registry);

/// Folds one point's per-trace cell outcomes into a [`ChurnPoint`]
/// (always on the merged, ordered results — never inside workers).
fn aggregate_point(target: f64, traces: &[ChurnCell]) -> ChurnPoint {
    let mut arrivals = 0u64;
    let mut admitted = 0u64;
    let mut fast = 0u64;
    let mut repairs = 0u64;
    let mut fallbacks = 0u64;
    let mut migrations = 0u64;
    let mut inflation_ns = 0u64;
    let mut cap_exhaustions = 0u64;
    let mut replay = ReplayOutcome::default();
    for (stats, outcome, exhaustions, _) in traces {
        arrivals += stats.arrivals;
        admitted += stats.admitted;
        fast += stats.fast_whole + stats.fast_split;
        repairs += stats.repairs;
        fallbacks += stats.full_repartitions;
        migrations += stats.migrations_caused;
        inflation_ns += stats.inflation_charged_ns;
        cap_exhaustions += exhaustions;
        replay.absorb(*outcome);
    }
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    ChurnPoint {
        normalized_utilization: target,
        arrivals,
        admitted,
        acceptance_ratio: ratio(admitted, arrivals),
        fast_path_ratio: ratio(fast, admitted),
        repair_ratio: ratio(repairs, admitted),
        fallback_ratio: ratio(fallbacks, admitted),
        migrations_per_admission: ratio(migrations, admitted),
        inflation_us_per_admission: ratio(inflation_ns, admitted) / 1_000.0,
        replayed_epochs: replay.epochs,
        replay_misses: replay.deadline_misses,
        rta_cap_exhaustions: cap_exhaustions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ChurnExperiment {
        ChurnExperiment::new()
            .cores(2)
            .events_per_trace(30)
            .traces_per_point(4)
            .utilization_points(vec![0.5, 0.8])
            .replay_duration(Some(Time::from_millis(20)))
            .seed(3)
    }

    #[test]
    fn ratios_are_probabilities_and_replay_is_clean() {
        let results = quick().run();
        assert_eq!(results.points().len(), 2);
        for p in results.points() {
            assert!(p.arrivals > 0);
            assert!((0.0..=1.0).contains(&p.acceptance_ratio));
            assert!((0.0..=1.0).contains(&p.fast_path_ratio));
            assert!((0.0..=1.0).contains(&p.repair_ratio));
            assert!((0.0..=1.0).contains(&p.fallback_ratio));
            assert!(p.replayed_epochs > 0);
        }
        assert_eq!(results.total_replay_misses(), 0);
    }

    #[test]
    fn acceptance_degrades_gracefully_with_load() {
        let results = quick().run();
        let low = results.point_at(0.5).unwrap().acceptance_ratio;
        let high = results.point_at(0.8).unwrap().acceptance_ratio;
        assert!(low >= high, "low-load acceptance {low} < high-load {high}");
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let serial = quick().run();
        let parallel = quick().threads(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_are_reproducible_and_seed_sensitive() {
        assert_eq!(quick().run(), quick().run());
        assert_ne!(quick().run(), quick().seed(99).run());
    }

    #[test]
    fn overhead_model_reaches_both_analysis_and_replay() {
        // With a real overhead model the admission analysis inflates WCETs
        // and the replay injects the same costs at run time; epochs must
        // still simulate cleanly (the analysis is the more conservative
        // side), and acceptance can only drop.
        let base = quick().run();
        let with_overhead = quick().overhead(OverheadModel::paper_n4()).run();
        assert_eq!(with_overhead.total_replay_misses(), 0);
        for (a, b) in base.points().iter().zip(with_overhead.points()) {
            assert!(b.acceptance_ratio <= a.acceptance_ratio + 1e-9);
        }
    }

    #[test]
    fn jittered_replay_is_deterministic_thread_invariant_and_miss_free() {
        let jittered = || quick().release_jitter(Time::from_millis(1));
        let results = jittered().run();
        assert_eq!(results.total_replay_misses(), 0);
        assert_eq!(results, jittered().run());
        assert_eq!(results, jittered().threads(4).run());
        for p in results.points() {
            assert!(p.replayed_epochs > 0);
        }
    }

    #[test]
    fn cap_exhaustion_column_is_present_and_thread_invariant() {
        let results = quick().run();
        // The moderate default grid converges everywhere; the point is that
        // the column exists, serializes and stays invariant across thread
        // counts (per-cell thread-local deltas, not the process counter).
        assert_eq!(
            results
                .points()
                .iter()
                .map(|p| p.rta_cap_exhaustions)
                .collect::<Vec<_>>(),
            quick()
                .threads(4)
                .run()
                .points()
                .iter()
                .map(|p| p.rta_cap_exhaustions)
                .collect::<Vec<_>>()
        );
        assert!(results.render_csv().contains("rta_cap_exhaustions"));
        assert!(results.render_markdown().contains("RTA cap hits"));
    }

    #[test]
    fn a_charged_cost_model_shows_up_in_the_inflation_column() {
        use spms_overhead::CrpdCostModel;
        // A small task population concentrates the load in heavy tasks so
        // the traces actually split (the default churn population is too
        // fine-grained to ever need a split piece).
        let split_prone = || {
            quick()
                .mean_interarrival(Time::from_millis(200))
                .lifetime_range(Time::from_millis(200), Time::from_secs(1))
        };
        let free = split_prone().run();
        let charged = split_prone()
            .cost_model(CostModelSpec::Crpd(CrpdCostModel::heavy()))
            .run();
        assert_eq!(charged.total_replay_misses(), 0);
        let mut charged_something = false;
        for (a, b) in free.points().iter().zip(charged.points()) {
            assert_eq!(a.inflation_us_per_admission, 0.0);
            // Charging migrations can only make admission harder.
            assert!(b.acceptance_ratio <= a.acceptance_ratio + 1e-9);
            charged_something |= b.inflation_us_per_admission > 0.0;
        }
        assert!(
            charged_something,
            "the high-load point should split at least once and be charged"
        );
    }

    #[test]
    fn bursty_sweeps_are_deterministic_and_distinct_from_poisson() {
        let bursty = || quick().churn_family(ChurnFamily::Bursty);
        let results = bursty().run();
        assert_eq!(results, bursty().run());
        assert_eq!(results, bursty().threads(4).run());
        assert_eq!(results.total_replay_misses(), 0);
        assert_ne!(
            results,
            quick().run(),
            "bursty and Poisson sweeps must not coincide"
        );
    }

    #[test]
    fn disabling_replay_zeroes_epochs() {
        let results = quick().replay_duration(None).run();
        for p in results.points() {
            assert_eq!(p.replayed_epochs, 0);
            assert_eq!(p.replay_misses, 0);
        }
    }

    #[test]
    fn rendering_contains_every_point() {
        let results = quick().run();
        let md = results.render_markdown();
        let csv = results.render_csv();
        assert!(md.contains("0.50"));
        assert!(md.contains("0.80"));
        assert!(md.contains("replay misses"));
        assert!(md.contains("inflate µs/admit"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
        assert!(csv.starts_with("normalized_utilization"));
        assert!(csv.contains("inflation_us_per_admission"));
    }
}
