//! The soak experiment: million-event endurance runs of the sharded
//! admission service.
//!
//! For each configured shard count (the sweep's point axis) this driver
//! generates churn traces and pushes them through the full engine stack —
//! [`ChurnGenerator`] → [`EventLoop`] → [`ShardedAdmission`] — measuring
//! decision throughput and latency percentiles while asserting the
//! determinism contract:
//!
//! * every shard count consumes the **same** traces (trace seeds derive
//!   from the set index only, never from the shard-count axis), and with
//!   leases disabled the processed event stream is byte-identical across
//!   shard counts (`events_digest`, surfaced as
//!   `event_stream_shard_invariant`);
//! * the decision log per shard count is deterministic for any `--threads`
//!   value (`decisions_digest`);
//! * sampled schedulability replays through the `spms-sim` simulator must
//!   observe zero deadline misses (`replay_misses`).
//!
//! Decision outcomes legitimately differ *between* shard counts: splitting
//! the core set constrains placement (a walled 2-shard service cannot
//! split a task across the shard boundary), which is exactly the capacity
//! cost the sweep quantifies. Wall-clock throughput/latency columns live
//! in the `timing` array — the one non-deterministic object in the output,
//! so CI diffs strip exactly that.
//!
//! Two optional scenario columns ride on the same traces:
//!
//! * [`cross_shard`](SoakExperiment::cross_shard) reruns every multi-shard
//!   point with the cross-shard split planner enabled and reports the
//!   acceptance it recovers over the walled baseline
//!   ([`SoakResults::cross_shard`]); sampled replays then run against the
//!   [`stitch_partitions`]-reassembled global partition, because a
//!   cross-shard chain is only complete fleet-wide;
//! * [`leased_scenario`](SoakExperiment::leased_scenario) reruns every
//!   point with an admission lease armed and renewal heartbeats injected
//!   at half the lease ([`SoakResults::leased_points`]). Lease-synthesized
//!   departures depend on admission outcomes, so the leased per-shard-count
//!   event digests **legitimately diverge** — they are reported per point
//!   and deliberately excluded from `event_stream_shard_invariant`.
//!
//! The churn process itself is selectable via
//! [`churn_family`](SoakExperiment::churn_family): the default Poisson
//! process or the bursty Markov-modulated variant.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use spms_core::{stitch_partitions, Partition};
use spms_faults::{FaultPlan, FaultSpec};
use spms_online::{
    inject_renewals,
    replay::{replay_epoch, ReplayConfig, ReplayOutcome},
    ChurnFamily, ChurnGenerator, Decision, EventLoop, EventLoopConfig, FaultStats, OnlineConfig,
    ShardedAdmission, TimedEvent,
};
use spms_overhead::CostModelSpec;
use spms_task::Time;
use spms_telemetry::{Histogram, MetricClass, Registry};

use crate::progress::{NullProgress, ProgressSink, ShiftedProgress};
use crate::runner::{derive_seed, SweepRunner};

/// Per-trace outcome: deterministic engine counters plus the wall-clock
/// measurements.
#[derive(Debug, Clone)]
struct SoakTrace {
    events_processed: u64,
    arrivals: u64,
    admitted: u64,
    rejected: u64,
    departures: u64,
    overflow_admissions: u64,
    rebalance_ticks: u64,
    rebalance_moves: u64,
    lease_expirations: u64,
    lease_renewals: u64,
    cross_shard_admissions: u64,
    inflation_charged_ns: u64,
    replay: ReplayOutcome,
    events_digest: u64,
    decisions_digest: u64,
    elapsed: Duration,
    latency: Histogram,
    metrics: Registry,
    captured: Option<Vec<TimedEvent>>,
    fault: FaultStats,
}

/// Aggregated deterministic behaviour at one shard count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SoakPoint {
    /// Number of admission shards the core set was split into.
    pub shards: usize,
    /// Workload events processed across all traces of this point
    /// (including lease-synthesized departures).
    pub events_processed: u64,
    /// Arrival events decided.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Departures of admitted tasks.
    pub departures: u64,
    /// Admissions that overflowed to a non-home shard.
    pub overflow_admissions: u64,
    /// Rebalance passes run.
    pub rebalance_ticks: u64,
    /// Tasks migrated between shards by rebalancing.
    pub rebalance_moves: u64,
    /// Departures synthesized by lease expiry.
    pub lease_expirations: u64,
    /// Lease renewals applied by the event loop (0 unless the trace
    /// carries `Renew` heartbeats — i.e. on every column but the leased
    /// scenario).
    pub lease_renewals: u64,
    /// Admissions placed by the cross-shard split planner (always 0 on the
    /// walled baseline points; non-zero only inside cross-shard reruns).
    pub cross_shard_admissions: u64,
    /// Nanoseconds of migration-cost WCET inflation charged across every
    /// admission and rebalance move (0 under the free cost model).
    pub inflation_charged_ns: u64,
    /// Simulator epochs replayed (sampled admissions).
    pub replayed_epochs: u64,
    /// Deadline misses across every replayed epoch (must stay 0).
    pub replay_misses: u64,
    /// Order-sensitive FNV-1a digest of the processed event stream —
    /// equal across shard counts when leases are off.
    pub events_digest: u64,
    /// Order-sensitive FNV-1a digest of the service decision log —
    /// deterministic per shard count for any thread count.
    pub decisions_digest: u64,
}

/// Wall-clock throughput and latency columns of one shard count: the
/// non-deterministic half of the output, grouped so CI diffs can strip
/// exactly this array.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakTiming {
    /// Number of admission shards.
    pub shards: usize,
    /// Service decisions per wall-clock second over all traces.
    pub decisions_per_sec: f64,
    /// Median decision latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile decision latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile decision latency, microseconds.
    pub p999_us: f64,
    /// Total wall-clock milliseconds deciding this point's traces.
    pub elapsed_ms: u64,
}

/// Walled-vs-cross-shard acceptance at one multi-shard point: the same
/// traces run twice, once with the planner off (the baseline `points`
/// entry) and once with it on.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossShardComparison {
    /// Number of admission shards.
    pub shards: usize,
    /// Arrivals admitted by the walled baseline run.
    pub admitted_walled: u64,
    /// Arrivals admitted with the cross-shard split planner enabled.
    pub admitted_cross: u64,
    /// `admitted_cross - admitted_walled`: the acceptance the planner
    /// recovered (signed — an early boundary split can in principle crowd
    /// out later arrivals).
    pub recovered: i64,
    /// Admissions that actually went through the cross-shard planner.
    pub cross_shard_admissions: u64,
    /// Deadline misses across the cross-shard run's sampled replays of the
    /// stitched global partition (must stay 0).
    pub replay_misses: u64,
}

/// Everything a soak run produces: the serializable [`SoakResults`]
/// artifact plus the live telemetry registries, which stay outside the
/// artifact so the JSON envelope is unchanged and metric exposition is an
/// explicit opt-in (`--metrics`).
#[derive(Debug, Clone)]
pub struct SoakRun {
    /// The serializable sweep artifact.
    pub results: SoakResults,
    /// Processed event log of the first grid cell, when capture was on.
    pub captured_trace: Option<Vec<TimedEvent>>,
    /// Merged registry per shard count, in configuration order.
    pub point_metrics: Vec<Registry>,
    /// All point registries merged into one run-wide registry.
    pub metrics: Registry,
    /// Fault-injection and recovery counters per shard count (all zero
    /// unless a fault plan was loaded). Kept out of [`SoakResults`] so
    /// the fault-free soak artifact stays byte-identical; the chaos
    /// harness serializes these in its own report.
    pub fault_stats: Vec<FaultStats>,
}

/// Results of a soak sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SoakResults {
    points: Vec<SoakPoint>,
    /// Whether every shard count processed a byte-identical event stream
    /// (always true with leases off; leases make expirations depend on
    /// admission outcomes, which may differ between shard layouts).
    pub event_stream_shard_invariant: bool,
    /// Total deadline misses across every sampled replay of every point —
    /// including the cross-shard and leased scenario reruns (must stay 0).
    pub replay_misses: u64,
    /// Recovered-acceptance comparison per multi-shard point; empty unless
    /// the cross-shard scenario was enabled.
    pub cross_shard: Vec<CrossShardComparison>,
    /// Lease-scenario reruns of every point (lease armed, renewal
    /// heartbeats injected at half the lease); empty unless the leased
    /// scenario was enabled. Their per-shard-count event digests
    /// **legitimately diverge**: lease-synthesized departures depend on
    /// admission outcomes, which differ between shard layouts.
    pub leased_points: Vec<SoakPoint>,
    /// Wall-clock measurements per shard count (non-deterministic).
    pub timing: Vec<SoakTiming>,
}

impl SoakResults {
    /// Per-shard-count points, in configuration order.
    pub fn points(&self) -> &[SoakPoint] {
        &self.points
    }

    /// Renders markdown tables: deterministic counters, then the
    /// throughput/latency columns.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| shards | events | arrivals | admitted | rejected | overflow | rebalance moves | inflate µs | replay misses | events digest | decisions digest |\n\
             |---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {:#018x} | {:#018x} |\n",
                p.shards,
                p.events_processed,
                p.arrivals,
                p.admitted,
                p.rejected,
                p.overflow_admissions,
                p.rebalance_moves,
                p.inflation_charged_ns / 1_000,
                p.replay_misses,
                p.events_digest,
                p.decisions_digest,
            ));
        }
        out.push_str(&format!(
            "\nevent stream shard-invariant: {}\nreplay misses: {}\n",
            self.event_stream_shard_invariant, self.replay_misses,
        ));
        if !self.cross_shard.is_empty() {
            out.push_str(
                "\n| shards | admitted (walled) | admitted (cross-shard) | recovered | cross-shard admissions | replay misses |\n\
                 |---|---|---|---|---|---|\n",
            );
            for c in &self.cross_shard {
                out.push_str(&format!(
                    "| {} | {} | {} | {:+} | {} | {} |\n",
                    c.shards,
                    c.admitted_walled,
                    c.admitted_cross,
                    c.recovered,
                    c.cross_shard_admissions,
                    c.replay_misses,
                ));
            }
        }
        if !self.leased_points.is_empty() {
            out.push_str(
                "\n| shards (leased) | events | admitted | renewals | expirations | events digest |\n\
                 |---|---|---|---|---|---|\n",
            );
            for p in &self.leased_points {
                out.push_str(&format!(
                    "| {} | {} | {} | {} | {} | {:#018x} |\n",
                    p.shards,
                    p.events_processed,
                    p.admitted,
                    p.lease_renewals,
                    p.lease_expirations,
                    p.events_digest,
                ));
            }
            out.push_str(
                "\nleased event digests legitimately diverge across shard counts: \
                 lease expirations depend on admission outcomes.\n",
            );
        }
        out.push_str(
            "\n| shards | decisions/sec | p50 µs | p99 µs | p999 µs | elapsed ms |\n\
             |---|---|---|---|---|---|\n",
        );
        for t in &self.timing {
            out.push_str(&format!(
                "| {} | {:.0} | {:.2} | {:.2} | {:.2} | {} |\n",
                t.shards, t.decisions_per_sec, t.p50_us, t.p99_us, t.p999_us, t.elapsed_ms,
            ));
        }
        out
    }

    /// Renders the deterministic per-point data as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "shards,events_processed,arrivals,admitted,rejected,overflow_admissions,rebalance_moves,inflation_charged_ns,replay_misses,events_digest,decisions_digest\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{:#018x},{:#018x}\n",
                p.shards,
                p.events_processed,
                p.arrivals,
                p.admitted,
                p.rejected,
                p.overflow_admissions,
                p.rebalance_moves,
                p.inflation_charged_ns,
                p.replay_misses,
                p.events_digest,
                p.decisions_digest,
            ));
        }
        out
    }
}

/// The soak driver. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoakExperiment {
    cores: usize,
    shard_counts: Vec<usize>,
    events_per_trace: usize,
    traces_per_point: usize,
    target_utilization: f64,
    max_repair_moves: usize,
    cost_model: CostModelSpec,
    rebalance_period: Option<Time>,
    rebalance_max_moves: usize,
    lease: Option<Time>,
    replay_sample_every: usize,
    capture_trace: bool,
    churn_family: ChurnFamily,
    cross_shard: bool,
    leased_scenario: Option<Time>,
    faults: Option<FaultPlan>,
    audit_period: Option<Time>,
    seed: u64,
    threads: usize,
}

impl Default for SoakExperiment {
    fn default() -> Self {
        SoakExperiment {
            cores: 8,
            shard_counts: vec![1, 2],
            events_per_trace: 10_000,
            traces_per_point: 1,
            target_utilization: 0.6,
            max_repair_moves: 2,
            cost_model: CostModelSpec::Zero,
            rebalance_period: Some(Time::from_millis(250)),
            rebalance_max_moves: 4,
            lease: None,
            replay_sample_every: 0,
            capture_trace: false,
            churn_family: ChurnFamily::Poisson,
            cross_shard: false,
            leased_scenario: None,
            faults: None,
            audit_period: None,
            seed: 0,
            threads: 1,
        }
    }
}

impl SoakExperiment {
    /// A driver with the default grid: 8 cores split into 1 and 2 shards,
    /// one 10 000-event trace per point, rebalance every 250 ms, replay
    /// sampling off.
    pub fn new() -> Self {
        SoakExperiment::default()
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the shard-count axis.
    pub fn shard_counts(mut self, counts: Vec<usize>) -> Self {
        self.shard_counts = counts;
        self
    }

    /// Sets how many events each churn trace contains.
    pub fn events_per_trace(mut self, events: usize) -> Self {
        self.events_per_trace = events;
        self
    }

    /// Sets how many traces are generated per shard count.
    pub fn traces_per_point(mut self, traces: usize) -> Self {
        self.traces_per_point = traces;
        self
    }

    /// Sets the target normalized utilization of the churn process.
    pub fn target_utilization(mut self, target: f64) -> Self {
        self.target_utilization = target;
        self
    }

    /// Sets the repair bound `k` of every shard.
    pub fn max_repair_moves(mut self, k: usize) -> Self {
        self.max_repair_moves = k;
        self
    }

    /// Sets the migration cost model every shard charges on splits, repair
    /// relocations and rebalance moves.
    pub fn cost_model(mut self, model: CostModelSpec) -> Self {
        self.cost_model = model;
        self
    }

    /// Sets the rebalance tick period (`None` disables rebalancing).
    pub fn rebalance_period(mut self, period: Option<Time>) -> Self {
        self.rebalance_period = period;
        self
    }

    /// Sets the migration budget of each rebalance tick.
    pub fn rebalance_max_moves(mut self, moves: usize) -> Self {
        self.rebalance_max_moves = moves;
        self
    }

    /// Sets the admission lease (`None` disables deadline expirations).
    /// Leases make the processed event stream depend on admission
    /// outcomes, so `event_stream_shard_invariant` may drop to `false`.
    pub fn lease(mut self, lease: Option<Time>) -> Self {
        self.lease = lease;
        self
    }

    /// Replays every Nth admission's shard partition through the
    /// simulator (0 disables sampling).
    pub fn replay_sample_every(mut self, every: usize) -> Self {
        self.replay_sample_every = every;
        self
    }

    /// Keeps the processed event log of the first grid cell for writing a
    /// replayable trace.
    pub fn capture_trace(mut self, capture: bool) -> Self {
        self.capture_trace = capture;
        self
    }

    /// Selects the churn-process family driving every trace (Poisson by
    /// default; `Bursty` modulates arrivals through a two-state Markov
    /// chain at the same long-run rate).
    pub fn churn_family(mut self, family: ChurnFamily) -> Self {
        self.churn_family = family;
        self
    }

    /// Enables the cross-shard scenario: every multi-shard point is rerun
    /// on the same traces with the cross-shard split planner enabled, and
    /// the recovered acceptance lands in [`SoakResults::cross_shard`].
    pub fn cross_shard(mut self, enabled: bool) -> Self {
        self.cross_shard = enabled;
        self
    }

    /// Enables the leased scenario: every point is rerun with this
    /// admission lease armed and renewal heartbeats injected into the
    /// trace at half the lease, landing in [`SoakResults::leased_points`].
    /// Unlike [`lease`](Self::lease) this never touches the baseline
    /// points, so `event_stream_shard_invariant` keeps its meaning.
    pub fn leased_scenario(mut self, lease: Option<Time>) -> Self {
        self.leased_scenario = lease;
        self
    }

    /// Loads a fault plan into every grid cell: the same seeded faults
    /// (crashes, stalls, corruptions, cost spikes) fire at the same
    /// scenario times in every cell, exercising shard failover and
    /// recovery replay. `None` (the default) injects nothing and leaves
    /// every deterministic output byte-identical to a fault-free build.
    pub fn faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.faults = plan;
        self
    }

    /// Arms the periodic self-audit: every `period` of scenario time one
    /// cached core's memoized RTA is re-verified against a scratch
    /// recomputation (and rebuilt on mismatch).
    pub fn audit_period(mut self, period: Option<Time>) -> Self {
        self.audit_period = period;
        self
    }

    /// Sets the RNG root seed for trace generation and tie-shuffling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    /// The deterministic half of the results is identical for every
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Last timestamp (ms) of the first grid cell's churn trace — the
    /// scenario horizon spec-generated fault plans are drawn against,
    /// clamped to at least one second. Mirrors the cell's generator
    /// configuration exactly (same derived seed, same knobs), so
    /// spec-drawn faults land inside the busy part of the run.
    pub fn measured_horizon_ms(&self) -> u64 {
        let trace = ChurnGenerator::new()
            .cores(self.cores)
            .target_normalized_utilization(self.target_utilization)
            .events(self.events_per_trace)
            .family(self.churn_family)
            .seed(derive_seed(self.seed, 0, 0))
            .generate_timed()
            .unwrap_or_default();
        trace
            .last()
            .map(|timed| timed.at.as_nanos() / 1_000_000)
            .unwrap_or(0)
            .max(1_000)
    }

    /// Expands a [`FaultSpec`] into a concrete plan against the measured
    /// horizon, drawing shard indices up to the largest shard count in
    /// the sweep (cells with fewer shards ignore out-of-range targets).
    pub fn plan_faults(&self, spec: &FaultSpec) -> FaultPlan {
        let shards = self.shard_counts.iter().copied().max().unwrap_or(1);
        let cores_per_shard = (self.cores / shards.max(1)).max(1);
        spec.plan(self.measured_horizon_ms(), shards, cores_per_shard)
    }

    /// Runs the soak sweep.
    pub fn run(&self) -> SoakResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> SoakResults {
        self.run_captured_with_progress(progress).0
    }

    /// [`run_with_progress`](Self::run_with_progress) that additionally
    /// returns the processed event log of the first grid cell when
    /// [`capture_trace`](Self::capture_trace) was requested — kept outside
    /// [`SoakResults`] so the serialized artifact stays compact while the
    /// caller can write the log as a replayable JSON-lines trace.
    pub fn run_captured_with_progress(
        &self,
        progress: &dyn ProgressSink,
    ) -> (SoakResults, Option<Vec<TimedEvent>>) {
        let run = self.run_full_with_progress(progress);
        (run.results, run.captured_trace)
    }

    /// The full soak run: results, the optionally captured trace, and the
    /// merged metric registries ([`crate::metrics`]-style telemetry the
    /// CLI's `--metrics` flag writes). Registries merge per-cell engines
    /// in grid order, so the deterministic section is identical for every
    /// `--threads` value.
    pub fn run_full_with_progress(&self, progress: &dyn ProgressSink) -> SoakRun {
        let cross_counts: Vec<usize> = if self.cross_shard {
            self.shard_counts
                .iter()
                .copied()
                .filter(|&s| s > 1)
                .collect()
        } else {
            Vec::new()
        };
        let leased_counts: Vec<usize> = if self.leased_scenario.is_some() {
            self.shard_counts.clone()
        } else {
            Vec::new()
        };
        let base_cells = self.shard_counts.len() * self.traces_per_point;
        let cross_cells = cross_counts.len() * self.traces_per_point;
        let grand_total = base_cells + cross_cells + leased_counts.len() * self.traces_per_point;
        let runner = SweepRunner::new().threads(self.threads);

        let base_progress = ShiftedProgress::new(progress, 0, grand_total);
        let grid = runner.run_grid_with_progress(
            self.seed,
            self.shard_counts.len(),
            self.traces_per_point,
            &base_progress,
            |cell| {
                let shards = self.shard_counts[cell.point_idx];
                // Trace seeds depend on the set index only: every shard
                // count (and every scenario rerun below) consumes the same
                // traces, so their digests and admissions are comparable.
                let trace_seed = derive_seed(self.seed, 0, cell.set_idx);
                let capture = self.capture_trace && cell.point_idx == 0 && cell.set_idx == 0;
                self.soak_cell(trace_seed, shards, false, self.lease, None, capture)
            },
        );

        let mut points = Vec::with_capacity(self.shard_counts.len());
        let mut timing = Vec::with_capacity(self.shard_counts.len());
        let mut point_metrics = Vec::with_capacity(self.shard_counts.len());
        let mut captured_trace = None;
        let mut total_misses = 0u64;
        let mut fault_stats = Vec::with_capacity(self.shard_counts.len());
        for (&shards, traces) in self.shard_counts.iter().zip(&grid) {
            let (point, elapsed, latency, mut registry, fault) = Self::fold_point(shards, traces);
            fault_stats.push(fault);
            for outcome in traces {
                if let Some(log) = &outcome.captured {
                    captured_trace.get_or_insert_with(|| log.clone());
                }
            }
            total_misses += point.replay_misses;
            let us = |q: f64| latency.value_at_quantile(q) as f64 / 1000.0;
            let decisions_per_sec = if elapsed.as_secs_f64() > 0.0 {
                point.events_processed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            };
            let rate_gauge = registry.gauge("spms_timing_decisions_per_sec", MetricClass::Timing);
            registry.set_gauge(rate_gauge, decisions_per_sec as u64);
            timing.push(SoakTiming {
                shards,
                decisions_per_sec,
                p50_us: us(0.50),
                p99_us: us(0.99),
                p999_us: us(0.999),
                elapsed_ms: elapsed.as_millis() as u64,
            });
            points.push(point);
            point_metrics.push(registry);
        }
        let invariant = points
            .windows(2)
            .all(|w| w[0].events_digest == w[1].events_digest);

        // Cross-shard scenario: rerun every multi-shard point on the very
        // same traces with the planner enabled and compare acceptance
        // against the walled baseline above.
        let mut cross_comparisons = Vec::with_capacity(cross_counts.len());
        if !cross_counts.is_empty() {
            let cross_progress = ShiftedProgress::new(progress, base_cells, grand_total);
            let cross_grid = runner.run_grid_with_progress(
                self.seed,
                cross_counts.len(),
                self.traces_per_point,
                &cross_progress,
                |cell| {
                    let shards = cross_counts[cell.point_idx];
                    let trace_seed = derive_seed(self.seed, 0, cell.set_idx);
                    self.soak_cell(trace_seed, shards, true, self.lease, None, false)
                },
            );
            for (&shards, traces) in cross_counts.iter().zip(&cross_grid) {
                let (cross_point, ..) = Self::fold_point(shards, traces);
                let walled = points
                    .iter()
                    .find(|p| p.shards == shards)
                    .map_or(0, |p| p.admitted);
                total_misses += cross_point.replay_misses;
                cross_comparisons.push(CrossShardComparison {
                    shards,
                    admitted_walled: walled,
                    admitted_cross: cross_point.admitted,
                    recovered: cross_point.admitted as i64 - walled as i64,
                    cross_shard_admissions: cross_point.cross_shard_admissions,
                    replay_misses: cross_point.replay_misses,
                });
            }
        }

        // Leased scenario: the same traces with renewal heartbeats
        // injected at half the lease, run with the lease armed.
        let mut leased_points = Vec::with_capacity(leased_counts.len());
        if let Some(lease) = self.leased_scenario {
            let renew_every = Time::from_nanos((lease.as_nanos() / 2).max(1));
            let leased_progress =
                ShiftedProgress::new(progress, base_cells + cross_cells, grand_total);
            let leased_grid = runner.run_grid_with_progress(
                self.seed,
                leased_counts.len(),
                self.traces_per_point,
                &leased_progress,
                |cell| {
                    let shards = leased_counts[cell.point_idx];
                    let trace_seed = derive_seed(self.seed, 0, cell.set_idx);
                    self.soak_cell(
                        trace_seed,
                        shards,
                        false,
                        Some(lease),
                        Some(renew_every),
                        false,
                    )
                },
            );
            for (&shards, traces) in leased_counts.iter().zip(&leased_grid) {
                let (point, ..) = Self::fold_point(shards, traces);
                total_misses += point.replay_misses;
                leased_points.push(point);
            }
        }

        let mut metrics = Registry::new();
        for registry in &point_metrics {
            metrics.merge(registry);
        }
        SoakRun {
            results: SoakResults {
                points,
                event_stream_shard_invariant: invariant,
                replay_misses: total_misses,
                cross_shard: cross_comparisons,
                leased_points,
                timing,
            },
            captured_trace,
            point_metrics,
            metrics,
            fault_stats,
        }
    }

    /// Generates and runs one grid cell: one churn trace against one
    /// engine configuration. `cross_shard` throws the split-planner flag
    /// (and switches sampled replays to the stitched global partition,
    /// since a cross-shard chain is only complete fleet-wide);
    /// `lease`/`renew_every` configure the lease scenario; `capture` keeps
    /// the processed event log.
    fn soak_cell(
        &self,
        trace_seed: u64,
        shards: usize,
        cross_shard: bool,
        lease: Option<Time>,
        renew_every: Option<Time>,
        capture: bool,
    ) -> Option<SoakTrace> {
        let mut trace = ChurnGenerator::new()
            .cores(self.cores)
            .target_normalized_utilization(self.target_utilization)
            .events(self.events_per_trace)
            .family(self.churn_family)
            .seed(trace_seed)
            .generate_timed()
            .ok()?;
        if let Some(every) = renew_every {
            trace = inject_renewals(&trace, every);
        }
        let config = OnlineConfig::builder()
            .cores(self.cores)
            .max_repair_moves(self.max_repair_moves)
            .cost_model(self.cost_model.clone())
            .cross_shard_split(cross_shard)
            .build();
        let mut engine = ShardedAdmission::new(config, shards).ok()?;
        let mut event_loop = EventLoop::new(
            EventLoopConfig::new(trace_seed)
                .with_lease(lease)
                .with_rebalance_period(self.rebalance_period)
                .with_rebalance_max_moves(self.rebalance_max_moves)
                .with_audit_period(self.audit_period),
        );
        event_loop.load_trace(&trace);
        if let Some(plan) = &self.faults {
            event_loop.load_faults(plan);
        }

        let sample_every = self.replay_sample_every;
        let mut replay = ReplayOutcome::default();
        let mut admissions = 0usize;
        let started = Instant::now();
        event_loop.run_with(&mut engine, |engine, decision: &Decision| {
            if sample_every == 0 || !decision.is_admission() {
                return;
            }
            admissions += 1;
            if !admissions.is_multiple_of(sample_every) {
                return;
            }
            let horizon = Time::from_millis(50);
            if cross_shard {
                let parts: Vec<&Partition> =
                    engine.shards().iter().map(|s| s.partition()).collect();
                let stitched = stitch_partitions(&parts);
                replay.absorb(replay_epoch(&stitched, &ReplayConfig::new(horizon)));
            } else {
                let shard = engine
                    .resident_shard(decision.task)
                    .expect("an admitted task is resident");
                let partition = engine.shards()[shard].partition();
                replay.absorb(replay_epoch(partition, &ReplayConfig::new(horizon)));
            }
        });
        let elapsed = started.elapsed();

        let stats = *engine.stats();
        let captured = capture.then(|| event_loop.take_event_log());
        let events_digest = fnv1a(
            serde_json::to_string(captured.as_deref().unwrap_or(event_loop.event_log()))
                .expect("event logs always serialize")
                .as_bytes(),
        );
        let decisions_digest = fnv1a(
            serde_json::to_string(&engine.decisions().to_vec())
                .expect("decision logs always serialize")
                .as_bytes(),
        );
        Some(SoakTrace {
            events_processed: engine.decisions().len() as u64,
            arrivals: stats.decisions.arrivals,
            admitted: stats.decisions.admitted,
            rejected: stats.decisions.rejected,
            departures: stats.decisions.departures,
            overflow_admissions: stats.overflow_admissions,
            rebalance_ticks: stats.rebalance_ticks,
            rebalance_moves: stats.rebalance_moves,
            lease_expirations: stats.lease_expirations,
            lease_renewals: event_loop.lease_renewals(),
            cross_shard_admissions: stats.cross_shard_admissions,
            inflation_charged_ns: stats.decisions.inflation_charged_ns,
            replay,
            events_digest,
            decisions_digest,
            elapsed,
            latency: engine.decision_latency_histogram().clone(),
            metrics: engine.merged_metrics_registry(),
            captured,
            fault: *engine.fault_stats(),
        })
    }

    /// Folds one point's per-trace outcomes into the deterministic
    /// [`SoakPoint`] plus the merged wall-clock and telemetry state.
    fn fold_point(
        shards: usize,
        traces: &[SoakTrace],
    ) -> (SoakPoint, Duration, Histogram, Registry, FaultStats) {
        let mut point = SoakPoint {
            shards,
            events_processed: 0,
            arrivals: 0,
            admitted: 0,
            rejected: 0,
            departures: 0,
            overflow_admissions: 0,
            rebalance_ticks: 0,
            rebalance_moves: 0,
            lease_expirations: 0,
            lease_renewals: 0,
            cross_shard_admissions: 0,
            inflation_charged_ns: 0,
            replayed_epochs: 0,
            replay_misses: 0,
            events_digest: FNV_OFFSET,
            decisions_digest: FNV_OFFSET,
        };
        let mut elapsed = Duration::ZERO;
        let mut latency = Histogram::new();
        let mut registry = Registry::new();
        let mut fault = FaultStats::default();
        for outcome in traces {
            fault.absorb(&outcome.fault);
            point.events_processed += outcome.events_processed;
            point.arrivals += outcome.arrivals;
            point.admitted += outcome.admitted;
            point.rejected += outcome.rejected;
            point.departures += outcome.departures;
            point.overflow_admissions += outcome.overflow_admissions;
            point.rebalance_ticks += outcome.rebalance_ticks;
            point.rebalance_moves += outcome.rebalance_moves;
            point.lease_expirations += outcome.lease_expirations;
            point.lease_renewals += outcome.lease_renewals;
            point.cross_shard_admissions += outcome.cross_shard_admissions;
            point.inflation_charged_ns += outcome.inflation_charged_ns;
            point.replayed_epochs += outcome.replay.epochs;
            point.replay_misses += outcome.replay.deadline_misses;
            point.events_digest = fnv1a_combine(point.events_digest, outcome.events_digest);
            point.decisions_digest =
                fnv1a_combine(point.decisions_digest, outcome.decisions_digest);
            elapsed += outcome.elapsed;
            latency.merge(&outcome.latency);
            registry.merge(&outcome.metrics);
        }
        (point, elapsed, latency, registry, fault)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte string.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |acc, b| {
        (acc ^ u64::from(*b)).wrapping_mul(FNV_PRIME)
    })
}

/// Order-sensitive combination of per-trace digests.
fn fnv1a_combine(acc: u64, digest: u64) -> u64 {
    digest
        .to_le_bytes()
        .iter()
        .fold(acc, |acc, b| (acc ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SoakExperiment {
        SoakExperiment::new()
            .cores(4)
            .shard_counts(vec![1, 2])
            .events_per_trace(200)
            .traces_per_point(2)
            .target_utilization(0.6)
            .replay_sample_every(25)
            .seed(3)
    }

    #[test]
    fn soak_is_deterministic_and_shard_invariant_in_events() {
        let a = quick().run();
        let b = quick().run();
        assert_eq!(a.points(), b.points());
        assert!(a.event_stream_shard_invariant);
        assert_eq!(
            a.replay_misses, 0,
            "sampled replays must not miss deadlines"
        );
        assert!(
            a.points()[0].replayed_epochs > 0,
            "sampling must replay epochs"
        );
        assert_eq!(a.points().len(), 2);
        for p in a.points() {
            assert_eq!(p.events_processed, 400, "2 traces x 200 events");
            assert!(p.admitted > 0);
        }
    }

    #[test]
    fn deterministic_half_is_thread_count_invariant() {
        let serial = quick().run();
        let parallel = quick().threads(4).run();
        assert_eq!(serial.points(), parallel.points());
        assert_eq!(
            serial.event_stream_shard_invariant,
            parallel.event_stream_shard_invariant
        );
    }

    #[test]
    fn digests_are_seed_sensitive_and_decisions_differ_across_shards() {
        let a = quick().run();
        let other = quick().seed(99).run();
        assert_ne!(a.points()[0].events_digest, other.points()[0].events_digest);
        // 1-shard and 2-shard decision logs may differ (capacity is
        // genuinely constrained by sharding) but both stay deterministic.
        assert_eq!(a.points()[1], quick().run().points()[1].clone());
    }

    #[test]
    fn captured_trace_matches_the_first_points_stream() {
        let (results, captured) = quick()
            .capture_trace(true)
            .run_captured_with_progress(&NullProgress);
        let trace = captured.expect("capture requested");
        assert_eq!(trace.len(), 200);
        assert!(trace.windows(2).all(|w| w[0].at <= w[1].at));
        // The trace never leaks into the serialized artifact.
        let json = serde_json::to_string(&results).expect("results serialize");
        assert!(!json.contains("captured_trace"));
        assert!(!json.contains("\"event\""));
    }

    #[test]
    fn charged_soaks_report_deterministic_inflation() {
        use spms_overhead::CrpdCostModel;
        let charged = || {
            quick()
                .target_utilization(0.8)
                .cost_model(CostModelSpec::Crpd(CrpdCostModel::heavy()))
        };
        let a = charged().run();
        assert_eq!(a.points(), charged().threads(4).run().points());
        assert_eq!(a.replay_misses, 0);
        for p in quick().run().points() {
            assert_eq!(p.inflation_charged_ns, 0, "free model must charge nothing");
        }
        assert!(
            a.points().iter().any(|p| p.inflation_charged_ns > 0),
            "a high-load charged soak should split or rebalance at least once"
        );
    }

    #[test]
    fn cross_shard_soak_recovers_walled_rejections() {
        let config = || {
            quick()
                .target_utilization(0.85)
                .traces_per_point(3)
                .cross_shard(true)
        };
        let run = config().run();
        // Baseline points stay walled — the scenario never touches them.
        for p in run.points() {
            assert_eq!(p.cross_shard_admissions, 0);
        }
        assert_eq!(run.cross_shard.len(), 1, "one multi-shard point");
        let c = &run.cross_shard[0];
        assert_eq!(c.shards, 2);
        assert!(
            c.cross_shard_admissions > 0,
            "a high-load 2-shard soak must exercise the planner"
        );
        assert!(
            c.admitted_cross > c.admitted_walled,
            "cross-shard splitting must recover acceptance: {} vs {}",
            c.admitted_cross,
            c.admitted_walled
        );
        assert_eq!(
            c.recovered,
            c.admitted_cross as i64 - c.admitted_walled as i64
        );
        assert_eq!(c.replay_misses, 0, "stitched replays must not miss");
        assert_eq!(run.replay_misses, 0);
        // The whole scenario is deterministic and thread-invariant.
        let again = config().threads(4).run();
        assert_eq!(run.cross_shard, again.cross_shard);
        assert_eq!(run.points(), again.points());
        let md = run.render_markdown();
        assert!(md.contains("admitted (cross-shard)"));
    }

    #[test]
    fn bursty_traffic_keeps_the_soak_deterministic() {
        let bursty = || {
            quick()
                .target_utilization(0.85)
                .churn_family(ChurnFamily::Bursty)
                .cross_shard(true)
        };
        let a = bursty().run();
        let b = bursty().threads(4).run();
        assert_eq!(a.points(), b.points());
        assert_eq!(a.cross_shard, b.cross_shard);
        assert_eq!(a.replay_misses, 0);
        // The bursty family really reshapes the trace.
        assert_ne!(
            a.points()[0].events_digest,
            quick().target_utilization(0.85).run().points()[0].events_digest,
            "bursty and Poisson soaks must not share a trace"
        );
    }

    #[test]
    fn leased_scenario_reports_renewals_and_leaves_the_baseline_invariant() {
        let run = quick().leased_scenario(Some(Time::from_millis(20))).run();
        assert_eq!(run.leased_points.len(), 2);
        for p in &run.leased_points {
            assert!(p.lease_renewals > 0, "heartbeats must be injected");
        }
        // The baseline points never see the lease…
        assert!(run.event_stream_shard_invariant);
        for p in run.points() {
            assert_eq!(p.lease_renewals, 0);
            assert_eq!(p.lease_expirations, 0);
        }
        // …and the leased column documents its divergence.
        let md = run.render_markdown();
        assert!(md.contains("shards (leased)"));
        assert!(md.contains("legitimately diverge"));
        let b = quick().leased_scenario(Some(Time::from_millis(20))).run();
        assert_eq!(run.leased_points, b.leased_points);
    }

    #[test]
    fn scenario_columns_are_absent_by_default() {
        let run = quick().run();
        assert!(run.cross_shard.is_empty());
        assert!(run.leased_points.is_empty());
        let json = serde_json::to_string(&run).expect("results serialize");
        assert!(json.contains("\"cross_shard\":[]"));
        let md = run.render_markdown();
        assert!(!md.contains("admitted (cross-shard)"));
        assert!(!md.contains("shards (leased)"));
    }

    #[test]
    fn rendering_has_throughput_and_latency_columns() {
        let results = quick().run();
        let md = results.render_markdown();
        assert!(md.contains("decisions/sec"));
        assert!(md.contains("p50 µs"));
        assert!(md.contains("p999 µs"));
        assert!(md.contains("event stream shard-invariant: true"));
        assert!(md.contains("replay misses: 0"));
        let csv = results.render_csv();
        assert!(csv.starts_with("shards,"));
        assert!(csv.contains("inflation_charged_ns"));
        assert!(md.contains("inflate µs"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
    }
}
